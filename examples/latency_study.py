"""Example: the user-experience cost of header bidding (Figures 12-20).

This scenario mirrors §5.2-§5.3 of the paper: the overall HB latency, how it
relates to site popularity, the fastest and slowest demand partners, the cost
of adding partners and ad-slots, the late bids the broadcast model produces,
and the comparison against the traditional waterfall.

Run with::

    python examples/latency_study.py [--sites 3000] [--days 1] [--seed 2019]
"""

from __future__ import annotations

import argparse

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments import figures


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=3_000, help="simulated websites to crawl")
    parser.add_argument("--days", type=int, default=1, help="daily re-crawls of HB sites")
    parser.add_argument("--seed", type=int, default=2019, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = ExperimentConfig(total_sites=args.sites, recrawl_days=args.days, seed=args.seed)
    artifacts = ExperimentRunner(config).run()

    latency = figures.figure12_latency_ecdf(artifacts)
    print(latency["text"])
    print()
    print(f"Median total HB latency: {latency['median_ms']:.0f} ms; "
          f"{latency['share_above_1s'] * 100:.1f}% of sites above 1 s; "
          f"{latency['share_above_3s'] * 100:.1f}% above 3 s.")
    print()

    print(figures.figure13_latency_vs_rank(artifacts)["text"])
    print()
    print(figures.figure14_partner_latency(artifacts)["text"])
    print()
    print(figures.figure15_latency_vs_partner_count(artifacts)["text"])
    print()
    print(figures.figure16_latency_vs_popularity(artifacts)["text"])
    print()
    print(figures.figure17_late_bids_ecdf(artifacts)["text"])
    print()
    print(figures.figure18_late_bids_per_partner(artifacts)["text"])
    print()
    print(figures.figure19_adslots_ecdf(artifacts)["text"])
    print()
    print(figures.figure20_latency_vs_adslots(artifacts)["text"])
    print()
    print(figures.waterfall_latency_comparison(artifacts)["text"])


if __name__ == "__main__":
    main()
