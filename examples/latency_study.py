"""Example: the user-experience cost of header bidding (Figures 12-20).

This scenario mirrors §5.2-§5.3 of the paper: the overall HB latency, how it
relates to site popularity, the fastest and slowest demand partners, the cost
of adding partners and ad-slots, the late bids the broadcast model produces,
and the comparison against the traditional waterfall.

It is written against the metric-registry API: each artefact is one
``compute_metric`` call against an :class:`~repro.analysis.AnalysisContext`,
and with ``--save`` / ``--load`` the same study runs offline from a saved
crawl (no re-simulation; simulation-only artefacts are skipped).

Run with::

    python examples/latency_study.py [--sites 3000] [--days 1] [--seed 2019]
    python examples/latency_study.py --save crawl.jsonl
    python examples/latency_study.py --load crawl.jsonl
"""

from __future__ import annotations

import argparse

from repro.analysis import AnalysisContext, CrawlDataset, available_metrics, compute_metric
from repro.crawler.storage import CrawlStorage
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner

#: The §5.2-§5.3 artefacts, in paper order, plus the waterfall comparison.
LATENCY_STUDY_METRICS = [
    "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19", "fig20",
    "waterfall",
]


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=3_000, help="simulated websites to crawl")
    parser.add_argument("--days", type=int, default=1, help="daily re-crawls of HB sites")
    parser.add_argument("--seed", type=int, default=2019, help="random seed")
    parser.add_argument("--save", metavar="PATH", default=None,
                        help="stream the crawl to this JSON-Lines file")
    parser.add_argument("--load", metavar="PATH", default=None,
                        help="analyse a saved crawl instead of re-simulating")
    args = parser.parse_args()
    if args.load and args.save:
        parser.error("--save cannot be combined with --load (nothing is crawled)")
    return args


def build_context(args: argparse.Namespace) -> AnalysisContext:
    if args.load:
        return AnalysisContext.offline(CrawlDataset.from_jsonl(args.load))
    config = ExperimentConfig(total_sites=args.sites, recrawl_days=args.days, seed=args.seed)
    storage = CrawlStorage(args.save) if args.save else None
    artifacts = ExperimentRunner(config).run(storage=storage)
    return AnalysisContext.from_artifacts(artifacts)


def main() -> None:
    args = parse_args()
    context = build_context(args)
    computable = set(available_metrics(context))

    for name in LATENCY_STUDY_METRICS:
        if name not in computable:
            print(f"[skipping {name}: needs the simulated environment, "
                  f"which an offline dataset does not carry]")
            print()
            continue
        result = compute_metric(name, context)
        print(result.text)
        print()
        if name == "fig12":
            print(f"Median total HB latency: {result.data['median_ms']:.0f} ms; "
                  f"{result.data['share_above_1s'] * 100:.1f}% of sites above 1 s; "
                  f"{result.data['share_above_3s'] * 100:.1f}% above 3 s.")
            print()


if __name__ == "__main__":
    main()
