"""Drive a measurement campaign over HTTP, end to end.

The script starts an in-process campaign service (the same server that
``hbrepro serve`` runs), submits a small campaign with the stdlib
:class:`~repro.service.client.ServiceClient`, follows its live server-sent
events stream while the crawl streams detections into the sink, then queries
the finished campaign: filtered detection pages, the Table-1 summary both as
JSON and as the exact ``hbrepro analyze`` text rendering, and the raw
detections file (byte-identical to a local ``run --save``).

Point the client at a separately-launched ``hbrepro serve`` instead by
replacing :func:`running_server` with its URL.

Run with::

    PYTHONPATH=src python examples/service_client.py
"""

from __future__ import annotations

import tempfile

from repro.service import ServiceClient, running_server


def main() -> None:
    with tempfile.TemporaryDirectory() as data_dir, running_server(data_dir) as server:
        client = ServiceClient(server.base_url)
        print(f"service up at {server.base_url}\n")

        campaign = client.submit({"sites": 400, "days": 1, "seed": 7, "workers": 2})
        cid = campaign["id"]
        print(f"submitted campaign {cid} ({campaign['state']}); following its event stream:\n")

        # The SSE stream emits `progress` as flushed detections are folded
        # into the live store, `metrics` snapshots computed exactly like
        # `analyze --watch`, and one final `state` event when the crawl ends.
        final_metrics = None
        for event, payload in client.events(cid, artifacts=("table1",), interval=0.1):
            if event == "progress":
                print(f"  progress: {payload['detections']:5d} detections "
                      f"(+{payload['new']}, {payload['sink_bytes']} sink bytes)")
            elif event == "metrics":
                final_metrics = payload
            elif event == "state":
                print(f"  state: {payload['state']} after {payload['runs']} run(s)\n")

        hb_page = client.detections(cid, hb="true", limit=5)
        print(f"HB detections: {hb_page['total']} total; first page of 5:")
        for item in hb_page["items"]:
            print(f"  #{item['rank']:<5} {item['domain']:<28} {item['facet']:<12} "
                  f"{len(item['partners'])} partners")
        print()

        partner = hb_page["items"][0]["partners"][0]
        by_partner = client.detections(cid, partner=partner, limit=500)
        print(f"sites naming {partner}: {by_partner['total']}\n")

        print("final live snapshot (from the SSE stream):\n")
        print(final_metrics["artifacts"]["table1"])
        print()
        print("re-served as text (identical to `hbrepro analyze`):\n")
        print(client.artifact_text(cid, "table1"))

        raw = client.download(cid)
        print(f"downloaded {len(raw)} detection bytes "
              f"(byte-identical to a local run --save)")


if __name__ == "__main__":
    main()
