"""Example: demand-partner market census (Figures 8-11 and 24).

This scenario mirrors §5.1 of the paper: who dominates the header-bidding
market, how many partners publishers typically expose, which combinations of
partners appear together, how participation differs per HB facet and how bid
prices relate to a partner's popularity.

Run with::

    python examples/ecosystem_census.py [--sites 3000] [--days 2] [--seed 2019]
"""

from __future__ import annotations

import argparse

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments import figures


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=3_000, help="simulated websites to crawl")
    parser.add_argument("--days", type=int, default=2, help="daily re-crawls of HB sites")
    parser.add_argument("--seed", type=int, default=2019, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = ExperimentConfig(total_sites=args.sites, recrawl_days=args.days, seed=args.seed)
    artifacts = ExperimentRunner(config).run()

    print(figures.figure08_top_partners(artifacts)["text"])
    print()

    per_site = figures.figure09_partners_per_site(artifacts)
    print(per_site["text"])
    print()
    print(f"{per_site['share_one_partner'] * 100:.1f}% of HB sites expose a single partner "
          "(paper: >50%); "
          f"{per_site['share_five_or_more'] * 100:.1f}% expose five or more (paper: ~20%); "
          f"{per_site['share_ten_or_more'] * 100:.1f}% expose ten or more (paper: ~5%).")
    print()

    print(figures.figure10_partner_combinations(artifacts)["text"])
    print()
    print(figures.figure11_partners_per_facet(artifacts)["text"])
    print()
    print(figures.figure24_price_vs_popularity(artifacts)["text"])


if __name__ == "__main__":
    main()
