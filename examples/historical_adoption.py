"""Example: historical HB adoption from archived snapshots (Figure 4).

This scenario mirrors §4.1 of the paper: yearly top-1k lists are resolved
against a Wayback-Machine-style snapshot archive, the archived HTML is
statically analysed for known header-bidding libraries, and the resulting
adoption series (2014-2019) is printed together with the accuracy of the
static method against the archive's ground truth — the reason the live crawl
uses dynamic detection instead.

Run with::

    python examples/historical_adoption.py [--sites 1000] [--seed 2019]
"""

from __future__ import annotations

import argparse

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.figures import figure04_adoption_history


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=1_000, help="sites per yearly top list")
    parser.add_argument("--seed", type=int, default=2019, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = ExperimentConfig(
        total_sites=max(400, args.sites),
        seed=args.seed,
        historical_sites=args.sites,
    )
    historical = ExperimentRunner(config).run_historical()
    result = figure04_adoption_history(historical)
    print(result["text"])
    print()
    first = result["rows"][0]
    last = result["rows"][-1]
    print(
        f"Detected adoption grew from {first['adoption_rate'] * 100:.1f}% in "
        f"{int(first['year'])} to {last['adoption_rate'] * 100:.1f}% in {int(last['year'])} "
        "(paper: ~10% of early adopters in 2014, ~20% after the 2016 breakthrough)."
    )
    print(
        "Static analysis keeps high precision but misses renamed wrappers and "
        "gpt-only deployments, which is why the live crawl relies on DOM events "
        "and web requests instead."
    )


if __name__ == "__main__":
    main()
