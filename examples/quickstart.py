"""Quickstart: run a small header-bidding measurement campaign end to end.

The script generates a scaled-down simulated Web (2,000 sites), crawls it with
HBDetector loaded, re-crawls the HB-enabled sites for one extra day, and prints
the headline artefacts of the paper: the Table-1 crawl summary, adoption by
rank tier, the facet breakdown, the top demand partners and the latency ECDF.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments import figures, tables


def main() -> None:
    config = ExperimentConfig(total_sites=2_000, recrawl_days=1, seed=2019)
    print(f"Simulating and crawling {config.total_sites} websites "
          f"({config.recrawl_days} daily re-crawl day(s), seed {config.seed})...\n")
    runner = ExperimentRunner(config)
    artifacts = runner.run()

    print(tables.table1_summary(artifacts)["text"])
    print()
    print(tables.adoption_by_rank(artifacts)["text"])
    print()
    print(tables.detector_accuracy(artifacts)["text"])
    print()
    print(figures.facet_breakdown_result(artifacts)["text"])
    print()
    print(figures.figure08_top_partners(artifacts)["text"])
    print()

    latency = figures.figure12_latency_ecdf(artifacts)
    print(latency["text"])
    print()
    print(f"Median HB latency: {latency['median_ms']:.0f} ms "
          f"(paper: ~600 ms); {latency['share_above_3s'] * 100:.1f}% of sites "
          "exceed the 3-second wrapper timeout (paper: ~10%).")

    comparison = figures.waterfall_latency_comparison(artifacts)
    print()
    print(comparison["text"])
    print()
    ratio = comparison["comparison"].median_ratio
    print(f"Header bidding is {ratio:.1f}x slower than the waterfall at the median "
          "(paper: up to 3x).")


if __name__ == "__main__":
    main()
