"""Unit tests for the publisher ad-server decision engine."""

import numpy as np
import pytest

from repro.ecosystem.adserver import AdServer, LineItem
from repro.errors import ConfigurationError
from repro.models import AdSlot, AdSlotSize, SaleChannel


@pytest.fixture()
def slot():
    return AdSlot(code="slot-1", primary_size=AdSlotSize(300, 250), floor_cpm=0.05)


@pytest.fixture()
def ad_server(registry):
    return AdServer(registry.get("DFP"), fallback_cpm=0.01, fallback_fill_probability=1.0)


class TestLineItem:
    def test_matches_requires_remaining_impressions(self, slot):
        spent = LineItem(advertiser="brand", cpm=1.0, remaining_impressions=0)
        assert not spent.matches(slot)

    def test_matches_respects_size_targeting(self, slot):
        targeted = LineItem(advertiser="brand", cpm=1.0, remaining_impressions=10,
                            eligible_sizes=("728x90",))
        assert not targeted.matches(slot)
        broad = LineItem(advertiser="brand", cpm=1.0, remaining_impressions=10)
        assert broad.matches(slot)

    def test_rejects_negative_values(self):
        with pytest.raises(ConfigurationError):
            LineItem(advertiser="x", cpm=-1.0, remaining_impressions=1)
        with pytest.raises(ConfigurationError):
            LineItem(advertiser="x", cpm=1.0, remaining_impressions=-1)


class TestAdServerDecisions:
    def test_header_bid_wins_when_it_clears_floor(self, ad_server, slot, rng):
        decision = ad_server.decide(rng, slot, {"appnexus": 0.8, "criteo": 0.3})
        assert decision.channel is SaleChannel.HEADER_BIDDING
        assert decision.winner == "appnexus"
        assert decision.clearing_cpm == pytest.approx(0.8)
        assert decision.considered_header_bids == 2

    def test_bid_below_floor_loses_to_fallback(self, ad_server, slot, rng):
        decision = ad_server.decide(rng, slot, {"appnexus": 0.01})
        assert decision.channel is SaleChannel.FALLBACK
        assert decision.filled

    def test_direct_order_beats_lower_header_bid(self, registry, slot, rng):
        server = AdServer(registry.get("DFP"),
                          line_items=[LineItem(advertiser="SuperBowlBrand", cpm=2.0,
                                               remaining_impressions=100)])
        decision = server.decide(rng, slot, {"appnexus": 0.8})
        assert decision.channel is SaleChannel.DIRECT_ORDER
        assert decision.winner == "SuperBowlBrand"

    def test_header_bid_beats_cheaper_direct_order(self, registry, slot, rng):
        server = AdServer(registry.get("DFP"),
                          line_items=[LineItem(advertiser="SmallBrand", cpm=0.2,
                                               remaining_impressions=100)])
        decision = server.decide(rng, slot, {"appnexus": 0.8})
        assert decision.channel is SaleChannel.HEADER_BIDDING

    def test_no_bids_no_direct_order_may_leave_house_ad(self, registry, slot, rng):
        server = AdServer(registry.get("DFP"), fallback_fill_probability=0.0)
        decision = server.decide(rng, slot, {})
        assert decision.channel is SaleChannel.HOUSE
        assert not decision.filled

    def test_latency_sample_is_positive_and_scales(self, ad_server):
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        fast = np.median([ad_server.sample_latency(rng_a, scale=0.5) for _ in range(300)])
        slow = np.median([ad_server.sample_latency(rng_b, scale=1.0) for _ in range(300)])
        assert 0 < fast < slow

    def test_consume_direct_order_decrements_budget(self, registry, slot, rng):
        server = AdServer(registry.get("DFP"),
                          line_items=[LineItem(advertiser="Brand", cpm=1.0, remaining_impressions=1)])
        first = server.decide(rng, slot, {})
        assert first.channel is SaleChannel.DIRECT_ORDER
        server.consume_direct_order("Brand")
        second = server.decide(rng, slot, {})
        assert second.channel is not SaleChannel.DIRECT_ORDER

    def test_rejects_invalid_configuration(self, registry):
        with pytest.raises(ConfigurationError):
            AdServer(registry.get("DFP"), response_latency_median_ms=0.0)
        with pytest.raises(ConfigurationError):
            AdServer(registry.get("DFP"), fallback_fill_probability=2.0)
