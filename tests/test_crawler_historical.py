"""Unit tests for the historical (Wayback) static crawl."""

import pytest

from repro.crawler.historical import HistoricalCrawler
from repro.detector.static_analysis import StaticAnalyzer
from repro.ecosystem.alexa import yearly_top_lists
from repro.ecosystem.wayback import SnapshotArchive
from repro.errors import CrawlError


@pytest.fixture(scope="module")
def crawler():
    lists = yearly_top_lists(250, (2014, 2016, 2019), seed=11)
    archive = SnapshotArchive(lists, seed=11)
    return HistoricalCrawler(archive, StaticAnalyzer())


class TestHistoricalCrawler:
    def test_crawl_year_analyzes_every_snapshot(self, crawler):
        yearly = crawler.crawl_year(2019)
        assert yearly.sites_analyzed == 250
        assert 0 < yearly.sites_with_hb < 250

    def test_adoption_increases_over_years(self, crawler):
        result = crawler.crawl()
        series = result.adoption_series()
        assert series[2014] < series[2019]
        assert result.years == (2014, 2016, 2019)

    def test_precision_and_recall_are_high_but_imperfect(self, crawler):
        # Static analysis misses renamed wrappers and gpt-only (server-side)
        # deployments, and picks up the occasional misleading script name —
        # exactly the weaknesses the paper cites for avoiding it live.
        yearly = crawler.crawl_year(2019)
        assert yearly.precision > 0.8
        assert 0.55 < yearly.recall < 1.0

    def test_detections_kept_only_on_request(self, crawler):
        without = crawler.crawl_year(2016)
        with_records = crawler.crawl_year(2016, keep_detections=True)
        assert without.detections == ()
        assert len(with_records.detections) == 250

    def test_subset_of_years_can_be_crawled(self, crawler):
        result = crawler.crawl(years=(2016,))
        assert result.years == (2016,)

    def test_unknown_year_raises(self, crawler):
        with pytest.raises(CrawlError):
            crawler.crawl_year(1999)

    def test_accuracy_counters_are_consistent(self, crawler):
        yearly = crawler.crawl_year(2019)
        assert yearly.true_positives + yearly.false_positives == yearly.sites_with_hb
