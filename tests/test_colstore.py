"""Columnar detection store: format, round-trips, parity, crash recovery.

The contract under test is the one the JSONL reference storage defines:
``ColumnarDetectionSink`` / ``ColumnarStorage`` must behave observably like
``DetectionSink`` / ``CrawlStorage`` (same offsets-at-boundaries, tailing,
recovery and resume semantics), and every read-side artefact must be
indistinguishable across the two backends.  JSONL stays canonical for bytes:
converting a columnar campaign to JSONL must reproduce the exact bytes a
direct JSONL run would have written.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import available_metrics, compute_metric
from repro.crawler.colstore import (
    ColumnarDataset,
    ColumnarDetectionSink,
    ColumnarStorage,
    ColumnarTable,
    sniff_format,
    storage_for,
)
from repro.crawler.crawler import CrawlConfig
from repro.crawler.storage import STORE_FORMATS, CrawlStorage
from repro.errors import ConfigurationError, EmptyDatasetError, ReproError, StorageError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner

from crash_harness import (
    crash_sites,  # noqa: F401 - imported fixture
    interrupted_then_resumed,
    uninterrupted_baseline,
)


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One test-scale campaign streamed through both storage backends.

    ``jsonl`` and ``columnar`` hold byte-for-byte what a real ``run --save``
    writes with each ``--store-format``; ``detections`` is the shared record
    list both files encode.
    """
    tmp = tmp_path_factory.mktemp("colstore-campaign")
    config = ExperimentConfig.test_scale()
    jsonl = CrawlStorage(tmp / "campaign.jsonl")
    ExperimentRunner(config).run(use_cache=False, storage=jsonl)
    columnar = ColumnarStorage(tmp / "campaign.hbc")
    ExperimentRunner(replace(config, store_format="columnar")).run(
        use_cache=False, storage=columnar
    )
    return SimpleNamespace(
        dir=tmp, jsonl=jsonl, columnar=columnar, detections=jsonl.load()
    )


@pytest.fixture
def records(campaign):
    return campaign.detections


# ---------------------------------------------------------------------------
# Format detection and from_path dispatch


class TestFormatDetection:
    def test_sniffs_by_magic_bytes(self, campaign):
        assert sniff_format(campaign.jsonl.path) == "jsonl"
        assert sniff_format(campaign.columnar.path) == "columnar"

    def test_extension_is_ignored_when_the_file_has_content(self, campaign, tmp_path):
        disguised = tmp_path / "actually-columnar.jsonl"
        disguised.write_bytes(campaign.columnar.path.read_bytes())
        assert sniff_format(disguised) == "columnar"

    def test_missing_or_empty_file_falls_back_to_extension(self, tmp_path):
        assert sniff_format(tmp_path / "new.jsonl") == "jsonl"
        assert sniff_format(tmp_path / "new.hbc") == "columnar"
        (tmp_path / "empty.hbc").write_bytes(b"")
        assert sniff_format(tmp_path / "empty.hbc") == "columnar"

    def test_unrecognised_content_raises_a_repro_error(self, tmp_path):
        bogus = tmp_path / "bogus.bin"
        bogus.write_bytes(b"\x89PNG\r\n\x1a\nnot a store")
        with pytest.raises(StorageError, match="not a recognised detection store"):
            sniff_format(bogus)
        assert issubclass(StorageError, ReproError)

    def test_unknown_columnar_version_raises_clearly(self, tmp_path):
        future = tmp_path / "future.hbc"
        future.write_bytes(b"HBCOL9\r\n" + b"\x00" * 64)
        assert sniff_format(future) == "columnar"
        with pytest.raises(StorageError, match="unsupported columnar store version"):
            ColumnarTable(future)
        with pytest.raises(StorageError, match="unsupported columnar store version"):
            ColumnarStorage(future).load()

    def test_from_path_dispatches_to_the_right_dataset(self, campaign):
        plain = CrawlDataset.from_path(campaign.jsonl.path)
        lazy = CrawlDataset.from_path(campaign.columnar.path)
        assert type(plain) is CrawlDataset
        assert isinstance(lazy, ColumnarDataset)
        assert len(plain) == len(lazy) == len(campaign.detections)

    def test_from_path_on_a_corrupt_file_raises_a_repro_error(self, tmp_path):
        bogus = tmp_path / "bogus.dat"
        bogus.write_bytes(b"\x00\x01\x02 definitely not a store")
        with pytest.raises(ReproError):
            CrawlDataset.from_path(bogus)

    def test_storage_for_builds_the_matching_backend(self, tmp_path):
        assert isinstance(storage_for(tmp_path / "a.jsonl"), CrawlStorage)
        assert isinstance(storage_for(tmp_path / "a.hbc"), ColumnarStorage)
        assert isinstance(storage_for(tmp_path / "x.jsonl", format="columnar"), ColumnarStorage)
        with pytest.raises(StorageError, match="unknown detection store format"):
            storage_for(tmp_path / "a.jsonl", format="parquet")


# ---------------------------------------------------------------------------
# Round-trip equivalence: JSONL is canonical for bytes


class TestRoundTrips:
    def test_columnar_to_jsonl_matches_a_direct_jsonl_run(self, campaign, tmp_path):
        """The headline contract: convert(columnar campaign) == jsonl campaign."""
        out = CrawlStorage(tmp_path / "converted.jsonl")
        out.save(campaign.columnar.iter_load())
        assert out.path.read_bytes() == campaign.jsonl.path.read_bytes()

    def test_jsonl_to_columnar_and_back_restores_exact_bytes(self, campaign, tmp_path):
        middle = ColumnarStorage(tmp_path / "middle.hbc")
        middle.save(campaign.jsonl.iter_load())
        back = CrawlStorage(tmp_path / "back.jsonl")
        back.save(middle.iter_load())
        assert back.path.read_bytes() == campaign.jsonl.path.read_bytes()

    def test_save_load_round_trip(self, records, tmp_path):
        storage = ColumnarStorage(tmp_path / "rt.hbc")
        assert storage.save(records) == len(records)
        assert storage.load() == records

    def test_iter_load_streams_the_same_records(self, records, tmp_path):
        storage = ColumnarStorage(tmp_path / "rt.hbc")
        storage.save(records)
        assert list(storage.iter_load()) == records

    def test_append_extends_previous_content(self, records, tmp_path):
        storage = ColumnarStorage(tmp_path / "rt.hbc")
        storage.save(records[:100])
        assert storage.append(records[100:]) == len(records) - 100
        assert storage.load() == records

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError, match="not found"):
            ColumnarStorage(tmp_path / "absent.hbc").load()

    def test_empty_file_is_an_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.hbc"
        path.write_bytes(b"")
        assert ColumnarStorage(path).load() == []
        dataset = CrawlDataset.from_path(path)
        assert len(dataset) == 0
        with pytest.raises(EmptyDatasetError):
            dataset.summary()

    def test_chunking_does_not_change_the_records(self, records, tmp_path):
        """Columnar bytes depend on the flush interval (unlike JSONL); the
        decoded records and the converted JSONL bytes must not."""
        blobs = []
        for flush_every in (1, 7, 64):
            path = tmp_path / f"chunked-{flush_every}.hbc"
            with ColumnarDetectionSink(path, flush_every=flush_every) as sink:
                sink.write_many(records[:50])
            assert ColumnarStorage(path).load() == records[:50]
            blobs.append(path.read_bytes())
        assert blobs[0] != blobs[1]  # chunk boundaries genuinely differ


# ---------------------------------------------------------------------------
# Metric parity: every offline artefact identical across backends


class TestMetricParity:
    def test_every_offline_metric_renders_identically(self, campaign):
        plain = AnalysisContext.offline(CrawlDataset.from_path(campaign.jsonl.path))
        lazy = AnalysisContext.offline(CrawlDataset.from_path(campaign.columnar.path))
        names = sorted(available_metrics(frozenset({"dataset"})))
        assert names, "no offline metrics registered?"
        for name in names:
            assert (
                compute_metric(name, plain).text == compute_metric(name, lazy).text
            ), f"metric {name} diverged between storage backends"

    def test_summary_is_computed_without_materialising(self, campaign):
        reference = CrawlDataset.from_path(campaign.jsonl.path).summary()
        dataset = ColumnarDataset.open(campaign.columnar.path)
        assert dataset.summary() == reference
        assert dataset.crawl_days() == CrawlDataset.from_path(campaign.jsonl.path).crawl_days()
        assert dataset._records is None, "summary() must stay on the columnar fast path"
        assert len(dataset) == len(campaign.detections)

    def test_materialised_records_are_exact(self, campaign):
        dataset = ColumnarDataset.open(campaign.columnar.path)
        assert dataset.detections == campaign.detections
        # and the summary still matches after switching to the generic path
        assert dataset.summary() == CrawlDataset.from_path(campaign.jsonl.path).summary()

    def test_extend_after_open_keeps_indices_consistent(self, campaign, records):
        dataset = ColumnarDataset.open(campaign.columnar.path)
        before = dataset.summary()
        dataset.extend(records[:3])
        after = dataset.summary()
        assert after["page_visits"] == before["page_visits"] + 3
        twin = CrawlDataset.from_detections(records + records[:3])
        assert after == twin.summary()


# ---------------------------------------------------------------------------
# Sink contract (mirrors TestDetectionSink / TestBufferedSink)


class TestColumnarSink:
    def test_fresh_sink_truncates_previous_content(self, records, tmp_path):
        path = tmp_path / "sink.hbc"
        ColumnarStorage(path).save(records[:20])
        with ColumnarDetectionSink(path) as sink:
            sink.write_many(records[:5])
        assert ColumnarStorage(path).load() == records[:5]

    def test_offset_is_zero_before_the_first_flush(self, records, tmp_path):
        with ColumnarDetectionSink(tmp_path / "sink.hbc", flush_every=64) as sink:
            assert sink.offset == 0
            sink.write(records[0])
            assert sink.offset == 0  # buffered, nothing flushed yet
            sink.flush()
            assert sink.offset == (tmp_path / "sink.hbc").stat().st_size

    def test_offset_excludes_the_footer(self, records, tmp_path):
        path = tmp_path / "sink.hbc"
        with ColumnarDetectionSink(path) as sink:
            sink.write_many(records[:10])
            sink.flush()
            data_end = sink.offset
        assert path.stat().st_size > data_end  # footer follows the data

    def test_writes_are_buffered_until_the_flush_interval(self, records, tmp_path):
        path = tmp_path / "sink.hbc"
        with ColumnarDetectionSink(path, flush_every=5) as sink:
            for detection in records[:4]:
                sink.write(detection)
            assert path.stat().st_size == 0
            sink.write(records[4])
            assert path.stat().st_size > 0
            assert sink.flushes == 1

    def test_close_flushes_the_tail_and_writes_the_footer(self, records, tmp_path):
        path = tmp_path / "sink.hbc"
        sink = ColumnarDetectionSink(path, flush_every=100)
        sink.write_many(records[:7])
        sink.close()
        table = ColumnarTable(path)
        assert table.n_records == 7
        # A footer-indexed open and a header-walk open agree.
        assert ColumnarStorage(path).load() == records[:7]

    def test_write_after_close_raises(self, records, tmp_path):
        sink = ColumnarDetectionSink(tmp_path / "sink.hbc")
        sink.write(records[0])
        sink.close()
        with pytest.raises(StorageError, match="closed"):
            sink.write(records[1])

    def test_invalid_flush_interval_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="flush_every"):
            ColumnarDetectionSink(tmp_path / "sink.hbc", flush_every=0)

    def test_entering_sink_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "sink.hbc"
        with ColumnarDetectionSink(path):
            pass
        assert path.exists()

    def test_noop_append_reopen_restores_identical_bytes(self, records, tmp_path):
        path = tmp_path / "sink.hbc"
        with ColumnarDetectionSink(path, flush_every=3) as sink:
            sink.write_many(records[:10])
        before = path.read_bytes()
        with ColumnarDetectionSink(path, append=True, flush_every=3):
            pass
        assert path.read_bytes() == before

    def test_append_resumes_the_dictionary_state(self, records, tmp_path):
        """Strings interned before the reopen must not be re-emitted after."""
        path = tmp_path / "sink.hbc"
        one_shot = tmp_path / "oneshot.hbc"
        with ColumnarDetectionSink(path, flush_every=3) as sink:
            sink.write_many(records[:9])
        with ColumnarDetectionSink(path, append=True, flush_every=3) as sink:
            sink.write_many(records[9:20])
        with ColumnarDetectionSink(one_shot, flush_every=3) as sink:
            sink.write_many(records[:20])
        assert path.read_bytes() == one_shot.read_bytes()

    def test_exit_does_not_mask_the_body_exception(self, records, tmp_path):
        with pytest.raises(ValueError, match="boom"):
            with ColumnarDetectionSink(tmp_path / "sink.hbc") as sink:
                sink.write(records[0])
                raise ValueError("boom")
        # the sink still closed cleanly behind the exception
        assert ColumnarStorage(tmp_path / "sink.hbc").load() == records[:1]

    def test_append_to_a_torn_file_refuses_loudly(self, records, tmp_path):
        path = tmp_path / "torn.hbc"
        with ColumnarDetectionSink(path, flush_every=5) as sink:
            sink.write_many(records[:10])
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 7])  # tear the footer
        with pytest.raises(StorageError, match="torn write"):
            ColumnarDetectionSink(path, append=True).offset


# ---------------------------------------------------------------------------
# read_new tailing contract (mirrors TestReadNew)


class TestColumnarReadNew:
    def test_tail_reads_resume_from_the_returned_offset(self, records, tmp_path):
        path = tmp_path / "tail.hbc"
        storage = ColumnarStorage(path)
        with storage.open_sink(flush_every=4) as sink:
            sink.write_many(records[:4])
            sink.flush()
            first, offset = storage.read_new(0)
            assert first == records[:4]
            sink.write_many(records[4:12])
            sink.flush()
            second, offset = storage.read_new(offset)
            assert second == records[4:12]

    def test_partial_trailing_chunk_is_left_for_the_next_read(self, records, tmp_path):
        path = tmp_path / "tail.hbc"
        storage = ColumnarStorage(path)
        with storage.open_sink(flush_every=4) as sink:
            sink.write_many(records[:4])
            sink.flush()
            _, offset = storage.read_new(0)
            sink.write_many(records[4:8])
            sink.flush()
        complete = path.read_bytes()
        path.write_bytes(complete[: offset + 11])  # mid-second-chunk tear
        deferred, offset2 = storage.read_new(offset)
        assert deferred == [] and offset2 == offset
        path.write_bytes(complete)
        rest, _ = storage.read_new(offset2)
        assert rest == records[4:8]

    def test_footer_is_consumed_so_the_store_drains(self, records, tmp_path):
        path = tmp_path / "tail.hbc"
        storage = ColumnarStorage(path)
        with storage.open_sink(flush_every=4) as sink:
            sink.write_many(records[:8])
        got, offset = storage.read_new(0)
        assert got == records[:8]
        assert offset == path.stat().st_size
        again, offset2 = storage.read_new(offset)
        assert again == [] and offset2 == offset

    def test_a_fresh_reader_can_join_at_any_chunk_boundary(self, records, tmp_path):
        path = tmp_path / "tail.hbc"
        writer = ColumnarStorage(path)
        with writer.open_sink(flush_every=4) as sink:
            sink.write_many(records[:4])
            sink.flush()
            boundary = sink.offset
            sink.write_many(records[4:8])
            sink.flush()
            late_reader = ColumnarStorage(path)
            got, _ = late_reader.read_new(boundary)
            assert got == records[4:8]

    def test_off_boundary_offset_fails_loudly(self, records, tmp_path):
        path = tmp_path / "tail.hbc"
        ColumnarStorage(path).save(records[:8])
        with pytest.raises(StorageError, match="not a chunk boundary"):
            ColumnarStorage(path).read_new(17)

    def test_missing_file_yields_nothing(self, tmp_path):
        assert ColumnarStorage(tmp_path / "absent.hbc").read_new(0) == ([], 0)

    def test_negative_offset_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="negative"):
            ColumnarStorage(tmp_path / "tail.hbc").read_new(-1)

    def test_shrunken_file_fails_loudly(self, records, tmp_path):
        path = tmp_path / "tail.hbc"
        storage = ColumnarStorage(path)
        storage.save(records[:8])
        _, offset = storage.read_new(0)
        path.write_bytes(b"")
        with pytest.raises(StorageError, match="shrank"):
            storage.read_new(offset)

    def test_garbage_file_fails_at_offset_zero(self, tmp_path):
        path = tmp_path / "tail.hbc"
        path.write_bytes(b"this is not a columnar store at all")
        with pytest.raises(StorageError):
            ColumnarStorage(path).read_new(0)

    def test_concurrent_writer_and_tailing_reader(self, records, tmp_path):
        """One thread streams through the sink while another tails the file;
        the reader must assemble exactly the written sequence."""
        path = tmp_path / "live.hbc"
        storage = ColumnarStorage(path)
        seen: list = []
        errors: list = []
        done = threading.Event()

        def tail():
            reader = ColumnarStorage(path)
            offset = 0
            try:
                while True:
                    new, offset = reader.read_new(offset)
                    seen.extend(new)
                    if done.is_set() and offset == reader.size():
                        return
                    time.sleep(0.001)
            except Exception as exc:  # pragma: no cover - surfaced by assert
                errors.append(exc)

        thread = threading.Thread(target=tail)
        thread.start()
        try:
            with storage.open_sink(flush_every=3) as sink:
                for detection in records[:60]:
                    sink.write(detection)
                    time.sleep(0.0005)
        finally:
            done.set()
            thread.join(timeout=30)
        assert not errors
        assert seen == records[:60]


# ---------------------------------------------------------------------------
# recover_to contract (mirrors TestRecoverTo)


class TestColumnarRecoverTo:
    def _file_with_boundary(self, records, tmp_path):
        path = tmp_path / "rec.hbc"
        storage = ColumnarStorage(path)
        with storage.open_sink(flush_every=4) as sink:
            sink.write_many(records[:4])
            sink.flush()
            boundary = sink.offset
            sink.write_many(records[4:12])
        return path, storage, boundary

    def test_recovers_prefix_and_truncates_the_tail(self, records, tmp_path):
        path, storage, boundary = self._file_with_boundary(records, tmp_path)
        kept = storage.recover_to(boundary)
        assert kept == records[:4]
        assert path.stat().st_size == boundary
        assert storage.load() == records[:4]

    def test_mid_chunk_offset_fails_loudly(self, records, tmp_path):
        _, storage, boundary = self._file_with_boundary(records, tmp_path)
        with pytest.raises(StorageError, match="not a chunk boundary"):
            storage.recover_to(boundary + 3)

    def test_offset_zero_empties_the_file(self, records, tmp_path):
        path, storage, _ = self._file_with_boundary(records, tmp_path)
        assert storage.recover_to(0) == []
        assert path.stat().st_size == 0

    def test_offset_zero_on_a_missing_file_is_a_fresh_start(self, tmp_path):
        assert ColumnarStorage(tmp_path / "absent.hbc").recover_to(0) == []

    def test_missing_file_with_recorded_bytes_fails_loudly(self, tmp_path):
        with pytest.raises(StorageError, match="does not exist"):
            ColumnarStorage(tmp_path / "absent.hbc").recover_to(128)

    def test_file_truncated_below_offset_fails_loudly(self, records, tmp_path):
        path, storage, boundary = self._file_with_boundary(records, tmp_path)
        path.write_bytes(path.read_bytes()[: boundary // 2])
        with pytest.raises(StorageError, match="holds only"):
            storage.recover_to(boundary)

    def test_recovery_drops_a_torn_tail(self, records, tmp_path):
        path, storage, boundary = self._file_with_boundary(records, tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: boundary + 13])  # torn write past the boundary
        kept = storage.recover_to(boundary)
        assert kept == records[:4]
        assert path.stat().st_size == boundary
        # a resumed sink can append cleanly after recovery
        with storage.open_sink(append=True, flush_every=4) as sink:
            assert sink.offset == boundary
            sink.write_many(records[4:8])
        assert storage.load() == records[:8]


# ---------------------------------------------------------------------------
# Crash injection: columnar resume byte-identity (reuses crash_harness)


class TestColumnarCrashResume:
    @pytest.mark.parametrize("backend_name,workers", [
        ("serial", 4), ("thread", 4), ("process", 4),
    ])
    def test_resumed_columnar_equals_one_shot_byte_for_byte(
        self, environment, detector, crash_sites, tmp_path, backend_name, workers
    ):
        config = CrawlConfig(seed=5, workers=workers, backend=backend_name)
        expected, baseline = uninterrupted_baseline(
            environment, detector, config, crash_sites,
            tmp_path=tmp_path, store_format="columnar",
        )
        result, storage = interrupted_then_resumed(
            environment, detector, config, crash_sites,
            tmp_path=tmp_path, fail_after=2, store_format="columnar",
        )
        assert storage.path.read_bytes() == baseline.path.read_bytes()
        assert result.detections == expected.detections

    def test_resumed_columnar_converts_to_the_jsonl_baseline(
        self, environment, detector, crash_sites, tmp_path
    ):
        """End to end: crash + resume on the columnar sink, then convert —
        the JSONL bytes must equal a direct JSONL crawl's."""
        config = CrawlConfig(seed=5, workers=3, backend="thread")
        _, jsonl_baseline = uninterrupted_baseline(
            environment, detector, config, crash_sites,
            tmp_path=tmp_path / "jsonl",
        )
        _, columnar = interrupted_then_resumed(
            environment, detector, config, crash_sites,
            tmp_path=tmp_path / "col", fail_after=2, store_format="columnar",
        )
        converted = CrawlStorage(tmp_path / "converted.jsonl")
        converted.save(columnar.iter_load())
        assert converted.path.read_bytes() == jsonl_baseline.path.read_bytes()


# ---------------------------------------------------------------------------
# Config / runner threading


class TestStoreFormatConfig:
    def test_store_formats_constant(self):
        assert STORE_FORMATS == ("jsonl", "columnar")
        assert CrawlStorage.format == "jsonl"
        assert ColumnarStorage.format == "columnar"

    def test_invalid_store_format_rejected(self):
        with pytest.raises(ConfigurationError, match="store_format"):
            ExperimentConfig(store_format="parquet")

    def test_fingerprint_records_only_non_default_formats(self, small_population):
        plain = ExperimentRunner(ExperimentConfig.test_scale())
        fingerprint = plain.campaign_fingerprint(small_population)
        assert "store_format" not in fingerprint  # old jsonl checkpoints keep resuming
        columnar = ExperimentRunner(
            replace(ExperimentConfig.test_scale(), store_format="columnar")
        )
        assert columnar.campaign_fingerprint(small_population)["store_format"] == "columnar"

    def test_runner_rejects_a_mismatched_storage(self, tmp_path):
        config = replace(ExperimentConfig.test_scale(), store_format="columnar")
        with pytest.raises(ConfigurationError, match="store_format"):
            ExperimentRunner(config).run(
                use_cache=False, storage=CrawlStorage(tmp_path / "a.jsonl")
            )
        with pytest.raises(ConfigurationError, match="store_format"):
            ExperimentRunner(ExperimentConfig.test_scale()).run(
                use_cache=False, storage=ColumnarStorage(tmp_path / "a.hbc")
            )
