"""Unit tests for the detector's known-partner list."""

import pytest

from repro.detector.partner_list import KnownPartnerList, build_known_partner_list
from repro.errors import ConfigurationError


class TestKnownPartnerList:
    def test_full_coverage_lists_every_registry_partner(self, registry):
        known = build_known_partner_list(registry)
        assert len(known) == len(registry)
        assert set(known.partner_names) == set(registry.names)

    def test_match_host_resolves_subdomains(self, registry):
        known = build_known_partner_list(registry)
        assert known.match_host("ib.adnxs.com") == "AppNexus"
        assert known.match_host("adnxs.com") == "AppNexus"
        assert known.match_host("securepubads.doubleclick.net") == "DFP"
        assert known.match_host("unknown.example") is None

    def test_bidder_code_resolution(self, registry):
        known = build_known_partner_list(registry)
        assert known.name_for_bidder_code("appnexus") == "AppNexus"
        assert known.name_for_bidder_code("ix") == "Index"
        assert known.name_for_bidder_code("missing") is None

    def test_partial_coverage_drops_partners_but_keeps_big_players(self, registry):
        known = build_known_partner_list(registry, coverage=0.5, seed=1)
        assert len(known) == pytest.approx(len(registry) * 0.5, abs=1)
        for big in ("DFP", "AppNexus", "Rubicon", "Criteo"):
            assert known.contains_partner(big)

    def test_partial_coverage_is_deterministic_per_seed(self, registry):
        a = build_known_partner_list(registry, coverage=0.6, seed=3)
        b = build_known_partner_list(registry, coverage=0.6, seed=3)
        assert a.partner_names == b.partner_names

    def test_invalid_coverage_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            build_known_partner_list(registry, coverage=0.0)
        with pytest.raises(ConfigurationError):
            build_known_partner_list(registry, coverage=1.5)

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            KnownPartnerList([])


class TestMatchHostHotPath:
    def test_lookups_are_memoised_per_host(self, registry):
        known = build_known_partner_list(registry)
        known.match_host("ib.adnxs.com")
        before = known.match_cache_info()
        assert known.match_host("IB.ADNXS.COM") == "AppNexus"  # case-folded hit
        after = known.match_cache_info()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_depth_bound_still_matches_deep_subdomains(self, registry):
        known = build_known_partner_list(registry)
        assert known.match_host("a.b.c.d.e.ib.adnxs.com") == "AppNexus"
        assert known.match_host("a.b.c.d.e.nothing.example") is None

    def test_pickle_round_trip_rebuilds_the_cache(self, registry):
        import pickle

        known = build_known_partner_list(registry)
        known.match_host("ib.adnxs.com")
        restored = pickle.loads(pickle.dumps(known))
        assert restored.match_host("ib.adnxs.com") == "AppNexus"
        assert restored.match_cache_info().currsize == 1  # fresh cache
        assert restored.partner_names == known.partner_names

    def test_entries_without_domains_are_exact_match_only(self):
        from repro.detector.partner_list import _KnownPartner

        known = KnownPartnerList([_KnownPartner(name="X", bidder_code="x", domains=())])
        assert known.match_host("anything.example") is None
        assert known.name_for_bidder_code("x") == "X"
