"""Unit tests for the demand-partner registry."""

import pytest

from repro.ecosystem.registry import NAMED_PARTNER_SPECS, PartnerRegistry, default_registry
from repro.errors import ConfigurationError, UnknownPartnerError
from repro.models import PartnerKind


class TestDefaultRegistry:
    def test_contains_84_partners_by_default(self, registry):
        assert len(registry) == 84

    def test_contains_the_paper_named_top_partners(self, registry):
        for name in ("DFP", "AppNexus", "Rubicon", "Criteo", "Index", "Amazon",
                     "OpenX", "Pubmatic", "AOL", "Sovrn", "Smart"):
            assert name in registry

    def test_dfp_is_an_ad_server(self, registry):
        dfp = registry.get("DFP")
        assert dfp.can_serve_ads
        assert dfp.can_run_server_side
        assert dfp.kind is PartnerKind.AD_SERVER

    def test_lookup_by_bidder_code(self, registry):
        assert registry.by_bidder_code("appnexus").name == "AppNexus"
        assert registry.get("ix").name == "Index"

    def test_unknown_partner_raises(self, registry):
        with pytest.raises(UnknownPartnerError):
            registry.get("NotARealPartner")

    def test_domains_are_unique_and_cover_all_partners(self, registry):
        domains = registry.domains
        assert len(domains) == len(set(domains))
        assert "doubleclick.net" in domains
        assert "adnxs.com" in domains

    def test_is_deterministic_for_a_seed(self):
        a = default_registry(seed=5)
        b = default_registry(seed=5)
        assert [p.name for p in a] == [p.name for p in b]
        assert [p.latency.median_ms for p in a] == [p.latency.median_ms for p in b]

    def test_can_shrink_to_named_partners_only(self):
        small = default_registry(total_partners=20)
        assert len(small) == 20

    def test_rejects_oversized_registry(self):
        with pytest.raises(ConfigurationError):
            default_registry(total_partners=500)

    def test_fastest_named_partners_are_faster_than_slowest(self, registry):
        fastest = registry.get("Piximedia").latency.median_ms
        slowest = registry.get("Adgeneration").latency.median_ms
        assert fastest < 250 < slowest

    def test_popularity_weights_put_dfp_first(self, registry):
        weights = {p.name: p.popularity_weight for p in registry}
        assert weights["DFP"] == max(weights.values())


class TestPartnerRegistryBehaviour:
    def test_subset_preserves_partner_objects(self, registry):
        subset = registry.subset(["DFP", "Criteo"])
        assert len(subset) == 2
        assert subset.get("criteo") is registry.get("Criteo")

    def test_rejects_empty_registry(self):
        with pytest.raises(ConfigurationError):
            PartnerRegistry([])

    def test_rejects_duplicate_names(self, registry):
        dfp = registry.get("DFP")
        with pytest.raises(ConfigurationError):
            PartnerRegistry([dfp, dfp])

    def test_ad_servers_and_server_side_capable_selections(self, registry):
        ad_servers = registry.ad_servers()
        assert any(p.name == "DFP" for p in ad_servers)
        capable = registry.server_side_capable()
        assert {p.name for p in ad_servers} <= {p.name for p in capable} | {p.name for p in ad_servers}
        assert len(capable) >= 5

    def test_describe_lists_every_partner(self, registry):
        rows = registry.describe()
        assert len(rows) == len(registry)
        assert all("latency_median_ms" in row for row in rows)

    def test_contains_accepts_bidder_codes(self, registry):
        assert "appnexus" in registry
        assert "definitely-not-real" not in registry
