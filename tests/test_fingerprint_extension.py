"""The extensible day horizon: growing a finished campaign day by day.

The checkpoint fingerprint treats ``recrawl_days`` as extensible (completed
phases stay immutable; only net-new phases are appended), which is what lets
the continuous-recrawl daemon keep a long-lived campaign growing.  The
acceptance criterion under test: extending a finished campaign by N days
resumes byte-identically versus a fresh run configured with the full horizon
up front — across jsonl/columnar stores and serial/thread/process backends —
while shrinking the horizon and changing the seed or population are still
refused.
"""

import dataclasses

import pytest

from repro.analysis.context import AnalysisContext
from repro.analysis.registry import available_metrics, compute_metric
from repro.crawler.colstore import storage_for
from repro.errors import CheckpointError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from tests.crash_harness import FaultyBackend, SimulatedCrash


def _config(store_format="jsonl", backend="serial", workers=1, **overrides):
    return ExperimentConfig(
        total_sites=400,
        seed=7,
        recrawl_days=1,
        historical_sites=120,
        workers=workers,
        crawl_backend=backend,
        store_format=store_format,
        **overrides,
    )


def _suffix(store_format):
    return "hbc" if store_format == "columnar" else "jsonl"


class TestHorizonExtension:
    @pytest.mark.parametrize("store_format", ["jsonl", "columnar"])
    @pytest.mark.parametrize(
        "backend,workers", [("serial", 1), ("thread", 2), ("process", 2)]
    )
    def test_extension_byte_identical_to_full_horizon_run(
        self, tmp_path, store_format, backend, workers
    ):
        config = _config(store_format, backend, workers)
        grown = storage_for(
            tmp_path / f"grown.{_suffix(store_format)}", format=store_format
        )
        ckpt = str(tmp_path / "cp.json")

        ExperimentRunner(config.with_checkpoint(ckpt)).run(
            use_cache=False, storage=grown
        )
        extended = dataclasses.replace(
            config, recrawl_days=3, checkpoint_path=ckpt, resume=True
        )
        artifacts = ExperimentRunner(extended).run(use_cache=False, storage=grown)

        oneshot = storage_for(
            tmp_path / f"oneshot.{_suffix(store_format)}", format=store_format
        )
        expected = ExperimentRunner(
            dataclasses.replace(config, recrawl_days=3)
        ).run(use_cache=False, storage=oneshot)

        assert grown.path.read_bytes() == oneshot.path.read_bytes()
        assert artifacts.dataset.summary() == expected.dataset.summary()

    def test_day_by_day_growth_equals_one_shot(self, tmp_path):
        """Three single-day extensions (the daemon's tick pattern) == one run."""
        config = _config()
        grown = storage_for(tmp_path / "grown.jsonl")
        ckpt = str(tmp_path / "cp.json")
        ExperimentRunner(
            dataclasses.replace(config, recrawl_days=0, checkpoint_path=ckpt)
        ).run(use_cache=False, storage=grown)
        for days in (1, 2, 3):
            ExperimentRunner(
                dataclasses.replace(
                    config, recrawl_days=days, checkpoint_path=ckpt, resume=True
                )
            ).run(use_cache=False, storage=grown)

        oneshot = storage_for(tmp_path / "oneshot.jsonl")
        ExperimentRunner(dataclasses.replace(config, recrawl_days=3)).run(
            use_cache=False, storage=oneshot
        )
        assert grown.path.read_bytes() == oneshot.path.read_bytes()

    def test_every_offline_metric_matches_after_extension(self, tmp_path):
        config = _config()
        grown = storage_for(tmp_path / "grown.jsonl")
        ckpt = str(tmp_path / "cp.json")
        ExperimentRunner(config.with_checkpoint(ckpt)).run(
            use_cache=False, storage=grown
        )
        extended = ExperimentRunner(
            dataclasses.replace(config, recrawl_days=2, checkpoint_path=ckpt, resume=True)
        ).run(use_cache=False, storage=grown)
        expected = ExperimentRunner(
            dataclasses.replace(config, recrawl_days=2)
        ).run(use_cache=False, storage=storage_for(tmp_path / "oneshot.jsonl"))

        got = AnalysisContext.offline(extended.dataset)
        want = AnalysisContext.offline(expected.dataset)
        for name in available_metrics(got):
            assert compute_metric(name, got).text == compute_metric(name, want).text

    def test_extension_after_mid_day_crash_still_matches(self, tmp_path, monkeypatch):
        """Crash mid-day-1, then resume with a *larger* horizon in one go."""
        import repro.crawler.engine as engine_mod

        config = _config(backend="thread", workers=2)
        ckpt = str(tmp_path / "cp.json")
        storage = storage_for(tmp_path / "grown.jsonl")
        real = engine_mod.backend_from_name
        with monkeypatch.context() as patch:
            patch.setattr(
                engine_mod,
                "backend_from_name",
                lambda name, workers=None: FaultyBackend(real(name, workers=workers), 3),
            )
            with pytest.raises(SimulatedCrash):
                ExperimentRunner(config.with_checkpoint(ckpt)).run(
                    use_cache=False, storage=storage
                )
        ExperimentRunner(
            dataclasses.replace(config, recrawl_days=2, checkpoint_path=ckpt, resume=True)
        ).run(use_cache=False, storage=storage)

        oneshot = storage_for(tmp_path / "oneshot.jsonl")
        ExperimentRunner(dataclasses.replace(config, recrawl_days=2)).run(
            use_cache=False, storage=oneshot
        )
        assert storage.path.read_bytes() == oneshot.path.read_bytes()


class TestHorizonGuards:
    def _finished_campaign(self, tmp_path, **overrides):
        config = _config(**overrides)
        storage = storage_for(tmp_path / "grown.jsonl")
        ckpt = str(tmp_path / "cp.json")
        ExperimentRunner(config.with_checkpoint(ckpt)).run(
            use_cache=False, storage=storage
        )
        return config, ckpt, storage

    def test_shrinking_the_horizon_is_refused(self, tmp_path):
        config, ckpt, storage = self._finished_campaign(tmp_path)
        shrunk = dataclasses.replace(
            config, recrawl_days=0, checkpoint_path=ckpt, resume=True
        )
        with pytest.raises(CheckpointError, match="immutable"):
            ExperimentRunner(shrunk).run(use_cache=False, storage=storage)

    def test_seed_change_is_still_refused(self, tmp_path):
        config, ckpt, storage = self._finished_campaign(tmp_path)
        reseeded = dataclasses.replace(
            config, seed=8, recrawl_days=2, checkpoint_path=ckpt, resume=True
        )
        with pytest.raises(CheckpointError, match="refusing to resume"):
            ExperimentRunner(reseeded).run(use_cache=False, storage=storage)

    def test_population_change_is_still_refused(self, tmp_path):
        config, ckpt, storage = self._finished_campaign(tmp_path)
        bigger = dataclasses.replace(
            config, total_sites=500, recrawl_days=2, checkpoint_path=ckpt, resume=True
        )
        with pytest.raises(CheckpointError, match="refusing to resume"):
            ExperimentRunner(bigger).run(use_cache=False, storage=storage)

    def test_detector_change_is_still_refused(self, tmp_path):
        config, ckpt, storage = self._finished_campaign(tmp_path)
        retuned = dataclasses.replace(
            config,
            detector_coverage=0.5,
            recrawl_days=2,
            checkpoint_path=ckpt,
            resume=True,
        )
        with pytest.raises(CheckpointError, match="refusing to resume"):
            ExperimentRunner(retuned).run(use_cache=False, storage=storage)

    def test_old_checkpoints_with_frozen_horizon_still_resume(self, tmp_path):
        """A checkpoint recording recrawl_days resumes under a larger horizon.

        Every checkpoint records the horizon in its fingerprint; the
        comparison must exclude it on both sides, so files written before the
        extensibility rule (which recorded it too) keep working.
        """
        config, ckpt, storage = self._finished_campaign(tmp_path)
        extended = dataclasses.replace(
            config, recrawl_days=2, checkpoint_path=ckpt, resume=True
        )
        ExperimentRunner(extended).run(use_cache=False, storage=storage)

        oneshot = storage_for(tmp_path / "oneshot.jsonl")
        ExperimentRunner(dataclasses.replace(config, recrawl_days=2)).run(
            use_cache=False, storage=oneshot
        )
        assert storage.path.read_bytes() == oneshot.path.read_bytes()
