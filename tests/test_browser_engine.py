"""Unit and behavioural tests for the page-load engine."""

import pytest

from repro.browser.engine import BrowserEngine
from repro.hb.events import HBEventName
from repro.models import HBFacet, RequestDirection


class TestBrowserEngine:
    def test_load_is_deterministic_per_visit(self, engine, hb_publisher):
        a = engine.load(hb_publisher, visit_index=0)
        b = engine.load(hb_publisher, visit_index=0)
        assert [e.name for e in a.dom_events] == [e.name for e in b.dom_events]
        assert len(a.web_requests) == len(b.web_requests)
        assert a.timings == b.timings

    def test_different_visits_differ(self, engine, hb_publisher):
        a = engine.load(hb_publisher, visit_index=0)
        b = engine.load(hb_publisher, visit_index=1)
        assert a.hb_ground_truth.total_latency_ms != b.hb_ground_truth.total_latency_ms

    def test_hb_page_produces_ground_truth_and_events(self, engine, hb_publisher):
        result = engine.load(hb_publisher)
        assert result.hb_ground_truth is not None
        assert result.hb_ground_truth.facet is hb_publisher.facet
        assert result.hb_ground_truth.n_auctions == hb_publisher.n_auctioned_slots
        assert result.dom_events, "HB pages must emit DOM events"

    def test_non_hb_page_has_no_hb_ground_truth(self, engine, non_hb_publisher):
        result = engine.load(non_hb_publisher)
        assert result.hb_ground_truth is None
        hb_event_names = set(e.value for e in HBEventName)
        assert not [e for e in result.dom_events if e.name in hb_event_names]

    def test_page_timings_are_ordered(self, engine, hb_publisher, non_hb_publisher):
        for publisher in (hb_publisher, non_hb_publisher):
            timings = engine.load(publisher).timings
            assert timings.navigation_start_ms <= timings.header_parsed_ms
            assert timings.header_parsed_ms <= timings.dom_content_loaded_ms
            assert timings.dom_content_loaded_ms <= timings.load_event_ms

    def test_every_page_issues_web_requests(self, engine, hb_publisher, non_hb_publisher):
        for publisher in (hb_publisher, non_hb_publisher):
            result = engine.load(publisher)
            outgoing = [r for r in result.web_requests if r.direction is RequestDirection.OUTGOING]
            assert outgoing, "a page load always fetches at least its own HTML"
            assert outgoing[0].url == publisher.url

    def test_some_non_hb_pages_run_waterfall_ads(self, engine, small_population):
        non_hb = [p for p in small_population if not p.uses_hb][:40]
        with_ads = [engine.load(p) for p in non_hb]
        assert any(result.waterfall_ground_truth for result in with_ads)

    def test_timeout_flag_reflects_configured_budget(self, environment, hb_publisher):
        strict = BrowserEngine(environment, seed=13, page_load_timeout_ms=10.0)
        result = strict.load(hb_publisher)
        assert result.timed_out

    def test_rejects_invalid_timeout(self, environment):
        with pytest.raises(ValueError):
            BrowserEngine(environment, page_load_timeout_ms=0.0)

    def test_server_side_pages_contact_single_partner_host(self, engine, server_side_publisher):
        result = engine.load(server_side_publisher)
        aggregator_domains = server_side_publisher.partners[0].domains
        outgoing_hosts = {
            r.host for r in result.web_requests
            if r.direction is RequestDirection.OUTGOING and r.matches_host(aggregator_domains)
        }
        assert outgoing_hosts, "server-side page must contact its aggregator"
