"""Incremental index maintenance: extend() must equal rebuild-from-scratch.

The dataset's indices are updated in place when the dataset grows, instead of
being invalidated and rebuilt.  These tests assert the two contracts that
make that safe: (1) for every index, growing a warmed dataset chunk by chunk
yields exactly the value a cold dataset over the same detections builds, and
(2) after an extend no cached index is ever rebuilt (``index_stats`` shows
zero new builds), which is what makes ``analyze --watch`` O(delta).
"""

import pytest

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import available_metrics, compute_metric
from repro.detector.records import ObservedAuction, ObservedBid, SiteDetection
from repro.models import HBFacet


def make_detection(domain, day=0, hb=True, facet=HBFacet.CLIENT_SIDE, partners=("AppNexus",),
                   n_bids=1, late=0, latency=500.0, rank=10, cpm=0.2):
    bids = tuple(
        ObservedBid(partner=partners[0], bidder_code=partners[0].lower(), slot_code="s1",
                    cpm=cpm, size="300x250", latency_ms=200.0, late=(i < late))
        for i in range(n_bids)
    )
    auctions = (ObservedAuction(slot_code="s1", size="300x250", bids=bids,
                                start_ms=0.0, end_ms=latency, facet=facet),) if hb else ()
    return SiteDetection(
        domain=domain, rank=rank, hb_detected=hb, facet=facet if hb else None,
        partners=partners if hb else (), auctions=auctions,
        partner_latencies_ms={partners[0]: 200.0} if hb else {},
        total_latency_ms=latency if hb else None, crawl_day=day,
    )


def sample_pool():
    """A varied pool: re-crawls, all facets, non-HB sites, priceless bids."""
    return [
        make_detection("a.example", day=0, n_bids=2, late=1, rank=3),
        make_detection("b.example", day=0, facet=HBFacet.SERVER_SIDE, partners=("DFP",), rank=18),
        make_detection("c.example", day=0, hb=False, rank=40),
        make_detection("a.example", day=1, n_bids=1, rank=3),
        make_detection("d.example", day=1, facet=HBFacet.HYBRID, partners=("Rubicon", "AppNexus"),
                       rank=55, latency=900.0),
        make_detection("e.example", day=1, hb=False, rank=71),
        make_detection("b.example", day=2, facet=HBFacet.SERVER_SIDE, partners=("DFP",),
                       rank=18, cpm=None),
        make_detection("f.example", day=2, facet=HBFacet.CLIENT_SIDE, partners=("Criteo",),
                       rank=101, latency=0.0),
    ]


def warm_all_indices(dataset):
    """Touch every registered index (including two rank-bin parameters)."""
    dataset.hb_detections()
    dataset.sites()
    dataset.hb_sites()
    dataset.auctions()
    dataset.bids()
    dataset.priced_bids()
    dataset.by_facet()
    dataset.auctions_by_facet()
    dataset.bids_by_partner()
    dataset.partner_site_counts()
    dataset.partner_popularity_ranking()
    dataset.partner_latency_samples()
    dataset.site_latencies()
    dataset.hb_latency_values()
    dataset.hb_latencies_by_rank_bin(10)
    dataset.hb_latencies_by_rank_bin(25)
    dataset.crawl_days()
    if dataset.detections:
        dataset.summary()


def index_snapshot(dataset):
    """Every index value, for whole-dataset equality comparison."""
    return {
        "hb_detections": list(dataset.hb_detections()),
        "sites": list(dataset.sites()),
        "hb_sites": list(dataset.hb_sites()),
        "auctions": list(dataset.auctions()),
        "bids": list(dataset.bids()),
        "priced_bids": list(dataset.priced_bids()),
        "by_facet": {k: list(v) for k, v in dataset.by_facet().items()},
        "auctions_by_facet": {k: list(v) for k, v in dataset.auctions_by_facet().items()},
        "bids_by_partner": {k: list(v) for k, v in dataset.bids_by_partner().items()},
        "partner_site_counts": dict(dataset.partner_site_counts()),
        "partner_popularity_ranking": list(dataset.partner_popularity_ranking()),
        "partner_latency_samples": {k: list(v) for k, v in dataset.partner_latency_samples().items()},
        "site_latencies": {k: list(v) for k, v in dataset.site_latencies().items()},
        "hb_latency_values": list(dataset.hb_latency_values()),
        "rank_bin_10": {k: list(v) for k, v in dataset.hb_latencies_by_rank_bin(10).items()},
        "rank_bin_25": {k: list(v) for k, v in dataset.hb_latencies_by_rank_bin(25).items()},
        "crawl_days": dataset.crawl_days(),
        "summary": dataset.summary(),
    }


def chunks(items, k):
    """Split ``items`` into ``k`` contiguous chunks (some possibly empty)."""
    size, extra = divmod(len(items), k)
    out, start = [], 0
    for i in range(k):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


class TestIncrementalEqualsRebuild:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_chunked_extend_matches_one_shot_for_every_index(self, k):
        pool = sample_pool()
        one_shot = CrawlDataset.from_detections(pool)

        grown = CrawlDataset.from_detections(pool[: max(1, len(pool) // (k + 1))])
        warm_all_indices(grown)
        remaining = pool[max(1, len(pool) // (k + 1)):]
        for chunk in chunks(remaining, k):
            grown.extend(chunk)

        assert index_snapshot(grown) == index_snapshot(one_shot)

    def test_extend_never_rebuilds_a_cached_index(self):
        pool = sample_pool()
        dataset = CrawlDataset.from_detections(pool[:3])
        warm_all_indices(dataset)
        stats = dataset.index_stats()
        for chunk in chunks(pool[3:], 3):
            dataset.extend(chunk)
            warm_all_indices(dataset)  # re-access everything
        after = dataset.index_stats()
        assert after["builds"] == stats["builds"]
        assert after["cached"] == stats["cached"]

    def test_duplicate_domains_within_one_delta_batch(self):
        base = [make_detection("x.example", day=0)]
        dataset = CrawlDataset.from_detections(base)
        warm_all_indices(dataset)
        batch = [
            make_detection("y.example", day=1, rank=7),
            make_detection("y.example", day=2, rank=7, latency=800.0),  # re-visit in same batch
            make_detection("x.example", day=1),
        ]
        dataset.extend(batch)
        fresh = CrawlDataset.from_detections(base + batch)
        assert index_snapshot(dataset) == index_snapshot(fresh)
        assert [d.domain for d in dataset.sites()] == ["x.example", "y.example"]

    def test_extend_on_cold_dataset_defers_to_lazy_build(self):
        dataset = CrawlDataset.from_detections(sample_pool()[:2])
        dataset.extend(sample_pool()[2:4])  # nothing cached yet — plain append
        assert dataset.index_stats() == {"cached": 0, "builds": 0}
        assert len(dataset.sites()) == len({d.domain for d in dataset.detections})

    def test_extend_with_empty_iterable_is_a_no_op(self):
        dataset = CrawlDataset.from_detections(sample_pool())
        warm_all_indices(dataset)
        stats = dataset.index_stats()
        snapshot = index_snapshot(dataset)
        dataset.extend([])
        assert dataset.index_stats() == stats
        assert index_snapshot(dataset) == snapshot

    def test_partially_warmed_dataset_updates_only_cached_views(self):
        pool = sample_pool()
        dataset = CrawlDataset.from_detections(pool[:4])
        dataset.hb_detections()
        dataset.bids()  # also caches auctions (dependency)
        dataset.extend(pool[4:])
        fresh = CrawlDataset.from_detections(pool)
        assert dataset.hb_detections() == fresh.hb_detections()
        assert dataset.bids() == fresh.bids()
        assert dataset.summary() == fresh.summary()  # built lazily post-extend

    def test_new_crawl_day_and_new_partner_appear_incrementally(self):
        dataset = CrawlDataset.from_detections(sample_pool()[:2])
        warm_all_indices(dataset)
        dataset.extend([
            make_detection("fresh.example", day=9, partners=("IndexExchange",), rank=200),
        ])
        assert 9 in dataset.crawl_days()
        assert dataset.partner_site_counts()["IndexExchange"] == 1
        assert "IndexExchange" in dataset.partner_popularity_ranking()
        assert dataset.summary()["crawl_days"] == 2  # day 0 (base) + day 9

    def test_invalidate_then_extend_still_consistent(self):
        pool = sample_pool()
        dataset = CrawlDataset.from_detections(pool[:5])
        warm_all_indices(dataset)
        dataset.invalidate_indices()
        dataset.extend(pool[5:])
        assert index_snapshot(dataset) == index_snapshot(CrawlDataset.from_detections(pool))


class TestUpdaterCoverage:
    """The set of cached keys and the set of delta-updatable keys must agree,
    so a future index cannot silently fall out of the O(delta) contract."""

    def test_every_cached_index_key_has_an_updater(self):
        from repro.analysis.dataset import UPDATABLE_INDEX_KEYS

        dataset = CrawlDataset.from_detections(sample_pool())
        warm_all_indices(dataset)
        cached = {
            key[0] if isinstance(key, tuple) else key for key in dataset._indices
        }
        assert cached <= UPDATABLE_INDEX_KEYS
        # ... and warm_all_indices exercises every declared updater, so the
        # incremental == rebuilt property tests above really cover them all.
        assert cached == set(UPDATABLE_INDEX_KEYS)

    def test_unknown_cached_key_is_evicted_not_corrupted(self):
        dataset = CrawlDataset.from_detections(sample_pool()[:4])
        dataset._indices["future_index"] = ["stale"]
        dataset.hb_detections()
        dataset.extend(sample_pool()[4:])
        assert "future_index" not in dataset._indices  # rebuilt lazily, not kept stale
        assert dataset.hb_detections() == CrawlDataset.from_detections(sample_pool()).hb_detections()


class TestMetricsOverIncrementalDataset:
    """Every registered dataset-only metric is byte-identical on a dataset
    grown through extend() vs built in one shot — the registry-level form of
    the incremental == rebuilt property."""

    @pytest.fixture(scope="class")
    def detections(self, experiment_artifacts):
        return list(experiment_artifacts.dataset.detections)

    @pytest.mark.parametrize("k", [2, 4, 7])
    def test_every_offline_metric_is_byte_identical(self, detections, k):
        one_shot = CrawlDataset.from_detections(detections, label="x")
        grown = CrawlDataset(label="x")
        parts = [part for part in chunks(detections, k) if part]
        grown.extend(parts[0])
        warm_all_indices(grown)
        builds_after_warm = grown.index_stats()["builds"]
        for part in parts[1:]:
            grown.extend(part)
        assert grown.index_stats()["builds"] == builds_after_warm

        offline = sorted(available_metrics(frozenset({"dataset"})))
        assert offline  # the registry must expose dataset-only metrics
        for name in offline:
            expected = compute_metric(name, AnalysisContext.offline(one_shot))
            actual = compute_metric(name, AnalysisContext.offline(grown))
            assert actual.text == expected.text, name
            assert repr(actual.data) == repr(expected.data), name
