"""Unit tests for the HB event vocabulary and price bucketing."""

import pytest

from repro.hb.events import (
    HB_EVENT_NAMES,
    HB_PARAM_NAMES,
    HBEventName,
    HBParam,
    RTB_NOTIFICATION_PARAMS,
    price_bucket,
)


class TestVocabulary:
    def test_paper_focus_events_are_present(self):
        assert {"auctionEnd", "bidWon", "slotRenderEnded"} <= set(HB_EVENT_NAMES)

    def test_full_prebid_lifecycle_is_modelled(self):
        for name in ("auctionInit", "requestBids", "bidRequested", "bidResponse",
                     "auctionEnd", "bidWon", "slotRenderEnded", "adRenderFailed"):
            assert name in HB_EVENT_NAMES

    def test_hb_params_include_the_paper_examples(self):
        assert "hb_bidder" in HB_PARAM_NAMES
        assert "hb_pb" in HB_PARAM_NAMES
        assert "hb_size" in HB_PARAM_NAMES

    def test_hb_params_and_rtb_params_are_disjoint(self):
        assert not set(HB_PARAM_NAMES) & set(RTB_NOTIFICATION_PARAMS)

    def test_enum_string_values(self):
        assert str(HBEventName.BID_WON) == "bidWon"
        assert str(HBParam.PRICE_BUCKET) == "hb_pb"


class TestPriceBucket:
    def test_rounds_down_to_increment(self):
        assert price_bucket(0.537) == "0.53"
        assert price_bucket(0.5399999) == "0.53"

    def test_caps_very_high_bids(self):
        assert price_bucket(99.0, cap=20.0) == "20.00"

    def test_zero_is_valid(self):
        assert price_bucket(0.0) == "0.00"

    def test_custom_increment(self):
        assert price_bucket(1.37, increment=0.10) == "1.30"

    def test_rejects_invalid_input(self):
        with pytest.raises(ValueError):
            price_bucket(-0.1)
        with pytest.raises(ValueError):
            price_bucket(1.0, increment=0.0)
