"""Unit tests for crawl dataset persistence."""

import json

import pytest

from repro.crawler.storage import CrawlStorage, detection_from_dict, detection_to_dict
from repro.detector.records import ObservedAuction, ObservedBid, SiteDetection
from repro.errors import StorageError
from repro.models import HBFacet


def sample_detection(domain="pub.example", day=0):
    bid = ObservedBid(partner="AppNexus", bidder_code="appnexus", slot_code="s1",
                      cpm=0.31, size="300x250", latency_ms=210.0, won=True)
    auction = ObservedAuction(slot_code="s1", size="300x250", bids=(bid,),
                              start_ms=100.0, end_ms=650.0, facet=HBFacet.HYBRID)
    return SiteDetection(
        domain=domain, rank=42, hb_detected=True, facet=HBFacet.HYBRID, library="prebid.js",
        partners=("DFP", "AppNexus"), auctions=(auction,),
        partner_latencies_ms={"AppNexus": 210.0}, total_latency_ms=550.0,
        detection_channels=("dom-events", "web-requests"), crawl_day=day, page_load_ms=4200.0,
    )


class TestSerialisation:
    def test_round_trip_preserves_everything(self):
        original = sample_detection()
        restored = detection_from_dict(detection_to_dict(original))
        assert restored == original

    def test_non_hb_detection_round_trips(self):
        original = SiteDetection(domain="plain.example", rank=7, hb_detected=False)
        assert detection_from_dict(detection_to_dict(original)) == original

    def test_malformed_record_raises_storage_error(self):
        with pytest.raises(StorageError):
            detection_from_dict({"domain": "x.example"})


class TestCrawlStorage:
    def test_save_and_load_round_trip(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        detections = [sample_detection(), sample_detection("other.example", day=3)]
        assert storage.save(detections) == 2
        loaded = storage.load()
        assert loaded == detections

    def test_append_adds_records(self, tmp_path):
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save([sample_detection()])
        storage.append([sample_detection("late.example", day=1)])
        assert len(storage.load()) == 2

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        storage.save([sample_detection()])
        path.write_text(path.read_text() + "\n\n", encoding="utf-8")
        assert len(storage.load()) == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            CrawlStorage(tmp_path / "missing.jsonl").load()

    def test_invalid_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        path.write_text('{"domain": "x"}\nnot json\n', encoding="utf-8")
        with pytest.raises(StorageError):
            CrawlStorage(path).load()

    def test_saved_file_is_valid_json_lines(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        CrawlStorage(path).save([sample_detection()])
        for line in path.read_text(encoding="utf-8").splitlines():
            json.loads(line)
