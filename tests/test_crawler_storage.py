"""Unit tests for crawl dataset persistence."""

import json

import pytest

from repro.crawler.storage import CrawlStorage, detection_from_dict, detection_to_dict
from repro.detector.records import ObservedAuction, ObservedBid, SiteDetection
from repro.errors import StorageError
from repro.models import HBFacet


def sample_detection(domain="pub.example", day=0):
    bid = ObservedBid(partner="AppNexus", bidder_code="appnexus", slot_code="s1",
                      cpm=0.31, size="300x250", latency_ms=210.0, won=True)
    auction = ObservedAuction(slot_code="s1", size="300x250", bids=(bid,),
                              start_ms=100.0, end_ms=650.0, facet=HBFacet.HYBRID)
    return SiteDetection(
        domain=domain, rank=42, hb_detected=True, facet=HBFacet.HYBRID, library="prebid.js",
        partners=("DFP", "AppNexus"), auctions=(auction,),
        partner_latencies_ms={"AppNexus": 210.0}, total_latency_ms=550.0,
        detection_channels=("dom-events", "web-requests"), crawl_day=day, page_load_ms=4200.0,
    )


class TestSerialisation:
    def test_round_trip_preserves_everything(self):
        original = sample_detection()
        restored = detection_from_dict(detection_to_dict(original))
        assert restored == original

    def test_non_hb_detection_round_trips(self):
        original = SiteDetection(domain="plain.example", rank=7, hb_detected=False)
        assert detection_from_dict(detection_to_dict(original)) == original

    def test_malformed_record_raises_storage_error(self):
        with pytest.raises(StorageError):
            detection_from_dict({"domain": "x.example"})


class TestCrawlStorage:
    def test_save_and_load_round_trip(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        detections = [sample_detection(), sample_detection("other.example", day=3)]
        assert storage.save(detections) == 2
        loaded = storage.load()
        assert loaded == detections

    def test_append_adds_records(self, tmp_path):
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save([sample_detection()])
        storage.append([sample_detection("late.example", day=1)])
        assert len(storage.load()) == 2

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        storage.save([sample_detection()])
        path.write_text(path.read_text() + "\n\n", encoding="utf-8")
        assert len(storage.load()) == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            CrawlStorage(tmp_path / "missing.jsonl").load()

    def test_invalid_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        path.write_text('{"domain": "x"}\nnot json\n', encoding="utf-8")
        with pytest.raises(StorageError):
            CrawlStorage(path).load()

    def test_saved_file_is_valid_json_lines(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        CrawlStorage(path).save([sample_detection()])
        for line in path.read_text(encoding="utf-8").splitlines():
            json.loads(line)


class TestEdgeCaseRoundTrips:
    def test_timed_out_page_round_trips(self, tmp_path):
        """A killed-at-60s page: nothing observed, only the load bookkeeping."""
        detection = SiteDetection(
            domain="slow.example", rank=9_001, hb_detected=False,
            crawl_day=3, page_load_ms=61_204.5,
        )
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save([detection])
        assert storage.load() == [detection]

    def test_hb_detection_with_no_auctions_or_partners_round_trips(self, tmp_path):
        """DOM events alone can flag HB before any auction/partner is seen."""
        detection = SiteDetection(
            domain="quiet.example", rank=12, hb_detected=True, facet=HBFacet.CLIENT_SIDE,
            library="prebid.js", partners=(), auctions=(),
            detection_channels=("dom-events",),
        )
        restored = detection_from_dict(detection_to_dict(detection))
        assert restored == detection
        assert restored.partners == ()
        assert restored.auctions == ()
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save([detection])
        assert storage.load() == [detection]

    def test_auction_with_no_bids_round_trips(self, tmp_path):
        auction = ObservedAuction(slot_code="s1", size=None, bids=(),
                                  start_ms=10.0, end_ms=20.0, facet=HBFacet.CLIENT_SIDE)
        detection = SiteDetection(
            domain="nobids.example", rank=5, hb_detected=True, facet=HBFacet.CLIENT_SIDE,
            auctions=(auction,),
        )
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save([detection])
        assert storage.load() == [detection]


class TestDetectionSink:
    def detections(self):
        return [sample_detection(f"site{i}.example", day=i) for i in range(6)]

    def test_chunked_writes_equal_one_shot_save(self, tmp_path):
        detections = self.detections()
        chunked_path = tmp_path / "chunked.jsonl"
        with CrawlStorage(chunked_path).open_sink() as sink:
            sink.write_many(detections[:2])
            sink.write(detections[2])
            sink.write_many(detections[3:])
        at_once_path = tmp_path / "at_once.jsonl"
        CrawlStorage(at_once_path).save(detections)
        assert chunked_path.read_bytes() == at_once_path.read_bytes()

    def test_sink_counts_written_records(self, tmp_path):
        detections = self.detections()
        with CrawlStorage(tmp_path / "crawl.jsonl").open_sink() as sink:
            assert sink.write_many(detections[:4]) == 4
            sink.write(detections[4])
            assert sink.count == 5

    def test_fresh_sink_truncates_previous_content(self, tmp_path):
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save(self.detections())
        with storage.open_sink() as sink:
            sink.write(sample_detection())
        assert len(storage.load()) == 1

    def test_append_sink_extends_previous_content(self, tmp_path):
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save(self.detections()[:2])
        with storage.open_sink(append=True) as sink:
            sink.write_many(self.detections()[2:4])
        assert storage.load() == self.detections()[:4]

    def test_one_sink_per_day_equals_one_append_per_day(self, tmp_path):
        """The longitudinal pattern: a fresh append-mode sink per crawl day."""
        detections = self.detections()
        sink_path = tmp_path / "sinks.jsonl"
        for day_chunk in (detections[:3], detections[3:]):
            with CrawlStorage(sink_path).open_sink(append=True) as sink:
                sink.write_many(day_chunk)
        append_path = tmp_path / "appends.jsonl"
        CrawlStorage(append_path).append(detections[:3])
        CrawlStorage(append_path).append(detections[3:])
        assert sink_path.read_bytes() == append_path.read_bytes()

    def test_entering_sink_creates_parent_directories(self, tmp_path):
        nested = tmp_path / "deep" / "run" / "crawl.jsonl"
        with CrawlStorage(nested).open_sink() as sink:
            pass
        assert nested.exists()
        assert sink.count == 0

    def test_write_after_close_raises_instead_of_truncating(self, tmp_path):
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        sink = storage.open_sink()
        sink.write(sample_detection())
        sink.close()
        with pytest.raises(StorageError):
            sink.write(sample_detection("late.example"))
        assert storage.load() == [sample_detection()]


class TestBufferedSink:
    def detections(self, n=6):
        return [sample_detection(f"site{i}.example", day=i) for i in range(n)]

    def test_writes_are_buffered_until_the_flush_interval(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        with CrawlStorage(path).open_sink(flush_every=4) as sink:
            for detection in self.detections(3):
                sink.write(detection)
            assert path.read_text(encoding="utf-8") == ""  # still in memory
            assert sink.flushes == 0
            sink.write(self.detections(4)[3])  # 4th record crosses the interval
            assert sink.flushes == 1
            assert len(path.read_text(encoding="utf-8").splitlines()) == 4
        assert len(CrawlStorage(path).load()) == 4

    def test_flush_interval_does_not_change_the_bytes(self, tmp_path):
        detections = self.detections(11)
        paths = []
        for flush_every in (1, 3, 64):
            path = tmp_path / f"flush{flush_every}.jsonl"
            with CrawlStorage(path).open_sink(flush_every=flush_every) as sink:
                sink.write_many(detections)
            paths.append(path)
        reference = paths[0].read_bytes()
        assert all(path.read_bytes() == reference for path in paths[1:])

    def test_close_flushes_the_tail(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        sink = CrawlStorage(path).open_sink(flush_every=100)
        sink.write_many(self.detections(5))
        sink.close()
        assert len(CrawlStorage(path).load()) == 5
        sink.close()  # idempotent

    def test_explicit_flush_mid_stream(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        with CrawlStorage(path).open_sink(flush_every=100) as sink:
            sink.write_many(self.detections(2))
            sink.flush()
            assert len(CrawlStorage(path).load()) == 2
            sink.flush()  # nothing buffered: no-op
            assert sink.flushes == 1

    def test_flush_every_one_is_unbuffered(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        with CrawlStorage(path).open_sink(flush_every=1) as sink:
            sink.write(sample_detection())
            assert sink.flushes == 1
            assert len(CrawlStorage(path).load()) == 1

    def test_invalid_flush_interval_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            CrawlStorage(tmp_path / "x.jsonl").open_sink(flush_every=0)


class TestReadNew:
    def detections(self, n=5):
        return [sample_detection(f"site{i}.example", day=i) for i in range(n)]

    def test_tail_reads_resume_from_the_returned_offset(self, tmp_path):
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        detections = self.detections()
        storage.save(detections[:2])
        first, offset = storage.read_new(0)
        assert first == detections[:2]
        storage.append(detections[2:])
        second, offset2 = storage.read_new(offset)
        assert second == detections[2:]
        assert offset2 == storage.path.stat().st_size
        third, offset3 = storage.read_new(offset2)
        assert third == [] and offset3 == offset2

    def test_partial_trailing_line_is_left_for_the_next_read(self, tmp_path):
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save(self.detections(2))
        full = storage.path.read_bytes()
        cut = len(full) - 7  # chop the tail of the last record
        storage.path.write_bytes(full[:cut])
        got, offset = storage.read_new(0)
        assert len(got) == 1  # only the complete first line
        storage.path.write_bytes(full)  # the writer finishes the record
        rest, offset2 = storage.read_new(offset)
        assert rest == self.detections(2)[1:]
        assert offset2 == len(full)

    def test_missing_file_yields_nothing(self, tmp_path):
        got, offset = CrawlStorage(tmp_path / "missing.jsonl").read_new(0)
        assert got == [] and offset == 0

    def test_truncated_file_raises_instead_of_stalling(self, tmp_path):
        """A restarted crawl truncates the file; a stale offset must surface."""
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save(self.detections(4))
        _, offset = storage.read_new(0)
        storage.save(self.detections(1))  # fresh "w"-mode sink shrinks the file
        with pytest.raises(StorageError, match="truncated"):
            storage.read_new(offset)
        assert storage.read_new(0)[0] == self.detections(1)  # restart works

    def test_negative_offset_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            CrawlStorage(tmp_path / "x.jsonl").read_new(-1)

    def test_replaced_file_with_garbage_past_offset_fails_loudly(self, tmp_path):
        """A same-or-larger replacement file puts arbitrary bytes at the old
        offset; tailing must raise instead of silently yielding junk."""
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save(self.detections(2))
        _, offset = storage.read_new(0)
        storage.path.write_bytes(b"z" * (offset + 40) + b"\n")
        with pytest.raises(StorageError, match="invalid JSON"):
            storage.read_new(offset)


class TestRecoverTo:
    """Sink-tail recovery: the crash-resume primitive must never double-count."""

    def detections(self, n=5):
        return [sample_detection(f"site{i}.example", day=i) for i in range(n)]

    def saved(self, tmp_path, n=5):
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save(self.detections(n))
        return storage

    def line_offset(self, storage, k):
        """Byte offset of the end of the k-th line."""
        blob = storage.path.read_bytes()
        offset = 0
        for _ in range(k):
            offset = blob.index(b"\n", offset) + 1
        return offset

    def test_recovers_prefix_and_truncates_the_tail(self, tmp_path):
        storage = self.saved(tmp_path)
        offset = self.line_offset(storage, 3)
        recovered = storage.recover_to(offset)
        assert recovered == self.detections()[:3]
        assert storage.path.stat().st_size == offset
        assert storage.load() == self.detections()[:3]

    def test_partial_trailing_line_is_dropped(self, tmp_path):
        """A crash can flush a torn record past the checkpointed offset."""
        storage = self.saved(tmp_path, 3)
        offset = self.line_offset(storage, 2)
        blob = storage.path.read_bytes()
        storage.path.write_bytes(blob[: offset + 17])  # torn third record
        assert storage.recover_to(offset) == self.detections(3)[:2]
        assert storage.path.stat().st_size == offset

    def test_offset_zero_empties_the_file(self, tmp_path):
        storage = self.saved(tmp_path, 2)
        assert storage.recover_to(0) == []
        assert storage.path.stat().st_size == 0

    def test_offset_zero_on_a_missing_file_is_a_fresh_start(self, tmp_path):
        storage = CrawlStorage(tmp_path / "missing.jsonl")
        assert storage.recover_to(0) == []
        assert not storage.path.exists()

    def test_missing_file_with_recorded_bytes_fails_loudly(self, tmp_path):
        storage = CrawlStorage(tmp_path / "missing.jsonl")
        with pytest.raises(StorageError, match="missing"):
            storage.recover_to(100)

    def test_file_truncated_below_offset_fails_loudly(self, tmp_path):
        storage = self.saved(tmp_path, 2)
        size = storage.path.stat().st_size
        storage.path.write_bytes(storage.path.read_bytes()[: size // 2])
        with pytest.raises(StorageError, match="truncated or replaced"):
            storage.recover_to(size)

    def test_replaced_file_offset_off_boundary_fails_loudly(self, tmp_path):
        storage = self.saved(tmp_path)
        offset = self.line_offset(storage, 2)
        storage.path.write_bytes(b"x" * (offset + 50))  # alien, no newline at offset
        with pytest.raises(StorageError, match="record boundary"):
            storage.recover_to(offset)

    def test_replaced_file_with_malformed_prefix_fails_loudly(self, tmp_path):
        storage = self.saved(tmp_path)
        offset = self.line_offset(storage, 2)
        storage.path.write_bytes(b"x" * (offset - 1) + b"\n" + b"y" * 60)
        with pytest.raises(StorageError, match="invalid JSON"):
            storage.recover_to(offset)

    def test_failed_recovery_leaves_the_file_untouched(self, tmp_path):
        """Parse errors must surface before any truncation destroys evidence."""
        storage = self.saved(tmp_path)
        offset = self.line_offset(storage, 2)
        alien = b"x" * (offset - 1) + b"\n" + b"y" * 60
        storage.path.write_bytes(alien)
        with pytest.raises(StorageError):
            storage.recover_to(offset)
        assert storage.path.read_bytes() == alien

    def test_negative_offset_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            CrawlStorage(tmp_path / "x.jsonl").recover_to(-1)

    def test_read_new_continues_cleanly_after_recovery(self, tmp_path):
        """recover_to + append is exactly what resume does; a watcher tailing
        from the recovered offset must see only the new records."""
        storage = self.saved(tmp_path, 4)
        offset = self.line_offset(storage, 2)
        kept = storage.recover_to(offset)
        assert [d.domain for d in kept] == ["site0.example", "site1.example"]
        storage.append(self.detections(4)[2:])
        tailed, end = storage.read_new(offset)
        assert tailed == self.detections(4)[2:]
        assert end == storage.path.stat().st_size


class TestSinkOffset:
    def detections(self, n=6):
        return [sample_detection(f"site{i}.example", day=i) for i in range(n)]

    def test_offset_tracks_flushed_bytes_only(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        with CrawlStorage(path).open_sink(flush_every=3) as sink:
            assert sink.offset == 0
            sink.write_many(self.detections(2))
            assert sink.offset == 0  # still buffered
            sink.write(self.detections(3)[2])  # crosses the interval
            assert sink.offset == path.stat().st_size > 0
            sink.write(self.detections(4)[3])
            buffered_at = sink.offset
            sink.flush()
            assert sink.offset == path.stat().st_size > buffered_at

    def test_append_sink_starts_at_the_existing_size(self, tmp_path):
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save(self.detections(2))
        base = storage.path.stat().st_size
        with storage.open_sink(append=True, flush_every=1) as sink:
            assert sink.offset == base
            sink.write(self.detections(3)[2])
            assert sink.offset == storage.path.stat().st_size > base

    def test_append_sink_offset_first_read_after_a_flush(self, tmp_path):
        """The lazy offset must not double-count a payload already written
        when it is first consulted only after the first flush."""
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save(self.detections(2))
        with storage.open_sink(append=True, flush_every=1) as sink:
            sink.write(self.detections(3)[2])  # flushes before offset is read
            assert sink.offset == storage.path.stat().st_size

    def test_fresh_sink_offset_ignores_stale_content(self, tmp_path):
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save(self.detections(2))
        sink = storage.open_sink()  # "w" mode will truncate on open
        assert sink.offset == 0
        sink.close()


class TestSinkCloseSafety:
    """close() stays idempotent and never masks a mid-crawl error."""

    class ExplodingHandle:
        def __init__(self):
            self.closed = False

        def write(self, data):
            raise OSError("disk full")

        def flush(self):  # pragma: no cover - never reached past write
            pass

        def close(self):
            self.closed = True

    def test_close_twice_after_a_flush_failure(self, tmp_path):
        sink = CrawlStorage(tmp_path / "crawl.jsonl").open_sink(flush_every=100)
        sink.write(sample_detection())
        handle = self.ExplodingHandle()
        sink._handle = handle
        with pytest.raises(StorageError, match="disk full"):
            sink.close()
        assert handle.closed  # the OS handle was released despite the failure
        sink.close()  # second close after the error: clean no-op
        with pytest.raises(StorageError):
            sink.write(sample_detection())  # and the sink stays closed

    def test_exit_does_not_mask_the_body_exception(self, tmp_path):
        """A crawl error inside `with sink:` must surface even when the final
        close-flush fails too (e.g. the disk that killed the crawl is full)."""
        with pytest.raises(ZeroDivisionError):
            with CrawlStorage(tmp_path / "crawl.jsonl").open_sink(flush_every=100) as sink:
                sink.write(sample_detection())
                sink._handle = self.ExplodingHandle()
                1 / 0
        assert sink._closed

    def test_exit_still_raises_close_failures_on_a_clean_body(self, tmp_path):
        with pytest.raises(StorageError, match="disk full"):
            with CrawlStorage(tmp_path / "crawl.jsonl").open_sink(flush_every=100) as sink:
                sink.write(sample_detection())
                sink._handle = self.ExplodingHandle()

    def test_engine_close_does_not_mask_a_crawl_error(self):
        """CrawlEngine.__exit__ swallows teardown failures while an exception
        is unwinding, and surfaces them on a clean exit."""
        from repro.crawler.engine import CrawlEngine

        class ExplodingBackend:
            name = "exploding"
            streams_inline = True

            def prepare(self, context):
                pass

            def execute(self, shards, crawl_day, on_detection):
                return iter(())

            def shutdown(self):
                raise RuntimeError("pool teardown failed")

        engine = CrawlEngine.__new__(CrawlEngine)
        engine.backend = ExplodingBackend()
        with pytest.raises(ZeroDivisionError):
            with engine:
                1 / 0
        with pytest.raises(RuntimeError, match="teardown"):
            with engine:
                pass


class TestSizeProbe:
    def test_missing_file_is_zero(self, tmp_path):
        assert CrawlStorage(tmp_path / "missing.jsonl").size() == 0

    def test_tracks_the_file_exactly(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        assert storage.size() == 0
        storage.save([sample_detection()])
        assert storage.size() == path.stat().st_size
        storage.append([sample_detection("late.example", day=1)])
        assert storage.size() == path.stat().st_size

    def test_size_gates_read_new(self, tmp_path):
        """The cheap polling pattern: only call read_new when size() grew."""
        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        storage.save([sample_detection()])
        new, offset = storage.read_new(0)
        assert len(new) == 1
        assert storage.size() == offset  # drained: a poller can skip the read
        storage.append([sample_detection("more.example", day=1)])
        assert storage.size() > offset   # stale: worth reading again


class TestConcurrentTailing:
    """read_new under a live writer: torn nothing, duplicated nothing."""

    def test_mid_flush_partial_line_is_deferred(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        full = json.dumps(detection_to_dict(sample_detection())) + "\n"
        partial = json.dumps(detection_to_dict(sample_detection("cut.example")))
        # simulate a flush that landed mid-record: one whole line + a prefix
        path.write_text(full + partial[: len(partial) // 2], encoding="utf-8")
        new, offset = storage.read_new(0)
        assert [d.domain for d in new] == ["pub.example"]
        assert offset == len(full.encode("utf-8"))  # a record boundary
        # the writer finishes the line; the next read picks up exactly it
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(partial[len(partial) // 2 :] + "\n")
        new, _ = storage.read_new(offset)
        assert [d.domain for d in new] == ["cut.example"]

    def test_threaded_writer_and_reader_never_tear_or_duplicate(self, tmp_path):
        import threading

        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        written = [sample_detection(f"site{i:03d}.example", day=i % 3) for i in range(200)]
        done = threading.Event()

        def writer():
            with storage.open_sink(flush_every=1) as sink:
                for d in written:
                    sink.write(d)
            done.set()

        seen = []
        offset = 0
        thread = threading.Thread(target=writer)
        thread.start()
        try:
            while not (done.is_set() and storage.size() == offset):
                if storage.size() > offset:
                    new, offset = storage.read_new(offset)
                    seen.extend(new)
        finally:
            thread.join(timeout=30)
        assert seen == written
