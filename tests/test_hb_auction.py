"""Unit tests for ground-truth auction records."""

import pytest

from repro.errors import AuctionError
from repro.hb.auction import BidOutcome, HeaderBiddingOutcome, SlotAuctionOutcome, merge_outcomes
from repro.models import AdSlot, AdSlotSize, HBFacet, SaleChannel


def make_bid(**overrides):
    defaults = dict(
        partner_name="AppNexus",
        bidder_code="appnexus",
        slot_code="slot-1",
        size=AdSlotSize(300, 250),
        cpm=0.4,
        requested_at_ms=100.0,
        responded_at_ms=350.0,
        late=False,
    )
    defaults.update(overrides)
    return BidOutcome(**defaults)


def make_slot_outcome(bids=(), **overrides):
    defaults = dict(
        slot=AdSlot(code="slot-1", primary_size=AdSlotSize(300, 250)),
        bids=tuple(bids),
        winning_channel=SaleChannel.HEADER_BIDDING,
        winner="AppNexus",
        clearing_cpm=0.4,
        auction_start_ms=100.0,
        ad_server_called_at_ms=600.0,
        ad_server_responded_at_ms=700.0,
    )
    defaults.update(overrides)
    return SlotAuctionOutcome(**defaults)


class TestBidOutcome:
    def test_latency_is_response_minus_request(self):
        assert make_bid().latency_ms == pytest.approx(250.0)

    def test_no_bid_has_no_price(self):
        no_bid = make_bid(cpm=None)
        assert not no_bid.is_bid

    def test_rejects_response_before_request(self):
        with pytest.raises(AuctionError):
            make_bid(responded_at_ms=50.0)

    def test_rejects_winning_no_bid(self):
        with pytest.raises(AuctionError):
            make_bid(cpm=None, won=True)

    def test_rejects_negative_cpm(self):
        with pytest.raises(AuctionError):
            make_bid(cpm=-0.5)


class TestSlotAuctionOutcome:
    def test_total_latency_spans_request_to_ad_server_response(self):
        outcome = make_slot_outcome([make_bid()])
        assert outcome.total_latency_ms == pytest.approx(600.0)

    def test_late_and_on_time_bids_partition_received_bids(self):
        bids = [make_bid(), make_bid(partner_name="Criteo", bidder_code="criteo", late=True),
                make_bid(partner_name="Sovrn", bidder_code="sovrn", cpm=None)]
        outcome = make_slot_outcome(bids)
        assert len(outcome.received_bids) == 2
        assert len(outcome.late_bids) == 1
        assert len(outcome.on_time_bids) == 1

    def test_participating_partners_are_deduplicated_in_order(self):
        bids = [make_bid(), make_bid(slot_code="slot-1"), make_bid(partner_name="Criteo", bidder_code="criteo")]
        outcome = make_slot_outcome(bids)
        assert outcome.participating_partners == ("AppNexus", "Criteo")

    def test_rejects_inconsistent_timestamps(self):
        with pytest.raises(AuctionError):
            make_slot_outcome(ad_server_called_at_ms=50.0)
        with pytest.raises(AuctionError):
            make_slot_outcome(ad_server_responded_at_ms=500.0, ad_server_called_at_ms=600.0)


class TestHeaderBiddingOutcome:
    def test_aggregates_across_slots(self):
        outcome = HeaderBiddingOutcome(
            domain="x.example",
            facet=HBFacet.CLIENT_SIDE,
            slot_outcomes=(make_slot_outcome([make_bid()]),
                           make_slot_outcome([make_bid(cpm=None)], winner=None,
                                             winning_channel=SaleChannel.FALLBACK, clearing_cpm=0.0)),
            wrapper_timeout_ms=3000.0,
        )
        assert outcome.n_auctions == 2
        assert len(outcome.all_bids) == 2
        assert len(outcome.received_bids) == 1
        assert outcome.total_latency_ms == pytest.approx(600.0)
        assert outcome.participating_partners == ("AppNexus",)
        assert set(outcome.bids_by_partner()) == {"AppNexus"}

    def test_requires_at_least_one_slot(self):
        with pytest.raises(AuctionError):
            HeaderBiddingOutcome(domain="x", facet=HBFacet.HYBRID, slot_outcomes=(),
                                 wrapper_timeout_ms=3000.0)

    def test_merge_outcomes_counts(self):
        outcome = HeaderBiddingOutcome(
            domain="x.example",
            facet=HBFacet.CLIENT_SIDE,
            slot_outcomes=(make_slot_outcome([make_bid(), make_bid(partner_name="Criteo",
                                                                   bidder_code="criteo", late=True)]),),
            wrapper_timeout_ms=3000.0,
        )
        counts = merge_outcomes([outcome, outcome])
        assert counts == {"auctions": 2, "bids": 4, "late_bids": 2}
