"""Unit tests for the DOM event bus."""

import pytest

from repro.browser.clock import SimulatedClock
from repro.browser.dom import DomEventBus


@pytest.fixture()
def bus():
    return DomEventBus(SimulatedClock())


class TestDomEventBus:
    def test_emit_records_event_at_current_time(self, bus):
        bus._clock.advance(123.0)
        event = bus.emit("auctionEnd", {"bidsReceived": 3})
        assert event.timestamp_ms == 123.0
        assert bus.events == (event,)

    def test_emit_with_explicit_timestamp(self, bus):
        event = bus.emit("bidWon", timestamp_ms=55.0)
        assert event.timestamp_ms == 55.0

    def test_named_listener_receives_only_its_events(self, bus):
        received = []
        bus.add_listener("bidResponse", received.append)
        bus.emit("bidResponse", {"bidder": "appnexus"})
        bus.emit("auctionEnd")
        assert [event.name for event in received] == ["bidResponse"]

    def test_wildcard_listener_receives_everything(self, bus):
        received = []
        bus.add_wildcard_listener(received.append)
        bus.emit("auctionInit")
        bus.emit("bidWon")
        assert [event.name for event in received] == ["auctionInit", "bidWon"]

    def test_remove_listener_stops_delivery(self, bus):
        received = []
        bus.add_listener("bidWon", received.append)
        bus.remove_listener("bidWon", received.append)
        bus.emit("bidWon")
        assert received == []

    def test_events_named_filters(self, bus):
        bus.emit("auctionInit")
        bus.emit("bidWon")
        bus.emit("bidWon")
        assert len(bus.events_named("bidWon")) == 2
        assert len(bus.events_named("auctionInit", "bidWon")) == 3

    def test_len_iter_and_clear(self, bus):
        bus.emit("auctionInit")
        bus.emit("auctionEnd")
        assert len(bus) == 2
        assert [event.name for event in bus] == ["auctionInit", "auctionEnd"]
        bus.clear()
        assert len(bus) == 0
