"""Unit tests for the longitudinal crawl scheduler."""

import pytest

from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.scheduler import LongitudinalScheduler
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def longitudinal(environment, detector, small_population):
    crawler = Crawler(environment, detector, CrawlConfig(seed=9))
    scheduler = LongitudinalScheduler(crawler, recrawl_days=2)
    return scheduler.run(small_population, domains=small_population.domains[:150])


class TestLongitudinalScheduler:
    def test_discovery_covers_requested_domains(self, longitudinal):
        assert longitudinal.discovery.pages_visited == 150

    def test_daily_recrawls_only_visit_hb_sites(self, longitudinal):
        hb_domains = set(longitudinal.discovery.hb_domains)
        assert longitudinal.n_days == 2
        for daily in longitudinal.daily_results:
            assert {d.domain for d in daily.detections} == hb_domains

    def test_crawl_days_are_tagged(self, longitudinal):
        days = {d.crawl_day for d in longitudinal.all_detections}
        assert days == {0, 1, 2}

    def test_total_pages_add_up(self, longitudinal):
        expected = 150 + 2 * len(longitudinal.discovery.hb_domains)
        assert longitudinal.pages_visited == expected
        assert len(longitudinal.all_detections) == expected

    def test_hb_detections_view(self, longitudinal):
        assert all(d.hb_detected for d in longitudinal.hb_detections)

    def test_zero_recrawl_days_is_allowed(self, environment, detector, small_population):
        crawler = Crawler(environment, detector)
        scheduler = LongitudinalScheduler(crawler, recrawl_days=0)
        result = scheduler.run(small_population, domains=small_population.domains[:20])
        assert result.n_days == 0
        assert result.pages_visited == 20

    def test_negative_recrawl_days_rejected(self, environment, detector):
        crawler = Crawler(environment, detector)
        with pytest.raises(ConfigurationError):
            LongitudinalScheduler(crawler, recrawl_days=-1)
