"""Direct unit tests for the facet-breakdown analysis (§4.6) on synthetic data."""

import pytest

from repro.analysis import AnalysisContext, compute_metric, facets
from repro.analysis.dataset import CrawlDataset
from repro.detector.records import SiteDetection
from repro.errors import EmptyDatasetError
from repro.models import HBFacet


def detection(domain, facet, hb=True, day=0, rank=10):
    return SiteDetection(
        domain=domain, rank=rank, hb_detected=hb,
        facet=facet if hb else None,
        partners=("AppNexus",) if hb else (),
        crawl_day=day,
    )


@pytest.fixture()
def facet_dataset():
    return CrawlDataset.from_detections([
        detection("a.example", HBFacet.SERVER_SIDE),
        detection("b.example", HBFacet.SERVER_SIDE),
        detection("b.example", HBFacet.SERVER_SIDE, day=1),  # re-crawl, not double-counted
        detection("c.example", HBFacet.CLIENT_SIDE),
        detection("d.example", HBFacet.HYBRID),
        detection("e.example", None, hb=False),
    ])


class TestFacetCounts:
    def test_counts_one_record_per_site(self, facet_dataset):
        counts = facets.facet_counts(facet_dataset)
        assert counts[HBFacet.SERVER_SIDE] == 2
        assert counts[HBFacet.CLIENT_SIDE] == 1
        assert counts[HBFacet.HYBRID] == 1

    def test_counts_cover_every_facet_key(self, facet_dataset):
        assert set(facets.facet_counts(facet_dataset)) == set(HBFacet)

    def test_non_hb_sites_are_excluded(self, facet_dataset):
        assert sum(facets.facet_counts(facet_dataset).values()) == 4


class TestFacetBreakdown:
    def test_shares_sum_to_one(self, facet_dataset):
        breakdown = facets.facet_breakdown(facet_dataset)
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown[HBFacet.SERVER_SIDE] == pytest.approx(0.5)
        assert breakdown[HBFacet.CLIENT_SIDE] == pytest.approx(0.25)
        assert breakdown[HBFacet.HYBRID] == pytest.approx(0.25)

    def test_empty_dataset_raises(self):
        with pytest.raises(EmptyDatasetError):
            facets.facet_breakdown(CrawlDataset())

    def test_hb_free_dataset_raises(self):
        dataset = CrawlDataset.from_detections([detection("x.example", None, hb=False)])
        with pytest.raises(EmptyDatasetError):
            facets.facet_breakdown(dataset)


class TestFacetMetric:
    def test_registered_metric_renders_share_rows(self, facet_dataset):
        result = compute_metric("facet", AnalysisContext.offline(facet_dataset))
        assert result.text.startswith("Facet breakdown")
        assert "50.00%" in result.text
        assert result.data["breakdown"][HBFacet.SERVER_SIDE] == pytest.approx(0.5)
