"""Slots audit for the hot per-page models, with pickle round-trips.

PR 3 slotted the detector-side records; this sweep covers the remaining hot
per-page models in ``browser/``, ``hb/`` and ``ecosystem/`` (``hb/events.py``
holds only enums and free functions — nothing to slot).  Each class must
reject arbitrary attributes (proof the instance carries no ``__dict__``) and
survive a pickle round-trip unchanged, because the process backend ships
some of them across worker boundaries.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.browser.clock import SimulatedClock
from repro.browser.context import BrowserContext
from repro.browser.dom import DomEventBus
from repro.browser.engine import BrowserEngine, PageLoadResult
from repro.browser.page import Page, build_page
from repro.browser.webrequest import WebRequestLog
from repro.ecosystem.bidding import PricingModel
from repro.ecosystem.profiles import LatencyDraw, PartnerProfile, SiteProfileTable
from repro.hb.auction import BidOutcome, HeaderBiddingOutcome, SlotAuctionOutcome
from repro.hb.client_side import PartnerReply
from repro.hb.waterfall import WaterfallAdNetwork, WaterfallOutcome, WaterfallPassResult
from repro.models import AdSlot, AdSlotSize, HBFacet, SaleChannel


def assert_slotted(instance):
    assert not hasattr(instance, "__dict__"), type(instance).__name__
    with pytest.raises(AttributeError):
        object.__setattr__(instance, "definitely_not_a_field", 1)


class TestBrowserModels:
    def test_page_is_slotted_and_picklable(self, hb_publisher):
        page = build_page(hb_publisher, seed=13)
        assert_slotted(page)
        assert pickle.loads(pickle.dumps(page)) == page

    def test_page_load_result_is_slotted_and_picklable(self, engine, hb_publisher):
        result = engine.load(hb_publisher)
        assert_slotted(result)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.domain == result.domain
        assert clone.dom_events == result.dom_events
        assert clone.web_requests == result.web_requests

    def test_infrastructure_is_slotted(self, rng):
        clock = SimulatedClock()
        assert_slotted(clock)
        assert_slotted(DomEventBus(clock))
        assert_slotted(WebRequestLog(clock))
        assert_slotted(BrowserContext.clean_slate(rng))


class TestAuctionModels:
    def bid(self):
        return BidOutcome(
            partner_name="AppNexus", bidder_code="appnexus", slot_code="s1",
            size=AdSlotSize(300, 250), cpm=0.5,
            requested_at_ms=10.0, responded_at_ms=120.0, late=False, won=True,
        )

    def test_bid_outcome(self):
        bid = self.bid()
        assert_slotted(bid)
        assert pickle.loads(pickle.dumps(bid)) == bid

    def test_slot_auction_outcome_and_header_bidding_outcome(self):
        slot = AdSlot(code="s1", primary_size=AdSlotSize(300, 250))
        outcome = SlotAuctionOutcome(
            slot=slot, bids=(self.bid(),), winning_channel=SaleChannel.HEADER_BIDDING,
            winner="AppNexus", clearing_cpm=0.5, auction_start_ms=0.0,
            ad_server_called_at_ms=150.0, ad_server_responded_at_ms=230.0,
        )
        assert_slotted(outcome)
        page = HeaderBiddingOutcome(
            domain="x.example", facet=HBFacet.CLIENT_SIDE, slot_outcomes=(outcome,),
            wrapper_timeout_ms=3000.0,
        )
        assert_slotted(page)
        assert pickle.loads(pickle.dumps(page)) == page

    def test_partner_reply_is_slotted(self, registry):
        reply = PartnerReply(
            partner=registry.partners[0], dispatched_at_ms=1.0,
            responded_at_ms=2.0, responses={},
        )
        assert_slotted(reply)


class TestWaterfallModels:
    def test_waterfall_records_are_slotted_and_picklable(self, registry, rng):
        network = WaterfallAdNetwork(partner=registry.partners[0], priority=1)
        passed = WaterfallPassResult(network=network, latency_ms=40.0, cpm=0.3, accepted=True)
        outcome = WaterfallOutcome(
            slot=AdSlot(code="w", primary_size=AdSlotSize(300, 250)),
            passes=(passed,), winner="x", clearing_cpm=0.3,
            total_latency_ms=40.0, channel=SaleChannel.RTB_WATERFALL,
        )
        for record in (network, passed, outcome):
            assert_slotted(record)
            assert pickle.loads(pickle.dumps(record)) == record


class TestEcosystemModels:
    def test_pricing_model_is_slotted_and_picklable(self):
        model = PricingModel()
        assert_slotted(model)
        assert pickle.loads(pickle.dumps(model)) == model

    def test_profile_records_are_slotted(self, environment, hb_publisher):
        table = SiteProfileTable(environment, seed=13)
        profile = table.profile_for(hb_publisher)
        assert_slotted(profile)
        for pprofile in profile.partner_profiles:
            assert_slotted(pprofile)
            assert_slotted(pprofile.latency)

    def test_latency_draw_pickles(self, registry):
        draw = LatencyDraw.compile(registry.partners[0].latency, 0.72)
        assert pickle.loads(pickle.dumps(draw)) == draw
