"""Unit tests for experiment configuration and the end-to-end runner."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments import runner as runner_module
from repro.experiments.runner import (
    ExperimentRunner,
    artifact_cache_size,
    clear_artifact_cache,
)


class TestExperimentConfig:
    def test_paper_scale_matches_campaign(self):
        config = ExperimentConfig.paper_scale()
        assert config.total_sites == 35_000
        assert config.recrawl_days == 34
        assert config.historical_sites == 1_000

    def test_presets_are_valid_and_ordered_by_size(self):
        assert ExperimentConfig.test_scale().total_sites < ExperimentConfig.bench_scale().total_sites
        assert ExperimentConfig.bench_scale().total_sites < ExperimentConfig.paper_scale().total_sites

    def test_population_config_inherits_scaling(self):
        config = ExperimentConfig(total_sites=3_500, seed=5)
        population_config = config.population_config()
        assert population_config.total_sites == 3_500
        assert population_config.seed == 5

    def test_with_helpers_return_new_configs(self):
        config = ExperimentConfig()
        assert config.with_sites(500).total_sites == 500
        assert config.with_seed(9).seed == 9
        assert config.total_sites != 500 or config.seed != 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(total_sites=5)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(recrawl_days=-1)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(detector_coverage=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(historical_years=())


class TestExperimentRunner:
    def test_artifacts_are_complete(self, experiment_artifacts):
        assert len(experiment_artifacts.population) == experiment_artifacts.config.total_sites
        assert len(experiment_artifacts.dataset) == experiment_artifacts.longitudinal.pages_visited
        summary = experiment_artifacts.summary
        assert summary["websites_crawled"] == experiment_artifacts.config.total_sites
        assert summary["websites_with_hb"] > 0
        assert summary["bids_detected"] > 0

    def test_cache_returns_same_artifacts(self):
        config = ExperimentConfig.test_scale()
        first = ExperimentRunner(config).run()
        second = ExperimentRunner(config).run()
        assert first is second

    def test_cache_can_be_bypassed_and_cleared(self):
        config = ExperimentConfig(total_sites=400, seed=123, recrawl_days=0, historical_sites=100)
        first = ExperimentRunner(config).run()
        uncached = ExperimentRunner(config).run(use_cache=False)
        assert first is not uncached
        assert first.summary == uncached.summary
        clear_artifact_cache()
        after_clear = ExperimentRunner(config).run()
        assert after_clear is not first

    def test_same_seed_reproduces_summary(self):
        config = ExperimentConfig(total_sites=400, seed=55, recrawl_days=0, historical_sites=100)
        a = ExperimentRunner(config).run(use_cache=False)
        b = ExperimentRunner(config).run(use_cache=False)
        assert a.summary == b.summary

    def test_different_seeds_differ(self):
        a = ExperimentRunner(ExperimentConfig(total_sites=400, seed=1, recrawl_days=0)).run(use_cache=False)
        b = ExperimentRunner(ExperimentConfig(total_sites=400, seed=2, recrawl_days=0)).run(use_cache=False)
        assert a.summary != b.summary

    def test_historical_run_covers_configured_years(self):
        config = ExperimentConfig.test_scale()
        historical = ExperimentRunner(config).run_historical()
        assert historical.years == tuple(sorted(config.historical_years))


class TestArtifactCacheBound:
    @pytest.fixture(autouse=True)
    def _isolate_cache(self):
        clear_artifact_cache()
        yield
        clear_artifact_cache()

    def test_cache_is_keyed_by_run_relevant_fields(self):
        base = ExperimentConfig(total_sites=400, seed=77, recrawl_days=0, historical_sites=100)
        first = ExperimentRunner(base).run()
        same = ExperimentRunner(ExperimentConfig(total_sites=400, seed=77, recrawl_days=0,
                                                 historical_sites=100)).run()
        assert first is same
        # The historical-study parameters are not consumed by run(): varying
        # them must hit the cache instead of re-simulating the crawl.
        historical_variant = ExperimentConfig(total_sites=400, seed=77, recrawl_days=0,
                                              historical_sites=200)
        assert ExperimentRunner(historical_variant).run() is first
        other = ExperimentRunner(base.with_seed(78)).run()
        assert other is not first
        assert artifact_cache_size() == 2

    def test_cache_never_exceeds_the_cap(self, monkeypatch):
        monkeypatch.setattr(runner_module, "ARTIFACT_CACHE_MAX_ENTRIES", 2)
        configs = [ExperimentConfig(total_sites=400, seed=200 + n, recrawl_days=0,
                                    historical_sites=100) for n in range(3)]
        for config in configs:
            ExperimentRunner(config).run()
            assert artifact_cache_size() <= 2

    def test_least_recently_used_run_is_evicted_first(self, monkeypatch):
        monkeypatch.setattr(runner_module, "ARTIFACT_CACHE_MAX_ENTRIES", 2)
        a, b, c = [ExperimentConfig(total_sites=400, seed=300 + n, recrawl_days=0,
                                    historical_sites=100) for n in range(3)]
        first_a = ExperimentRunner(a).run()
        ExperimentRunner(b).run()
        assert ExperimentRunner(a).run() is first_a  # refresh a: b is now LRU
        ExperimentRunner(c).run()                    # evicts b
        assert ExperimentRunner(a).run() is first_a
        assert artifact_cache_size() == 2


class TestParallelExperiments:
    def test_parallelism_knobs_validate(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(workers=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(crawl_backend="gpu")

    def test_crawl_config_inherits_knobs(self):
        config = ExperimentConfig(seed=11, workers=6, crawl_backend="thread")
        crawl_config = config.crawl_config()
        assert crawl_config.seed == 11
        assert crawl_config.workers == 6
        assert crawl_config.backend == "thread"

    def test_with_parallelism_returns_new_config(self):
        config = ExperimentConfig().with_parallelism(4, "process")
        assert (config.workers, config.crawl_backend) == (4, "process")
        assert ExperimentConfig().workers == 1

    def test_parallel_run_reproduces_serial_summary(self):
        serial = ExperimentConfig(total_sites=400, seed=321, recrawl_days=0,
                                  historical_sites=100)
        parallel = serial.with_parallelism(4, "thread")
        serial_artifacts = ExperimentRunner(serial).run(use_cache=False)
        parallel_artifacts = ExperimentRunner(parallel).run(use_cache=False)
        assert dict(serial_artifacts.summary) == dict(parallel_artifacts.summary)
        assert [d.domain for d in serial_artifacts.longitudinal.all_detections] == \
               [d.domain for d in parallel_artifacts.longitudinal.all_detections]

    def test_run_streams_to_storage(self, tmp_path):
        from repro.crawler.storage import CrawlStorage

        config = ExperimentConfig(total_sites=400, seed=321, recrawl_days=1,
                                  historical_sites=100, workers=2, crawl_backend="thread")
        storage = CrawlStorage(tmp_path / "campaign.jsonl")
        artifacts = ExperimentRunner(config).run(storage=storage)
        assert storage.load() == artifacts.longitudinal.all_detections
