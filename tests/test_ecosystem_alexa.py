"""Unit tests for Alexa-style top-list generation."""

import pytest

from repro.ecosystem.alexa import (
    TopList,
    TopListEntry,
    generate_top_list,
    overlap_fraction,
    yearly_top_lists,
)
from repro.errors import ConfigurationError


class TestTopList:
    def test_generate_produces_requested_size(self):
        top = generate_top_list(100)
        assert len(top) == 100
        assert top.domains[0] == "site-000001.example"

    def test_entries_must_be_sorted(self):
        with pytest.raises(ConfigurationError):
            TopList("bad", [TopListEntry(2, "b.example"), TopListEntry(1, "a.example")])

    def test_head_returns_prefix(self):
        top = generate_top_list(50)
        head = top.head(10)
        assert len(head) == 10
        assert head.domains == top.domains[:10]
        with pytest.raises(ValueError):
            top.head(0)

    def test_rank_lookup_and_membership(self):
        top = generate_top_list(10)
        assert "site-000003.example" in top
        assert top.rank_of("site-000003.example") == 3

    def test_rejects_empty_or_invalid(self):
        with pytest.raises(ConfigurationError):
            generate_top_list(0)
        with pytest.raises(ConfigurationError):
            TopListEntry(0, "x.example")


class TestYearlyChurn:
    def test_lists_exist_for_every_year(self):
        lists = yearly_top_lists(200, range(2014, 2020), seed=1)
        assert sorted(lists) == list(range(2014, 2020))
        assert all(len(top) == 200 for top in lists.values())

    def test_churn_reduces_overlap_over_time(self):
        lists = yearly_top_lists(300, (2017, 2018, 2019), seed=2, churn_rate=0.2)
        base = lists[2017]
        one_year = overlap_fraction(base, lists[2018])
        two_years = overlap_fraction(base, lists[2019])
        assert two_years < one_year < 1.0

    def test_overlap_matches_paper_ballpark(self):
        # The paper's 2017 list overlaps 55-79% with the 2017-2019 lists.
        lists = yearly_top_lists(500, (2017, 2018, 2019), seed=3, churn_rate=0.12)
        overlap_2019 = overlap_fraction(lists[2017], lists[2019])
        assert 0.5 < overlap_2019 < 0.95

    def test_same_seed_reproduces_lists(self):
        a = yearly_top_lists(100, (2018, 2019), seed=9)
        b = yearly_top_lists(100, (2018, 2019), seed=9)
        assert a[2019].domains == b[2019].domains

    def test_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            yearly_top_lists(100, (), seed=1)
        with pytest.raises(ConfigurationError):
            yearly_top_lists(100, (2019,), churn_rate=1.5)

    def test_overlap_of_identical_lists_is_one(self):
        top = generate_top_list(50)
        assert overlap_fraction(top, top) == 1.0
