"""Tests for the hbrepro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.sites == 2_000
        assert args.days == 1
        assert "table1" in args.figures

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--figures", "fig99"])

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_artifact_names(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig12" in out

    def test_run_prints_requested_artifacts(self, capsys):
        exit_code = main(["run", "--sites", "400", "--days", "0", "--seed", "7",
                          "--figures", "table1", "facet"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Facet breakdown" in out

    def test_historical_prints_adoption_series(self, capsys):
        exit_code = main(["historical", "--sites", "150", "--seed", "3"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "2019" in out


class TestParallelCli:
    def test_parallel_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--workers", "4", "--backend", "thread", "--save", "out.jsonl"])
        assert args.workers == 4
        assert args.backend == "thread"
        assert args.save == "out.jsonl"
        defaults = build_parser().parse_args(["run"])
        assert (defaults.workers, defaults.backend, defaults.save) == (1, "serial", None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "gpu"])

    def test_parallel_run_with_save_streams_detections(self, capsys, tmp_path):
        out = tmp_path / "crawl.jsonl"
        exit_code = main(["run", "--sites", "400", "--days", "0", "--seed", "7",
                          "--workers", "2", "--backend", "thread",
                          "--save", str(out), "--figures", "table1"])
        assert exit_code == 0
        assert "Streamed" in capsys.readouterr().out

        from repro.crawler.storage import CrawlStorage
        detections = CrawlStorage(out).load()
        assert len(detections) == 400


class TestWatchCli:
    def test_watch_flags_parse(self):
        args = build_parser().parse_args(
            ["analyze", "crawl.jsonl", "--watch", "--interval", "0.5", "--watch-rounds", "3"])
        assert args.watch is True
        assert args.interval == 0.5
        assert args.watch_rounds == 3
        defaults = build_parser().parse_args(["analyze", "crawl.jsonl"])
        assert (defaults.watch, defaults.interval, defaults.watch_rounds) == (False, 2.0, None)

    def test_flush_every_parses_and_threads_through(self):
        args = build_parser().parse_args(["run", "--flush-every", "1"])
        assert args.flush_every == 1
        assert build_parser().parse_args(["run"]).flush_every == 64

    def test_watch_renders_same_artifacts_as_plain_analyze(self, capsys, tmp_path):
        out = tmp_path / "crawl.jsonl"
        assert main(["run", "--sites", "400", "--days", "0", "--seed", "7",
                     "--save", str(out), "--figures", "table1"]) == 0
        capsys.readouterr()

        assert main(["analyze", str(out), "--artifact", "table1", "adoption"]) == 0
        plain = capsys.readouterr().out
        assert main(["analyze", str(out), "--watch", "--interval", "0.01",
                     "--watch-rounds", "2", "--artifact", "table1", "adoption"]) == 0
        watched = capsys.readouterr().out
        # One render (round 2 sees no new data), preceded by a progress header.
        assert watched.count("=== crawl.jsonl: 400 detections (+400) ===") == 1
        assert watched.endswith(plain)

    def test_watch_tails_a_growing_file(self, capsys, tmp_path):
        """New detections appended between polls trigger a fresh render."""
        import threading
        import time as time_mod

        from repro.crawler.storage import CrawlStorage
        from tests.test_crawler_storage import sample_detection

        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        storage.save([sample_detection("first.example")])

        def late_append():
            time_mod.sleep(0.25)
            storage.append([sample_detection("second.example", day=1)])

        writer = threading.Thread(target=late_append)
        writer.start()
        try:
            assert main(["analyze", str(path), "--watch", "--interval", "0.1",
                         "--watch-rounds", "12", "--artifact", "table1"]) == 0
        finally:
            writer.join()
        out = capsys.readouterr().out
        assert "1 detections (+1)" in out
        assert "2 detections (+1)" in out

    def test_watch_on_missing_file_waits_quietly(self, capsys, tmp_path):
        assert main(["analyze", str(tmp_path / "nope.jsonl"), "--watch",
                     "--interval", "0.01", "--watch-rounds", "2"]) == 0
        assert capsys.readouterr().out == ""

    def test_watch_restarts_when_the_file_is_truncated(self, capsys, tmp_path):
        """A crawl restarted with a fresh sink resets the watch dataset."""
        import threading
        import time as time_mod

        from repro.crawler.storage import CrawlStorage
        from tests.test_crawler_storage import sample_detection

        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        storage.save([sample_detection(f"old{i}.example") for i in range(3)])

        def restart_crawl():
            time_mod.sleep(0.25)
            storage.save([sample_detection("new.example")])  # truncating rewrite

        writer = threading.Thread(target=restart_crawl)
        writer.start()
        try:
            assert main(["analyze", str(path), "--watch", "--interval", "0.1",
                         "--watch-rounds", "12", "--artifact", "table1"]) == 0
        finally:
            writer.join()
        out = capsys.readouterr().out
        assert "3 detections (+3)" in out
        assert "file changed, restarting watch" in out
        assert "1 detections (+1)" in out

    def test_invalid_numeric_flags_fail_cleanly(self):
        for argv in (["run", "--flush-every", "0"],
                     ["analyze", "x.jsonl", "--watch", "--interval", "-1"],
                     ["analyze", "x.jsonl", "--watch", "--watch-rounds", "0"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(argv)


class TestCheckpointCli:
    RUN = ["run", "--sites", "400", "--days", "0", "--seed", "7", "--figures", "table1"]

    def test_checkpoint_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--save", "out.jsonl", "--checkpoint", "cp.json", "--resume"])
        assert args.checkpoint == "cp.json"
        assert args.resume is True
        defaults = build_parser().parse_args(["run"])
        assert (defaults.checkpoint, defaults.resume) == (None, False)

    def test_resume_requires_checkpoint(self, capsys):
        with pytest.raises(SystemExit):
            main(self.RUN + ["--resume"])
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_checkpoint_requires_save(self, capsys):
        with pytest.raises(SystemExit):
            main(self.RUN + ["--checkpoint", "cp.json"])
        assert "--checkpoint requires --save" in capsys.readouterr().err

    def test_checkpointed_run_then_noop_resume_is_byte_identical(self, capsys, tmp_path):
        out = tmp_path / "crawl.jsonl"
        checkpoint = tmp_path / "cp.json"
        argv = self.RUN + ["--workers", "2", "--backend", "thread",
                           "--save", str(out), "--checkpoint", str(checkpoint)]
        assert main(argv) == 0
        first_out = capsys.readouterr().out
        assert "Streamed 400 detections" in first_out
        assert checkpoint.exists()
        first_bytes = out.read_bytes()

        # Resuming the completed campaign replays it from the sink: same
        # bytes on disk, same artefacts printed, no re-crawling drift.
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first_out
        assert out.read_bytes() == first_bytes

    def test_resume_with_mismatched_config_fails_cleanly(self, capsys, tmp_path):
        out = tmp_path / "crawl.jsonl"
        checkpoint = tmp_path / "cp.json"
        assert main(self.RUN + ["--save", str(out), "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["run", "--sites", "400", "--days", "0", "--seed", "8",
                     "--figures", "table1", "--save", str(out),
                     "--checkpoint", str(checkpoint), "--resume"]) == 1
        assert "refusing to resume" in capsys.readouterr().err

    def test_resume_without_a_checkpoint_file_fails_cleanly(self, capsys, tmp_path):
        assert main(self.RUN + ["--save", str(tmp_path / "out.jsonl"),
                    "--checkpoint", str(tmp_path / "nope.json"), "--resume"]) == 1
        assert "no checkpoint to resume" in capsys.readouterr().err


class TestWatchProbe:
    """The size() staleness probe: an idle watch never opens the file."""

    class _CountingStorage:
        def __init__(self, inner):
            self._inner = inner
            self.path = inner.path
            self.size_calls = 0
            self.read_new_calls = 0

        def size(self):
            self.size_calls += 1
            return self._inner.size()

        def read_new(self, offset):
            self.read_new_calls += 1
            return self._inner.read_new(offset)

    def _seeded_storage(self, tmp_path, n=3):
        from repro.crawler.storage import CrawlStorage
        from tests.test_crawler_storage import sample_detection

        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.save([sample_detection(domain=f"site{i}.example") for i in range(1, n + 1)])
        return storage

    def test_idle_watch_reads_once_then_only_stats(self, capsys, tmp_path):
        from repro.cli import _watch

        counting = self._CountingStorage(self._seeded_storage(tmp_path))
        assert _watch(counting, [], interval=0, rounds=5) == 0
        assert counting.read_new_calls == 1  # the initial catch-up read
        assert counting.size_calls == 5  # one cheap stat per poll
        assert "3 detections (+3)" in capsys.readouterr().out

    def test_watch_on_empty_file_never_opens_it(self, tmp_path):
        from repro.cli import _watch

        counting = self._CountingStorage(self._seeded_storage(tmp_path, n=0))
        assert _watch(counting, [], interval=0, rounds=4) == 0
        assert counting.read_new_calls == 0
        assert counting.size_calls == 4

    def test_shrunk_file_restarts_via_the_probe(self, capsys, tmp_path):
        from repro.cli import _watch
        from tests.test_crawler_storage import sample_detection

        storage = self._seeded_storage(tmp_path)

        class _ShrinkAfterRead(self._CountingStorage):
            def read_new(self, offset):
                new, new_offset = super().read_new(offset)
                if self.read_new_calls == 1:
                    # Replace the sink with a shorter one behind the watcher.
                    self._inner.path.unlink()
                    self._inner.save([sample_detection(domain="solo.example")])
                return new, new_offset

        counting = _ShrinkAfterRead(storage)
        assert _watch(counting, [], interval=0, rounds=4) == 0
        out = capsys.readouterr().out
        assert "file changed, restarting watch" in out
        assert "1 detections (+1)" in out


class TestConvertCli:
    def _crawl(self, tmp_path, name="crawl.jsonl"):
        out = tmp_path / name
        assert main(["run", "--sites", "400", "--days", "0", "--seed", "7",
                     "--save", str(out)]) == 0
        return out

    def test_round_trip_is_byte_identical(self, capsys, tmp_path):
        src = self._crawl(tmp_path)
        packed = tmp_path / "crawl.hbc"
        back = tmp_path / "back.jsonl"
        assert main(["convert", str(src), str(packed)]) == 0
        assert main(["convert", str(packed), str(back)]) == 0
        assert back.read_bytes() == src.read_bytes()
        assert "Converted" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.convert-tmp"))

    def test_failed_convert_leaves_destination_untouched(self, capsys, tmp_path, monkeypatch):
        import repro.cli as cli_mod

        src = self._crawl(tmp_path)
        dst = tmp_path / "crawl.hbc"
        assert main(["convert", str(src), str(dst)]) == 0
        good = dst.read_bytes()

        real = cli_mod.storage_for

        class _ExplodingStorage:
            def __init__(self, inner):
                self._inner = inner

            def save(self, detections):
                # Write a torn prefix, then die — like a full disk mid-write.
                self._inner.path.write_bytes(b"torn")
                raise OSError("disk full")

        def faulty(path, format=None, **kwargs):
            storage = real(path, format=format, **kwargs) if format else real(path)
            if path.name.endswith(".convert-tmp"):
                return _ExplodingStorage(storage)
            return storage

        monkeypatch.setattr(cli_mod, "storage_for", faulty)
        assert main(["convert", str(src), str(dst), "--force"]) == 1
        assert "error:" in capsys.readouterr().err
        assert dst.read_bytes() == good  # the old file survived intact
        assert not list(tmp_path.glob("*.convert-tmp"))

    def test_existing_destination_needs_force(self, capsys, tmp_path):
        src = self._crawl(tmp_path)
        dst = tmp_path / "crawl.hbc"
        assert main(["convert", str(src), str(dst)]) == 0
        assert main(["convert", str(src), str(dst)]) == 1
        assert "--force" in capsys.readouterr().err
        assert main(["convert", str(src), str(dst), "--force"]) == 0


class TestDaemonCli:
    def test_daemon_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["daemon", "--dir", "campaign"])
        assert args.sites == 2000 and args.seed == 2019
        assert args.days is None and args.interval == 60.0
        assert args.metrics == ["table1"] and args.threshold == []
        assert args.store_format == "columnar"

    @pytest.mark.parametrize(
        "argv",
        [
            ["daemon", "--dir", "d", "--days", "-1"],
            ["daemon", "--dir", "d", "--interval", "-5"],
            ["daemon", "--dir", "d", "--ticks", "0"],
            ["daemon", "--dir", "d", "--metrics", "bogus"],
        ],
    )
    def test_invalid_daemon_flags_fail_cleanly(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_malformed_threshold_is_a_clean_error(self, capsys, tmp_path):
        assert main(["daemon", "--dir", str(tmp_path / "d"),
                     "--threshold", "not-a-rule"]) == 1
        assert "malformed threshold" in capsys.readouterr().err

    def test_daemon_runs_a_short_campaign_and_prints_alerts(self, capsys, tmp_path):
        workdir = tmp_path / "campaign"
        assert main([
            "daemon", "--dir", str(workdir), "--sites", "400", "--seed", "7",
            "--days", "2", "--interval", "0",
            "--threshold", "table1.summary.websites_with_hb:min=100000",
        ]) == 0
        out = capsys.readouterr().out
        assert "discovery pass done" in out
        assert "crawl day 2 done" in out
        assert "ALERT day 2:" in out
        assert (workdir / "detections.hbc").exists()
        assert (workdir / "alerts.jsonl").read_text().count("\n") == 1
