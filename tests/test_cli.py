"""Tests for the hbrepro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.sites == 2_000
        assert args.days == 1
        assert "table1" in args.figures

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--figures", "fig99"])

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_artifact_names(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig12" in out

    def test_run_prints_requested_artifacts(self, capsys):
        exit_code = main(["run", "--sites", "400", "--days", "0", "--seed", "7",
                          "--figures", "table1", "facet"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Facet breakdown" in out

    def test_historical_prints_adoption_series(self, capsys):
        exit_code = main(["historical", "--sites", "150", "--seed", "3"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "2019" in out


class TestParallelCli:
    def test_parallel_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--workers", "4", "--backend", "thread", "--save", "out.jsonl"])
        assert args.workers == 4
        assert args.backend == "thread"
        assert args.save == "out.jsonl"
        defaults = build_parser().parse_args(["run"])
        assert (defaults.workers, defaults.backend, defaults.save) == (1, "serial", None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "gpu"])

    def test_parallel_run_with_save_streams_detections(self, capsys, tmp_path):
        out = tmp_path / "crawl.jsonl"
        exit_code = main(["run", "--sites", "400", "--days", "0", "--seed", "7",
                          "--workers", "2", "--backend", "thread",
                          "--save", str(out), "--figures", "table1"])
        assert exit_code == 0
        assert "Streamed" in capsys.readouterr().out

        from repro.crawler.storage import CrawlStorage
        detections = CrawlStorage(out).load()
        assert len(detections) == 400
