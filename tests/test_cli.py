"""Tests for the hbrepro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.sites == 2_000
        assert args.days == 1
        assert "table1" in args.figures

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--figures", "fig99"])

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_artifact_names(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig12" in out

    def test_run_prints_requested_artifacts(self, capsys):
        exit_code = main(["run", "--sites", "400", "--days", "0", "--seed", "7",
                          "--figures", "table1", "facet"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Facet breakdown" in out

    def test_historical_prints_adoption_series(self, capsys):
        exit_code = main(["historical", "--sites", "150", "--seed", "3"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "2019" in out


class TestParallelCli:
    def test_parallel_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--workers", "4", "--backend", "thread", "--save", "out.jsonl"])
        assert args.workers == 4
        assert args.backend == "thread"
        assert args.save == "out.jsonl"
        defaults = build_parser().parse_args(["run"])
        assert (defaults.workers, defaults.backend, defaults.save) == (1, "serial", None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "gpu"])

    def test_parallel_run_with_save_streams_detections(self, capsys, tmp_path):
        out = tmp_path / "crawl.jsonl"
        exit_code = main(["run", "--sites", "400", "--days", "0", "--seed", "7",
                          "--workers", "2", "--backend", "thread",
                          "--save", str(out), "--figures", "table1"])
        assert exit_code == 0
        assert "Streamed" in capsys.readouterr().out

        from repro.crawler.storage import CrawlStorage
        detections = CrawlStorage(out).load()
        assert len(detections) == 400


class TestWatchCli:
    def test_watch_flags_parse(self):
        args = build_parser().parse_args(
            ["analyze", "crawl.jsonl", "--watch", "--interval", "0.5", "--watch-rounds", "3"])
        assert args.watch is True
        assert args.interval == 0.5
        assert args.watch_rounds == 3
        defaults = build_parser().parse_args(["analyze", "crawl.jsonl"])
        assert (defaults.watch, defaults.interval, defaults.watch_rounds) == (False, 2.0, None)

    def test_flush_every_parses_and_threads_through(self):
        args = build_parser().parse_args(["run", "--flush-every", "1"])
        assert args.flush_every == 1
        assert build_parser().parse_args(["run"]).flush_every == 64

    def test_watch_renders_same_artifacts_as_plain_analyze(self, capsys, tmp_path):
        out = tmp_path / "crawl.jsonl"
        assert main(["run", "--sites", "400", "--days", "0", "--seed", "7",
                     "--save", str(out), "--figures", "table1"]) == 0
        capsys.readouterr()

        assert main(["analyze", str(out), "--artifact", "table1", "adoption"]) == 0
        plain = capsys.readouterr().out
        assert main(["analyze", str(out), "--watch", "--interval", "0.01",
                     "--watch-rounds", "2", "--artifact", "table1", "adoption"]) == 0
        watched = capsys.readouterr().out
        # One render (round 2 sees no new data), preceded by a progress header.
        assert watched.count("=== crawl.jsonl: 400 detections (+400) ===") == 1
        assert watched.endswith(plain)

    def test_watch_tails_a_growing_file(self, capsys, tmp_path):
        """New detections appended between polls trigger a fresh render."""
        import threading
        import time as time_mod

        from repro.crawler.storage import CrawlStorage
        from tests.test_crawler_storage import sample_detection

        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        storage.save([sample_detection("first.example")])

        def late_append():
            time_mod.sleep(0.25)
            storage.append([sample_detection("second.example", day=1)])

        writer = threading.Thread(target=late_append)
        writer.start()
        try:
            assert main(["analyze", str(path), "--watch", "--interval", "0.1",
                         "--watch-rounds", "12", "--artifact", "table1"]) == 0
        finally:
            writer.join()
        out = capsys.readouterr().out
        assert "1 detections (+1)" in out
        assert "2 detections (+1)" in out

    def test_watch_on_missing_file_waits_quietly(self, capsys, tmp_path):
        assert main(["analyze", str(tmp_path / "nope.jsonl"), "--watch",
                     "--interval", "0.01", "--watch-rounds", "2"]) == 0
        assert capsys.readouterr().out == ""

    def test_watch_restarts_when_the_file_is_truncated(self, capsys, tmp_path):
        """A crawl restarted with a fresh sink resets the watch dataset."""
        import threading
        import time as time_mod

        from repro.crawler.storage import CrawlStorage
        from tests.test_crawler_storage import sample_detection

        path = tmp_path / "crawl.jsonl"
        storage = CrawlStorage(path)
        storage.save([sample_detection(f"old{i}.example") for i in range(3)])

        def restart_crawl():
            time_mod.sleep(0.25)
            storage.save([sample_detection("new.example")])  # truncating rewrite

        writer = threading.Thread(target=restart_crawl)
        writer.start()
        try:
            assert main(["analyze", str(path), "--watch", "--interval", "0.1",
                         "--watch-rounds", "12", "--artifact", "table1"]) == 0
        finally:
            writer.join()
        out = capsys.readouterr().out
        assert "3 detections (+3)" in out
        assert "file changed, restarting watch" in out
        assert "1 detections (+1)" in out

    def test_invalid_numeric_flags_fail_cleanly(self):
        for argv in (["run", "--flush-every", "0"],
                     ["analyze", "x.jsonl", "--watch", "--interval", "-1"],
                     ["analyze", "x.jsonl", "--watch", "--watch-rounds", "0"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(argv)


class TestCheckpointCli:
    RUN = ["run", "--sites", "400", "--days", "0", "--seed", "7", "--figures", "table1"]

    def test_checkpoint_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--save", "out.jsonl", "--checkpoint", "cp.json", "--resume"])
        assert args.checkpoint == "cp.json"
        assert args.resume is True
        defaults = build_parser().parse_args(["run"])
        assert (defaults.checkpoint, defaults.resume) == (None, False)

    def test_resume_requires_checkpoint(self, capsys):
        with pytest.raises(SystemExit):
            main(self.RUN + ["--resume"])
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_checkpoint_requires_save(self, capsys):
        with pytest.raises(SystemExit):
            main(self.RUN + ["--checkpoint", "cp.json"])
        assert "--checkpoint requires --save" in capsys.readouterr().err

    def test_checkpointed_run_then_noop_resume_is_byte_identical(self, capsys, tmp_path):
        out = tmp_path / "crawl.jsonl"
        checkpoint = tmp_path / "cp.json"
        argv = self.RUN + ["--workers", "2", "--backend", "thread",
                           "--save", str(out), "--checkpoint", str(checkpoint)]
        assert main(argv) == 0
        first_out = capsys.readouterr().out
        assert "Streamed 400 detections" in first_out
        assert checkpoint.exists()
        first_bytes = out.read_bytes()

        # Resuming the completed campaign replays it from the sink: same
        # bytes on disk, same artefacts printed, no re-crawling drift.
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first_out
        assert out.read_bytes() == first_bytes

    def test_resume_with_mismatched_config_fails_cleanly(self, capsys, tmp_path):
        out = tmp_path / "crawl.jsonl"
        checkpoint = tmp_path / "cp.json"
        assert main(self.RUN + ["--save", str(out), "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["run", "--sites", "400", "--days", "0", "--seed", "8",
                     "--figures", "table1", "--save", str(out),
                     "--checkpoint", str(checkpoint), "--resume"]) == 1
        assert "refusing to resume" in capsys.readouterr().err

    def test_resume_without_a_checkpoint_file_fails_cleanly(self, capsys, tmp_path):
        assert main(self.RUN + ["--save", str(tmp_path / "out.jsonl"),
                    "--checkpoint", str(tmp_path / "nope.json"), "--resume"]) == 1
        assert "no checkpoint to resume" in capsys.readouterr().err
