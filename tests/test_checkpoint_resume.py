"""Resumable checkpointed crawls: crash injection, recovery, byte identity.

The acceptance criterion under test: interrupting a checkpointed crawl at any
shard boundary and resuming it produces byte-identical sink files, identical
detections and identical registered metrics versus an uninterrupted run, for
every execution backend.
"""

import dataclasses
import json

import pytest

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import available_metrics, compute_metric
from repro.crawler.checkpoint import (
    CHECKPOINT_VERSION,
    CrawlCheckpoint,
    CrawlCheckpointer,
    PhaseProgress,
    plan_fingerprint,
    population_fingerprint,
)
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.engine import CrawlEngine, CrawlPlan
from repro.crawler.scheduler import LongitudinalScheduler
from repro.crawler.storage import CrawlStorage, detection_to_dict
from repro.errors import CheckpointError, ConfigurationError, ReproError, StorageError
from tests.crash_harness import (
    FaultyBackend,
    SimulatedCrash,
    crash_sites,  # noqa: F401 - imported fixture
    interrupted_then_resumed,
    uninterrupted_baseline,
)


def serialise(detections):
    return json.dumps([detection_to_dict(d) for d in detections])


# ---------------------------------------------------------------------------
# The on-disk format


class TestCheckpointFormat:
    def checkpoint(self):
        phase = PhaseProgress(
            crawl_day=0, plan_hash="abc", n_shards=3, completed_shards=(0, 1),
            n_detections=12, pages_visited=12, sessions_started=12,
            timed_out_domains=("slow.example",),
        )
        return CrawlCheckpoint(
            fingerprint={"seed": 5, "population": "deadbeef"},
            sink_offset=4096,
            phases=(phase,),
        )

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "cp.json"
        original = self.checkpoint()
        original.save(path)
        assert CrawlCheckpoint.load(path) == original

    def test_save_is_atomic_and_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "cp.json"
        self.checkpoint().save(path)
        self.checkpoint().save(path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["cp.json"]
        json.loads(path.read_text())  # plain, inspectable JSON

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CrawlCheckpoint.load(tmp_path / "nope.json")

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.load(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "cp.json"
        data = self.checkpoint().to_dict()
        data["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(CheckpointError, match="version"):
            CrawlCheckpoint.load(path)

    def test_non_prefix_completed_shards_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        data = self.checkpoint().to_dict()
        data["phases"][0]["completed_shards"] = [0, 2]
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(CheckpointError, match="non-prefix"):
            CrawlCheckpoint.load(path)

    def test_unfinished_middle_phase_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        data = self.checkpoint().to_dict()
        done = dict(data["phases"][0], crawl_day=1,
                    completed_shards=[0, 1, 2], n_detections=18)
        data["phases"] = [data["phases"][0], done]
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(CheckpointError, match="unfinished"):
            CrawlCheckpoint.load(path)

    def test_plan_fingerprint_tracks_workers_and_seed(self, small_population):
        sites = list(small_population)[:12]
        base = plan_fingerprint(CrawlPlan.build(sites, workers=3, seed=5))
        assert base == plan_fingerprint(CrawlPlan.build(sites, workers=3, seed=5))
        assert base != plan_fingerprint(CrawlPlan.build(sites, workers=4, seed=5))
        assert base != plan_fingerprint(CrawlPlan.build(sites, workers=3, seed=6))
        assert base != plan_fingerprint(CrawlPlan.build(sites[:11], workers=3, seed=5))

    def test_population_fingerprint_is_order_sensitive(self):
        assert population_fingerprint(["a", "b"]) != population_fingerprint(["b", "a"])
        assert population_fingerprint(["a", "b"]) == population_fingerprint(iter(["a", "b"]))


# ---------------------------------------------------------------------------
# Crash injection across every backend


class TestCrashAndResume:
    """FaultyBackend dies after N shards; resume must reproduce one-shot bytes."""

    @pytest.mark.parametrize("backend_name,workers", [
        ("serial", 4), ("thread", 4), ("process", 4),
    ])
    def test_resumed_equals_one_shot_byte_for_byte(
        self, environment, detector, crash_sites, tmp_path, backend_name, workers
    ):
        config = CrawlConfig(seed=5, workers=workers, backend=backend_name)
        expected, baseline = uninterrupted_baseline(
            environment, detector, config, crash_sites, tmp_path=tmp_path
        )
        result, storage = interrupted_then_resumed(
            environment, detector, config, crash_sites,
            tmp_path=tmp_path, fail_after=2,
        )
        assert storage.path.read_bytes() == baseline.path.read_bytes()
        assert serialise(result.detections) == serialise(expected.detections)
        assert result.pages_visited == expected.pages_visited
        assert result.sessions_started == expected.sessions_started
        assert result.timed_out_domains == expected.timed_out_domains

    def test_crash_before_any_shard_restarts_from_scratch(
        self, environment, detector, crash_sites, tmp_path
    ):
        config = CrawlConfig(seed=5, workers=3, backend="thread")
        expected, baseline = uninterrupted_baseline(
            environment, detector, config, crash_sites, tmp_path=tmp_path
        )
        result, storage = interrupted_then_resumed(
            environment, detector, config, crash_sites,
            tmp_path=tmp_path, fail_after=0,
        )
        assert storage.path.read_bytes() == baseline.path.read_bytes()
        assert serialise(result.detections) == serialise(expected.detections)

    def test_resume_after_complete_crawl_is_a_noop_replay(
        self, environment, detector, crash_sites, tmp_path
    ):
        """fail_after == n_shards: the crash lands after the final boundary."""
        config = CrawlConfig(seed=5, workers=3, backend="thread")
        expected, baseline = uninterrupted_baseline(
            environment, detector, config, crash_sites, tmp_path=tmp_path
        )
        result, storage = interrupted_then_resumed(
            environment, detector, config, crash_sites,
            tmp_path=tmp_path, fail_after=3,
        )
        assert storage.path.read_bytes() == baseline.path.read_bytes()
        assert serialise(result.detections) == serialise(expected.detections)

    def test_resume_may_change_backend_but_not_mid_phase_workers(
        self, environment, detector, crash_sites, tmp_path
    ):
        """Byte identity holds across backends, so the interrupted phase may
        resume on a different backend — but its shard plan (worker count)
        must re-plan identically."""
        config = CrawlConfig(seed=5, workers=4, backend="thread")
        expected, baseline = uninterrupted_baseline(
            environment, detector, config, crash_sites, tmp_path=tmp_path
        )
        result, storage = interrupted_then_resumed(
            environment, detector, config, crash_sites,
            tmp_path=tmp_path, fail_after=2,
            resume_config=CrawlConfig(seed=5, workers=4, backend="serial"),
        )
        assert storage.path.read_bytes() == baseline.path.read_bytes()
        assert serialise(result.detections) == serialise(expected.detections)

        with pytest.raises(CheckpointError, match="different shard plan"):
            interrupted_then_resumed(
                environment, detector, config, crash_sites,
                tmp_path=tmp_path / "different-workers", fail_after=2,
                resume_config=CrawlConfig(seed=5, workers=2, backend="thread"),
            )

    def test_noop_replay_does_not_spin_up_pool_workers(
        self, environment, detector, crash_sites, tmp_path
    ):
        """Resuming a finished campaign recovers everything from the sink;
        the backend must not pay pool start-up for zero remaining shards."""
        config = CrawlConfig(seed=5, workers=2, backend="thread")
        fingerprint = {"seed": 5}
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        recorder = CrawlCheckpointer.fresh(tmp_path / "cp.json", fingerprint)
        with CrawlEngine(environment, detector, config) as engine:
            with storage.open_sink() as sink:
                expected = engine.crawl(crash_sites, sink=sink, checkpoint=recorder)
        resumed = CrawlCheckpointer.resume(tmp_path / "cp.json", fingerprint, storage)
        with CrawlEngine(environment, detector, config) as engine:
            with storage.open_sink(append=True) as sink:
                result = engine.crawl(crash_sites, sink=sink, checkpoint=resumed)
            assert engine.backend._executor is None  # no pool was built
        assert serialise(result.detections) == serialise(expected.detections)
        assert result.pages_visited == expected.pages_visited

    @pytest.mark.parametrize("flush_every", [1, 2, 64])
    def test_sink_flush_interval_does_not_change_resumed_bytes(
        self, environment, detector, crash_sites, tmp_path, flush_every
    ):
        config = CrawlConfig(seed=5, workers=4, backend="thread")
        _, baseline = uninterrupted_baseline(
            environment, detector, config, crash_sites,
            tmp_path=tmp_path, flush_every=64,
        )
        _, storage = interrupted_then_resumed(
            environment, detector, config, crash_sites,
            tmp_path=tmp_path, fail_after=2, flush_every=flush_every,
        )
        assert storage.path.read_bytes() == baseline.path.read_bytes()

    def test_throttled_checkpoint_cadence_still_resumes_identically(
        self, environment, detector, crash_sites, tmp_path
    ):
        """checkpoint_every_shards > 1: the checkpoint may lag the sink; the
        lagging shards are re-crawled, never double-counted."""
        config = CrawlConfig(
            seed=5, workers=4, backend="serial", checkpoint_every_shards=3
        )
        expected, baseline = uninterrupted_baseline(
            environment, detector, config, crash_sites, tmp_path=tmp_path
        )
        result, storage = interrupted_then_resumed(
            environment, detector, config, crash_sites,
            tmp_path=tmp_path, fail_after=2,
        )
        assert storage.path.read_bytes() == baseline.path.read_bytes()
        assert serialise(result.detections) == serialise(expected.detections)


# ---------------------------------------------------------------------------
# The boundary-sweep property


class TestBoundarySweep:
    """Interrupt at every shard boundary k in [0, n_shards] and resume."""

    @pytest.fixture(scope="class")
    def sweep_config(self):
        return CrawlConfig(seed=5, workers=4, backend="serial")

    @pytest.fixture(scope="class")
    def baseline(self, environment, detector, sweep_config, small_population, tmp_path_factory):
        sites = list(small_population)[:32]
        result, storage = uninterrupted_baseline(
            environment, detector, sweep_config, sites,
            tmp_path=tmp_path_factory.mktemp("baseline"),
        )
        return sites, result, storage

    def metric_texts(self, path):
        """Every registered offline metric's outcome: its rendered text, or —
        for metrics this small dataset cannot support — the identical error."""
        context = AnalysisContext.offline(CrawlDataset.from_jsonl(path))
        names = sorted(available_metrics(frozenset({"dataset"})))
        assert names, "the registry must expose offline metrics"
        outcomes = {}
        for name in names:
            try:
                outcomes[name] = compute_metric(name, context).text
            except ReproError as exc:
                outcomes[name] = f"{type(exc).__name__}: {exc}"
        return outcomes

    @pytest.mark.parametrize("boundary", [0, 1, 2, 3, 4])
    def test_interrupt_at_every_boundary(
        self, environment, detector, sweep_config, baseline, tmp_path, boundary
    ):
        sites, expected, base_storage = baseline
        n_shards = len(CrawlPlan.build(sites, workers=sweep_config.workers,
                                       seed=sweep_config.seed).shards)
        assert n_shards == 4  # the parametrised sweep covers k = 0..n_shards
        result, storage = interrupted_then_resumed(
            environment, detector, sweep_config, sites,
            tmp_path=tmp_path, fail_after=boundary,
        )
        assert storage.path.read_bytes() == base_storage.path.read_bytes()
        assert serialise(result.detections) == serialise(expected.detections)
        assert result.pages_visited == expected.pages_visited
        assert result.sessions_started == expected.sessions_started
        assert self.metric_texts(storage.path) == self.metric_texts(base_storage.path)


# ---------------------------------------------------------------------------
# Guard rails


class TestCheckpointGuards:
    def fingerprint(self, sites, seed=5):
        return {"seed": seed, "sites": [p.domain for p in sites]}

    def crash(self, environment, detector, config, sites, tmp_path, fail_after=1):
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        recorder = CrawlCheckpointer.fresh(
            tmp_path / "cp.json", self.fingerprint(sites, seed=config.seed)
        )
        from repro.crawler.engine import backend_from_name

        engine = CrawlEngine(
            environment, detector, config,
            backend=FaultyBackend(
                backend_from_name(config.backend, workers=config.workers), fail_after
            ),
        )
        with pytest.raises(SimulatedCrash):
            with engine, storage.open_sink(flush_every=2) as sink:
                engine.crawl(sites, sink=sink, checkpoint=recorder)
        return storage

    def test_checkpoint_without_sink_is_rejected(
        self, environment, detector, small_population, tmp_path
    ):
        sites = list(small_population)[:6]
        recorder = CrawlCheckpointer.fresh(tmp_path / "cp.json", self.fingerprint(sites))
        with CrawlEngine(environment, detector, CrawlConfig(seed=5)) as engine:
            with pytest.raises(ConfigurationError, match="needs a sink"):
                engine.crawl(sites, checkpoint=recorder)

    def test_sink_without_offset_tracking_is_rejected(
        self, environment, detector, small_population, tmp_path
    ):
        class BareSink:
            def write(self, detection):
                pass

        sites = list(small_population)[:6]
        recorder = CrawlCheckpointer.fresh(tmp_path / "cp.json", self.fingerprint(sites))
        with CrawlEngine(environment, detector, CrawlConfig(seed=5)) as engine:
            with pytest.raises(ConfigurationError, match="offset-tracking"):
                engine.crawl(sites, sink=BareSink(), checkpoint=recorder)

    def test_fresh_campaign_with_a_misaligned_sink_is_rejected(
        self, environment, detector, small_population, tmp_path
    ):
        """A fresh checkpoint over an append sink on a non-empty file would
        record offsets that do not describe the pre-existing content."""
        sites = list(small_population)[:6]
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        storage.path.write_text('{"pre": "existing"}\n', encoding="utf-8")
        recorder = CrawlCheckpointer.fresh(tmp_path / "cp.json", self.fingerprint(sites))
        with CrawlEngine(environment, detector, CrawlConfig(seed=5)) as engine:
            with storage.open_sink(append=True) as sink:
                with pytest.raises(CheckpointError, match="byte 0"):
                    engine.crawl(sites, sink=sink, checkpoint=recorder)

    def test_fingerprint_mismatch_refuses_to_resume(
        self, environment, detector, small_population, tmp_path
    ):
        sites = list(small_population)[:8]
        config = CrawlConfig(seed=5, workers=2, backend="serial")
        storage = self.crash(environment, detector, config, sites, tmp_path)
        with pytest.raises(CheckpointError, match="refusing to resume"):
            CrawlCheckpointer.resume(
                tmp_path / "cp.json", self.fingerprint(sites, seed=99), storage
            )

    def test_resume_with_a_deleted_sink_fails_loudly(
        self, environment, detector, small_population, tmp_path
    ):
        sites = list(small_population)[:8]
        config = CrawlConfig(seed=5, workers=2, backend="serial")
        storage = self.crash(environment, detector, config, sites, tmp_path)
        storage.path.unlink()
        with pytest.raises(ReproError, match="missing"):
            CrawlCheckpointer.resume(
                tmp_path / "cp.json", self.fingerprint(sites), storage
            )

    def test_resume_with_a_replaced_sink_fails_loudly(
        self, environment, detector, small_population, tmp_path
    ):
        """A sink swapped for a different (valid-looking) file must not be
        silently merged into the resumed crawl."""
        sites = list(small_population)[:8]
        config = CrawlConfig(seed=5, workers=2, backend="serial")
        storage = self.crash(environment, detector, config, sites, tmp_path)
        size = storage.path.stat().st_size
        storage.path.write_bytes(b"x" * size)  # same size, alien content
        with pytest.raises(StorageError, match="boundary|invalid JSON"):
            CrawlCheckpointer.resume(
                tmp_path / "cp.json", self.fingerprint(sites), storage
            )

    def test_resume_detects_sink_from_a_different_campaign(
        self, environment, detector, small_population, tmp_path
    ):
        """Matching record count but wrong sites: the deterministic re-plan
        must reject the recovered records instead of merging them."""
        sites = list(small_population)[:8]
        other = list(small_population)[8:16]
        config = CrawlConfig(seed=5, workers=2, backend="serial")
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        recorder = CrawlCheckpointer.fresh(tmp_path / "cp.json", self.fingerprint(sites))
        with CrawlEngine(environment, detector, config) as engine:
            with storage.open_sink(flush_every=2) as sink:
                # The checkpoint+sink pair records a different site list.
                engine.crawl(other, sink=sink, checkpoint=recorder)
        resumed = CrawlCheckpointer.resume(
            tmp_path / "cp.json", self.fingerprint(sites), storage
        )
        with CrawlEngine(environment, detector, config) as engine:
            with storage.open_sink(append=True, flush_every=2) as sink:
                with pytest.raises(CheckpointError, match="do not match"):
                    engine.crawl(sites, sink=sink, checkpoint=resumed)

    def test_record_progress_requires_begin_phase(self, tmp_path):
        recorder = CrawlCheckpointer.fresh(tmp_path / "cp.json", {"seed": 1})
        with pytest.raises(CheckpointError, match="begin_phase"):
            recorder.record_progress(
                0, completed_shards=1, n_detections=1, pages_visited=1,
                sessions_started=1, timed_out_domains=(), sink_offset=10,
            )

    def test_config_validates_checkpoint_every_shards(self):
        with pytest.raises(ConfigurationError):
            CrawlConfig(checkpoint_every_shards=0)


# ---------------------------------------------------------------------------
# Campaign-level resume (scheduler + runner)


class TestCampaignResume:
    def test_scheduler_campaign_killed_mid_recrawl_resumes_identically(
        self, environment, detector, small_population, tmp_path
    ):
        from repro.crawler.engine import backend_from_name

        domains = small_population.domains[:30]
        config = CrawlConfig(seed=9, workers=2, backend="thread")
        fingerprint = {"seed": 9, "domains": list(domains)}

        clean = CrawlStorage(tmp_path / "clean.jsonl")
        with Crawler(environment, detector, config) as crawler:
            with clean.open_sink(flush_every=4) as sink:
                expected = LongitudinalScheduler(crawler, recrawl_days=1).run(
                    small_population, domains=domains, sink=sink
                )

        # Kill during the day-1 re-crawl: discovery contributes 2 shards, so
        # dying after 3 results lands one shard into the second phase.
        storage = CrawlStorage(tmp_path / "resumable.jsonl")
        recorder = CrawlCheckpointer.fresh(tmp_path / "cp.json", fingerprint)
        faulty = FaultyBackend(backend_from_name("thread", workers=2), 3)
        crawler = Crawler(environment, detector, config, backend=faulty)
        with pytest.raises(SimulatedCrash):
            with crawler, storage.open_sink(flush_every=4) as sink:
                LongitudinalScheduler(crawler, recrawl_days=1).run(
                    small_population, domains=domains, sink=sink, checkpoint=recorder
                )

        resumed_recorder = CrawlCheckpointer.resume(
            tmp_path / "cp.json", fingerprint, storage
        )
        with Crawler(environment, detector, config) as crawler:
            with storage.open_sink(append=True, flush_every=4) as sink:
                resumed = LongitudinalScheduler(crawler, recrawl_days=1).run(
                    small_population, domains=domains, sink=sink,
                    checkpoint=resumed_recorder,
                )

        assert storage.path.read_bytes() == clean.path.read_bytes()
        assert serialise(resumed.all_detections) == serialise(expected.all_detections)
        assert resumed.discovery.hb_domains == expected.discovery.hb_domains
        assert resumed.pages_visited == expected.pages_visited

    def test_runner_checkpoint_resume_round_trip(self, tmp_path, monkeypatch):
        import repro.crawler.engine as engine_mod
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import ExperimentRunner

        config = ExperimentConfig(
            total_sites=400, seed=7, recrawl_days=1, historical_sites=120,
            workers=2, crawl_backend="thread",
        )
        clean = CrawlStorage(tmp_path / "clean.jsonl")
        expected = ExperimentRunner(config).run(storage=clean)

        ckpt_config = config.with_checkpoint(str(tmp_path / "cp.json"))
        storage = CrawlStorage(tmp_path / "resumable.jsonl")
        real = engine_mod.backend_from_name
        with monkeypatch.context() as patch:
            patch.setattr(
                engine_mod, "backend_from_name",
                lambda name, workers=None: FaultyBackend(
                    real(name, workers=workers), 3
                ),
            )
            with pytest.raises(SimulatedCrash):
                ExperimentRunner(ckpt_config).run(storage=storage)

        resumed = ExperimentRunner(
            dataclasses.replace(ckpt_config, resume=True)
        ).run(storage=storage)
        assert storage.path.read_bytes() == clean.path.read_bytes()
        assert serialise(resumed.longitudinal.all_detections) == serialise(
            expected.longitudinal.all_detections
        )
        assert resumed.dataset.summary() == expected.dataset.summary()

        # Resuming the now-finished campaign is a no-op byte-identical replay.
        replay = ExperimentRunner(
            dataclasses.replace(ckpt_config, resume=True)
        ).run(storage=storage)
        assert storage.path.read_bytes() == clean.path.read_bytes()
        assert replay.dataset.summary() == expected.dataset.summary()

    def test_runner_refuses_checkpoint_without_storage(self, tmp_path):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import ExperimentRunner

        config = ExperimentConfig(
            total_sites=400, seed=7, recrawl_days=0, historical_sites=120,
            checkpoint_path=str(tmp_path / "cp.json"),
        )
        with pytest.raises(ConfigurationError, match="persistent storage"):
            ExperimentRunner(config).run()

    def test_experiment_config_validates_resume(self):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ConfigurationError, match="resume requires"):
            ExperimentConfig(resume=True)

    def test_runner_fingerprint_mismatch_refuses(self, tmp_path):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import ExperimentRunner

        config = ExperimentConfig(
            total_sites=400, seed=7, recrawl_days=0, historical_sites=120,
            checkpoint_path=str(tmp_path / "cp.json"),
        )
        storage = CrawlStorage(tmp_path / "crawl.jsonl")
        ExperimentRunner(config).run(storage=storage)
        bigger = dataclasses.replace(config, total_sites=500, resume=True)
        with pytest.raises(CheckpointError, match="refusing to resume"):
            ExperimentRunner(bigger).run(storage=storage)
