"""Unit and calibration tests for publisher population generation."""

import collections

import pytest

from repro.ecosystem.publishers import PopulationConfig, Publisher, generate_population
from repro.errors import ConfigurationError
from repro.models import AdSlot, AdSlotSize, HBFacet, WrapperKind


class TestPopulationConfig:
    def test_default_matches_paper_scale(self):
        config = PopulationConfig()
        assert config.total_sites == 35_000
        assert config.adoption_probability(1) == pytest.approx(0.215)
        assert config.adoption_probability(10_000) == pytest.approx(0.145)
        assert config.adoption_probability(30_000) == pytest.approx(0.115)

    def test_scaled_preserves_tier_proportions(self):
        config = PopulationConfig().scaled(3_500)
        assert config.total_sites == 3_500
        assert config.adoption_tiers[0][0] == 500
        assert config.adoption_tiers[1][0] == 1_500

    def test_facet_shares_sum_to_one(self):
        config = PopulationConfig()
        assert sum(share for _, share in config.facet_shares) == pytest.approx(1.0)

    def test_rejects_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(total_sites=0)
        with pytest.raises(ConfigurationError):
            PopulationConfig(facet_shares=((HBFacet.CLIENT_SIDE, 0.5),))
        with pytest.raises(ConfigurationError):
            PopulationConfig(misconfigured_wrapper_rate=1.5)


class TestPublisherValidation:
    def test_non_hb_publisher_needs_no_hb_fields(self):
        publisher = Publisher(domain="plain.example", rank=3, uses_hb=False)
        assert publisher.n_partners == 0
        assert publisher.url == "https://plain.example/"

    def test_hb_publisher_requires_partners_and_slots(self, registry):
        dfp = registry.get("DFP")
        with pytest.raises(ConfigurationError):
            Publisher(domain="x.example", rank=1, uses_hb=True, facet=HBFacet.HYBRID,
                      wrapper=WrapperKind.PREBID, partners=(), slots=())

    def test_server_side_publisher_must_expose_one_partner(self, registry):
        dfp, criteo = registry.get("DFP"), registry.get("Criteo")
        slot = AdSlot(code="s", primary_size=AdSlotSize(300, 250))
        with pytest.raises(ConfigurationError):
            Publisher(domain="x.example", rank=1, uses_hb=True, facet=HBFacet.SERVER_SIDE,
                      wrapper=WrapperKind.GPT, partners=(dfp, criteo), slots=(slot,))

    def test_auctioned_slots_default_to_display_slots(self, registry):
        dfp = registry.get("DFP")
        slot = AdSlot(code="s", primary_size=AdSlotSize(300, 250))
        publisher = Publisher(domain="x.example", rank=1, uses_hb=True, facet=HBFacet.SERVER_SIDE,
                              wrapper=WrapperKind.GPT, partners=(dfp,), ad_server=dfp, slots=(slot,))
        assert publisher.auctioned_slots == publisher.slots

    def test_rank_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Publisher(domain="x.example", rank=0, uses_hb=False)


class TestGeneratedPopulation:
    def test_generation_is_deterministic(self, registry):
        config = PopulationConfig(seed=3).scaled(200)
        a = generate_population(config, registry)
        b = generate_population(config, registry)
        assert a.domains == b.domains
        assert [p.uses_hb for p in a] == [p.uses_hb for p in b]

    def test_population_size_and_lookup(self, small_population):
        assert len(small_population) == 600
        first = small_population[0]
        assert small_population.by_domain(first.domain) is first
        with pytest.raises(KeyError):
            small_population.by_domain("missing.example")

    def test_adoption_rate_is_paper_like(self, small_population):
        assert 0.09 <= small_population.adoption_rate() <= 0.21

    def test_facet_mix_is_paper_like(self, small_population):
        counts = small_population.facet_counts()
        total = sum(counts.values())
        assert counts[HBFacet.SERVER_SIDE] / total > counts[HBFacet.HYBRID] / total
        assert counts[HBFacet.HYBRID] / total > counts[HBFacet.CLIENT_SIDE] / total

    def test_server_side_sites_expose_exactly_one_partner(self, small_population):
        for publisher in small_population.hb_publishers():
            if publisher.facet is HBFacet.SERVER_SIDE:
                assert publisher.n_partners == 1
                assert publisher.ad_server is publisher.partners[0]

    def test_client_side_sites_have_no_known_ad_server(self, small_population):
        for publisher in small_population.hb_publishers():
            if publisher.facet is HBFacet.CLIENT_SIDE:
                assert publisher.ad_server is None
                assert publisher.own_ad_server_host.startswith("ads.")

    def test_majority_of_hb_sites_use_one_partner(self, small_population):
        counts = collections.Counter(p.n_partners for p in small_population.hb_publishers())
        total = sum(counts.values())
        assert counts[1] / total > 0.40

    def test_dfp_present_on_most_hb_sites(self, small_population):
        hb = small_population.hb_publishers()
        share = sum(1 for p in hb if "DFP" in p.partner_names) / len(hb)
        assert share > 0.65

    def test_every_hb_site_has_slots_and_timeout(self, small_population):
        for publisher in small_population.hb_publishers():
            assert publisher.n_display_slots >= 1
            assert publisher.n_auctioned_slots >= publisher.n_display_slots
            assert publisher.timeout_ms > 0

    def test_top_ranked_sites_get_lower_latency_scale(self, small_population):
        config = small_population.config
        top = [p for p in small_population if p.rank <= config.top_rank_threshold]
        rest = [p for p in small_population if p.rank > config.head_rank_threshold]
        assert all(p.latency_scale < 1.0 for p in top)
        assert all(p.latency_scale == 1.0 for p in rest)

    def test_some_sites_auction_device_duplicates(self, registry):
        config = PopulationConfig(seed=99, multi_device_duplicate_rate=0.5).scaled(300)
        population = generate_population(config, registry)
        inflated = [p for p in population.hb_publishers()
                    if p.n_auctioned_slots > p.n_display_slots]
        assert inflated, "expected at least one publisher auctioning device duplicates"
