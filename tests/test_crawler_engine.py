"""Unit tests for the sharded crawl engine and its execution backends."""

import json

import pytest

from repro.crawler.crawler import CrawlConfig, Crawler, CrawlResult
from repro.crawler.engine import (
    BACKEND_NAMES,
    CrawlEngine,
    CrawlPlan,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    backend_from_name,
)
from repro.crawler.scheduler import LongitudinalScheduler
from repro.crawler.storage import CrawlStorage, detection_to_dict
from repro.detector.detector import HBDetector
from repro.detector.records import SiteDetection
from repro.errors import ConfigurationError


def serialise(detections):
    return json.dumps([detection_to_dict(d) for d in detections])


class TestCrawlPlan:
    def test_single_worker_is_one_shard(self, small_population):
        sites = list(small_population)[:10]
        plan = CrawlPlan.build(sites, workers=1, seed=3)
        assert len(plan.shards) == 1
        assert plan.shards[0].publishers == tuple(sites)
        assert plan.n_sites == 10

    def test_shards_are_contiguous_and_balanced(self, small_population):
        sites = list(small_population)[:11]
        plan = CrawlPlan.build(sites, workers=3, seed=3)
        assert [len(shard) for shard in plan.shards] == [4, 4, 3]
        assert [shard.start for shard in plan.shards] == [0, 4, 8]
        assert plan.site_order == tuple(p.domain for p in sites)

    def test_plan_is_deterministic(self, small_population):
        sites = list(small_population)[:20]
        assert CrawlPlan.build(sites, workers=4, seed=9) == CrawlPlan.build(
            sites, workers=4, seed=9
        )

    def test_shard_seeds_derive_from_seed_and_index(self, small_population):
        sites = list(small_population)[:20]
        plan = CrawlPlan.build(sites, workers=4, seed=9)
        seeds = [shard.shard_seed for shard in plan.shards]
        assert len(set(seeds)) == len(seeds)
        assert seeds != [s.shard_seed for s in CrawlPlan.build(sites, workers=4, seed=10).shards]

    def test_more_workers_than_sites(self, small_population):
        sites = list(small_population)[:3]
        plan = CrawlPlan.build(sites, workers=8, seed=3)
        assert len(plan.shards) == 3
        assert all(len(shard) == 1 for shard in plan.shards)

    def test_empty_site_list(self):
        plan = CrawlPlan.build([], workers=4, seed=3)
        assert plan.n_sites == 0
        assert len(plan.shards) == 1
        assert plan.shards[0].publishers == ()

    def test_workers_must_be_positive(self, small_population):
        with pytest.raises(ConfigurationError):
            CrawlPlan.build(list(small_population)[:4], workers=0, seed=3)


class TestCrawlResultMerge:
    @staticmethod
    def result(*domains, timed_out=(), sessions=1):
        detections = [SiteDetection(domain=d, rank=1, hb_detected=False) for d in domains]
        return CrawlResult(
            detections=detections,
            timed_out_domains=list(timed_out),
            pages_visited=len(detections),
            sessions_started=sessions,
        )

    def test_merge_preserves_order_and_sums_counters(self):
        merged = self.result("a", "b", sessions=2).merge(self.result("c", timed_out=["c"]))
        assert [d.domain for d in merged.detections] == ["a", "b", "c"]
        assert merged.timed_out_domains == ["c"]
        assert merged.pages_visited == 3
        assert merged.sessions_started == 3

    def test_merge_does_not_mutate_inputs(self):
        left, right = self.result("a"), self.result("b")
        left.merge(right)
        assert [d.domain for d in left.detections] == ["a"]
        assert [d.domain for d in right.detections] == ["b"]

    def test_merged_equals_left_fold(self):
        parts = [self.result("a"), self.result("b", "c"), self.result("d")]
        merged = CrawlResult.merged(parts)
        folded = parts[0].merge(parts[1]).merge(parts[2])
        assert merged.detections == folded.detections
        assert [d.domain for d in merged.detections] == ["a", "b", "c", "d"]

    def test_merged_is_order_deterministic(self):
        parts = [self.result("a"), self.result("b")]
        assert [d.domain for d in CrawlResult.merged(parts).detections] == ["a", "b"]
        assert [d.domain for d in CrawlResult.merged(reversed(parts)).detections] == ["b", "a"]

    def test_merged_of_nothing_is_empty(self):
        merged = CrawlResult.merged([])
        assert merged.detections == []
        assert merged.pages_visited == 0


class TestBackendFactory:
    def test_names_round_trip(self):
        assert backend_from_name("serial").name == "serial"
        assert backend_from_name("thread", workers=2).name == "thread"
        assert backend_from_name("process", workers=2).name == "process"
        assert set(BACKEND_NAMES) == {"serial", "thread", "process"}

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            backend_from_name("gpu")

    def test_pool_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ThreadPoolBackend(max_workers=0)

    def test_config_validates_knobs(self):
        with pytest.raises(ConfigurationError):
            CrawlConfig(workers=0)
        with pytest.raises(ConfigurationError):
            CrawlConfig(backend="gpu")


class TestBackendEquivalence:
    """The acceptance criterion: identical detections for any worker count."""

    @pytest.fixture(scope="class")
    def sites(self, small_population):
        return list(small_population)[:48]

    @pytest.fixture(scope="class")
    def serial_result(self, environment, detector, sites):
        engine = CrawlEngine(environment, detector, CrawlConfig(seed=5))
        return engine.crawl(sites)

    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_serial_byte_for_byte(
        self, environment, detector, sites, serial_result, backend_name, workers
    ):
        engine = CrawlEngine(
            environment,
            detector,
            CrawlConfig(seed=5, workers=workers, backend=backend_name),
        )
        result = engine.crawl(sites)
        assert serialise(result.detections) == serialise(serial_result.detections)
        assert result.timed_out_domains == serial_result.timed_out_domains
        assert result.pages_visited == serial_result.pages_visited

    def test_explicit_backend_instance_overrides_config(self, environment, detector, sites, serial_result):
        engine = CrawlEngine(
            environment,
            detector,
            CrawlConfig(seed=5, workers=3),
            backend=ThreadPoolBackend(),
        )
        assert engine.backend.name == "thread"
        assert serialise(engine.crawl(sites).detections) == serialise(serial_result.detections)

    def test_timeouts_identical_across_backends(self, environment, detector, sites):
        config = CrawlConfig(seed=5, page_load_timeout_ms=10.0)
        serial = CrawlEngine(environment, detector, config).crawl(sites)
        parallel = CrawlEngine(
            environment,
            detector,
            CrawlConfig(seed=5, page_load_timeout_ms=10.0, workers=4, backend="thread"),
        ).crawl(sites)
        assert serial.timed_out_domains == parallel.timed_out_domains == [p.domain for p in sites]
        assert serialise(serial.detections) == serialise(parallel.detections)


class TestStreamingAndProgress:
    def test_progress_is_called_in_canonical_order(self, environment, detector, small_population):
        sites = list(small_population)[:12]
        engine = CrawlEngine(
            environment, detector, CrawlConfig(seed=5, workers=4, backend="thread")
        )
        seen = []
        engine.crawl(sites, progress=lambda i, n, d: seen.append((i, n, d.domain)))
        assert [entry[0] for entry in seen] == list(range(1, 13))
        assert all(entry[1] == 12 for entry in seen)
        assert [entry[2] for entry in seen] == [p.domain for p in sites]

    def test_sink_receives_detections_in_canonical_order(
        self, environment, detector, small_population, tmp_path
    ):
        sites = list(small_population)[:12]
        engine = CrawlEngine(
            environment, detector, CrawlConfig(seed=5, workers=3, backend="thread")
        )
        storage = CrawlStorage(tmp_path / "stream.jsonl")
        with storage.open_sink() as sink:
            result = engine.crawl(sites, sink=sink)
        assert sink.count == len(sites)
        assert storage.load() == result.detections

    def test_streamed_bytes_equal_buffered_bytes(
        self, environment, detector, small_population, tmp_path
    ):
        sites = list(small_population)[:12]
        engine = CrawlEngine(
            environment, detector, CrawlConfig(seed=5, workers=3, backend="thread")
        )
        streamed = CrawlStorage(tmp_path / "streamed.jsonl")
        with streamed.open_sink() as sink:
            result = engine.crawl(sites, sink=sink)
        buffered = CrawlStorage(tmp_path / "buffered.jsonl")
        buffered.save(result.detections)
        assert streamed.path.read_bytes() == buffered.path.read_bytes()


class TestSessionAccounting:
    """The crawl never spawns a replacement session after the final site."""

    def test_one_session_per_page_exactly(self, environment, detector, small_population):
        crawler = Crawler(environment, detector, CrawlConfig(seed=5))
        result = crawler.crawl(list(small_population)[:10])
        assert result.pages_visited == 10
        assert result.sessions_started == 10

    def test_final_timeout_spawns_no_replacement(self, environment, detector, small_population):
        crawler = Crawler(
            environment, detector, CrawlConfig(seed=5, page_load_timeout_ms=10.0)
        )
        result = crawler.crawl(list(small_population)[:15])
        assert len(result.timed_out_domains) == 15
        assert result.sessions_started == 15

    def test_restart_every_pages_batches_sessions(self, environment, detector, small_population):
        crawler = Crawler(environment, detector, CrawlConfig(seed=5, restart_every_pages=3))
        result = crawler.crawl(list(small_population)[:10])
        if result.timed_out_domains:
            pytest.skip("timeouts would perturb the batch arithmetic")
        assert result.sessions_started == 4  # pages 1-3, 4-6, 7-9, 10

    def test_empty_crawl_starts_no_session(self, environment, detector):
        crawler = Crawler(environment, detector, CrawlConfig(seed=5))
        result = crawler.crawl([])
        assert result.sessions_started == 0
        assert result.pages_visited == 0


class TestWorkerReuse:
    """Workers build their environment/detector once, not once per shard."""

    class CountingDetector(HBDetector):
        def __init__(self, known):
            super().__init__(known)
            self.clones = 0
            self.resets = 0

        def clone(self):
            self.clones += 1
            return HBDetector(self.known_partners)

        def reset(self):
            self.resets += 1
            super().reset()

    @pytest.fixture()
    def counting_detector(self, detector):
        return self.CountingDetector(detector.known_partners)

    def test_thread_workers_clone_detector_once_per_worker(
        self, environment, counting_detector, small_population
    ):
        sites = list(small_population)[:24]
        with CrawlEngine(
            environment, counting_detector, CrawlConfig(seed=5, workers=3, backend="thread")
        ) as engine:
            for _ in range(3):  # three crawls over the same persistent pool
                engine.crawl(sites)
        # One clone per worker thread for the engine's lifetime — previously
        # one deep copy per shard per crawl (3 shards x 3 crawls = 9 copies).
        assert 1 <= counting_detector.clones <= 3
        assert counting_detector.resets == 0  # shards reset the clones instead

    def test_serial_backend_resets_shared_detector_per_shard(
        self, environment, counting_detector, small_population
    ):
        engine = CrawlEngine(environment, counting_detector, CrawlConfig(seed=5))
        engine.crawl(list(small_population)[:6])
        assert counting_detector.clones == 0
        assert counting_detector.resets == 1  # one shard on the serial path

    def test_pool_persists_across_crawls_and_close_releases_it(
        self, environment, detector, small_population
    ):
        sites = list(small_population)[:12]
        engine = CrawlEngine(
            environment, detector, CrawlConfig(seed=5, workers=2, backend="thread")
        )
        first = engine.crawl(sites)
        pool = engine.backend._executor
        assert pool is not None
        second = engine.crawl(sites, crawl_day=1)
        assert engine.backend._executor is pool  # reused, not rebuilt
        engine.close()
        assert engine.backend._executor is None
        # The engine is reusable after close(): a fresh pool spins up lazily.
        third = engine.crawl(sites)
        assert serialise(third.detections) == serialise(first.detections)
        assert second.pages_visited == len(sites)
        engine.close()

    def test_process_pool_reuse_stays_byte_identical_across_days(
        self, environment, detector, small_population
    ):
        sites = list(small_population)[:16]
        serial_engine = CrawlEngine(environment, detector, CrawlConfig(seed=5))
        with CrawlEngine(
            environment, detector, CrawlConfig(seed=5, workers=4, backend="process")
        ) as engine:
            for day in (0, 1, 2):  # same worker processes serve all three days
                expected = serial_engine.crawl(sites, crawl_day=day)
                result = engine.crawl(sites, crawl_day=day)
                assert serialise(result.detections) == serialise(expected.detections)

    def test_live_pool_refuses_a_different_detector(
        self, environment, detector, small_population
    ):
        sites = list(small_population)[:8]
        backend = ThreadPoolBackend(max_workers=2)
        with backend:
            CrawlEngine(
                environment, detector, CrawlConfig(seed=5, workers=2), backend=backend
            ).crawl(sites)
            other = CrawlEngine(
                environment,
                HBDetector(detector.known_partners),
                CrawlConfig(seed=5, workers=2),
                backend=backend,
            )
            with pytest.raises(ConfigurationError):
                other.crawl(sites)

    def test_live_pool_refuses_a_different_config(
        self, environment, detector, small_population
    ):
        """Workers bake the config into their context at pool start; a second
        engine with another seed must not silently crawl with the old one."""
        sites = list(small_population)[:8]
        backend = ThreadPoolBackend(max_workers=2)
        with backend:
            CrawlEngine(
                environment, detector, CrawlConfig(seed=5, workers=2), backend=backend
            ).crawl(sites)
            other = CrawlEngine(
                environment, detector, CrawlConfig(seed=9, workers=2), backend=backend
            )
            with pytest.raises(ConfigurationError):
                other.crawl(sites)

    def test_pool_grows_when_a_larger_crawl_arrives(
        self, environment, detector, small_population
    ):
        """A small warm-up crawl must not cap parallelism for later crawls."""
        sites = list(small_population)[:40]
        with CrawlEngine(
            environment, detector, CrawlConfig(seed=5, workers=8, backend="thread")
        ) as engine:
            engine.crawl(sites[:2])  # 2 shards -> pool of 2
            assert engine.backend._pool_size == 2
            result = engine.crawl(sites)  # 8 shards -> pool rebuilt at 8
            assert engine.backend._pool_size == 8
        serial = CrawlEngine(environment, detector, CrawlConfig(seed=5)).crawl(sites)
        assert serialise(result.detections) == serialise(serial.detections)

    def test_clone_preserves_detector_subclass(self, detector):
        sub = self.CountingDetector(detector.known_partners)
        assert type(HBDetector.clone(sub)) is self.CountingDetector


class TestShardBoundaryFlush:
    class RecordingSink:
        def __init__(self):
            self.events = []

        def write(self, detection):
            self.events.append("write")

        def flush(self):
            self.events.append("flush")

    @pytest.mark.parametrize("backend_name,workers", [("serial", 1), ("thread", 3)])
    def test_sink_flushed_at_every_shard_boundary(
        self, environment, detector, small_population, backend_name, workers
    ):
        sites = list(small_population)[:12]
        sink = self.RecordingSink()
        with CrawlEngine(
            environment,
            detector,
            CrawlConfig(seed=5, workers=workers, backend=backend_name),
        ) as engine:
            n_shards = len(engine.plan(sites).shards)
            engine.crawl(sites, sink=sink)
        assert sink.events.count("write") == len(sites)
        flushes = sink.events.count("flush")
        assert 1 <= flushes <= n_shards
        assert sink.events[-1] == "flush"  # the final boundary flush

    def test_sinks_without_flush_are_supported(self, environment, detector, small_population):
        class BareSink:
            def __init__(self):
                self.count = 0

            def write(self, detection):
                self.count += 1

        sink = BareSink()
        with CrawlEngine(
            environment, detector, CrawlConfig(seed=5, workers=2, backend="thread")
        ) as engine:
            engine.crawl(list(small_population)[:6], sink=sink)
        assert sink.count == 6


class TestFacadeAndScheduler:
    def test_crawler_facade_delegates_to_engine(self, environment, detector, small_population):
        crawler = Crawler(environment, detector, CrawlConfig(seed=5))
        assert isinstance(crawler.engine, CrawlEngine)
        assert isinstance(crawler.engine.backend, SerialBackend)
        direct = crawler.engine.crawl(list(small_population)[:8])
        via_facade = crawler.crawl(list(small_population)[:8])
        assert serialise(direct.detections) == serialise(via_facade.detections)

    def test_scheduler_accepts_engine_and_streams(
        self, environment, detector, small_population, tmp_path
    ):
        engine = CrawlEngine(
            environment, detector, CrawlConfig(seed=9, workers=2, backend="thread")
        )
        scheduler = LongitudinalScheduler(engine, recrawl_days=1)
        storage = CrawlStorage(tmp_path / "longitudinal.jsonl")
        domains = small_population.domains[:30]
        with storage.open_sink() as sink:
            longitudinal = scheduler.run(small_population, domains=domains, sink=sink)
        assert storage.load() == longitudinal.all_detections

    def test_parallel_scheduler_matches_serial(self, environment, detector, small_population):
        domains = small_population.domains[:30]
        serial = LongitudinalScheduler(
            Crawler(environment, detector, CrawlConfig(seed=9)), recrawl_days=1
        ).run(small_population, domains=domains)
        parallel = LongitudinalScheduler(
            CrawlEngine(environment, detector, CrawlConfig(seed=9, workers=4, backend="process")),
            recrawl_days=1,
        ).run(small_population, domains=domains)
        assert serialise(serial.all_detections) == serialise(parallel.all_detections)

    def test_serial_backend_streams_page_by_page(
        self, environment, detector, small_population, monkeypatch
    ):
        """With the default serial backend the sink is fed after every page
        load, not in one burst once the whole crawl has finished."""
        import repro.crawler.engine as engine_mod

        events = []

        class SpySession(engine_mod.CrawlSession):
            def load(self, publisher, *, visit_index=0):
                events.append(("load", publisher.domain))
                return super().load(publisher, visit_index=visit_index)

        monkeypatch.setattr(engine_mod, "CrawlSession", SpySession)

        class ListSink:
            def write(self, detection):
                events.append(("write", detection.domain))

        sites = list(small_population)[:4]
        # batch_sim=False: the session spy observes the per-page reference
        # loop.  The columnar path never builds sessions; its page-granular
        # streaming is asserted separately below.
        engine = CrawlEngine(environment, detector, CrawlConfig(seed=5, batch_sim=False))
        engine.crawl(sites, sink=ListSink())
        expected = []
        for publisher in sites:
            expected += [("load", publisher.domain), ("write", publisher.domain)]
        assert events == expected

    def test_serial_columnar_streams_page_by_page(
        self, environment, detector, small_population
    ):
        """The columnar shard simulator fires on_detection after every page,
        so a serial sink still sees one write per site, in site order."""
        writes = []

        class ListSink:
            def write(self, detection):
                writes.append(detection.domain)

        sites = list(small_population)[:4]
        engine = CrawlEngine(environment, detector, CrawlConfig(seed=5))
        engine.crawl(sites, sink=ListSink())
        assert writes == [publisher.domain for publisher in sites]
