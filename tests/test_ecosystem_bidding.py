"""Unit tests for the structural pricing model."""

import pytest

from repro.ecosystem.bidding import (
    FACET_PRICE_MULTIPLIERS,
    PricingModel,
    SIZE_PRICE_MULTIPLIERS,
    facet_price_multiplier,
    popularity_price_multiplier,
    size_price_multiplier,
)
from repro.models import AdSlotSize, HBFacet


class TestSizeMultipliers:
    def test_reference_size_is_one(self):
        assert SIZE_PRICE_MULTIPLIERS["300x250"] == pytest.approx(1.0)

    def test_skyscraper_is_most_expensive_calibrated_size(self):
        assert SIZE_PRICE_MULTIPLIERS["120x600"] == max(SIZE_PRICE_MULTIPLIERS.values())

    def test_small_mobile_banner_is_cheapest(self):
        assert SIZE_PRICE_MULTIPLIERS["300x50"] == min(SIZE_PRICE_MULTIPLIERS.values())

    def test_unknown_size_falls_back_to_area_scaling(self):
        tiny = size_price_multiplier(AdSlotSize(88, 31))
        huge = size_price_multiplier(AdSlotSize(1000, 1000))
        assert 0.02 <= tiny < 1.0
        assert 1.0 < huge <= 4.0

    def test_known_size_uses_calibrated_value(self):
        assert size_price_multiplier(AdSlotSize(728, 90)) == SIZE_PRICE_MULTIPLIERS["728x90"]


class TestFacetMultipliers:
    def test_client_side_draws_highest_prices(self):
        assert FACET_PRICE_MULTIPLIERS[HBFacet.CLIENT_SIDE] > FACET_PRICE_MULTIPLIERS[HBFacet.HYBRID]
        assert FACET_PRICE_MULTIPLIERS[HBFacet.HYBRID] > FACET_PRICE_MULTIPLIERS[HBFacet.SERVER_SIDE]

    def test_lookup_helper_matches_table(self):
        for facet in HBFacet:
            assert facet_price_multiplier(facet) == FACET_PRICE_MULTIPLIERS[facet]


class TestPopularityMultiplier:
    def test_most_popular_partner_bids_lower(self):
        top = popularity_price_multiplier(1, 84)
        bottom = popularity_price_multiplier(84, 84)
        assert top < 1.0 < bottom

    def test_is_monotonic_in_rank(self):
        values = [popularity_price_multiplier(rank, 84) for rank in range(1, 85)]
        assert values == sorted(values)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            popularity_price_multiplier(0, 84)
        with pytest.raises(ValueError):
            popularity_price_multiplier(1, 0)


class TestPricingModel:
    def test_combined_multiplier_composes_all_factors(self):
        model = PricingModel()
        combined = model.combined_multiplier(
            AdSlotSize(300, 250), HBFacet.CLIENT_SIDE, popularity_rank=1, total_partners=84,
            vanilla_profile=False,
        )
        expected = (
            model.size_multiplier(AdSlotSize(300, 250))
            * model.facet_multiplier(HBFacet.CLIENT_SIDE)
            * popularity_price_multiplier(1, 84)
        )
        assert combined == pytest.approx(expected)

    def test_vanilla_profile_attenuates_prices(self):
        model = PricingModel()
        with_profile = model.combined_multiplier(AdSlotSize(300, 250), HBFacet.HYBRID,
                                                  vanilla_profile=False)
        vanilla = model.combined_multiplier(AdSlotSize(300, 250), HBFacet.HYBRID,
                                            vanilla_profile=True)
        assert vanilla == pytest.approx(with_profile * model.vanilla_profile_multiplier)

    def test_unknown_facet_multiplier_defaults_to_one(self):
        model = PricingModel(facet_multipliers={})
        assert model.facet_multiplier(HBFacet.HYBRID) == 1.0
