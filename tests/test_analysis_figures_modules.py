"""Unit tests for the per-figure analysis modules, run on the shared dataset.

These tests exercise the analysis layer against the end-to-end experiment
fixture, asserting the structural properties each figure relies on (shares sum
to one, whisker statistics are ordered, groupings cover the data) as well as
the qualitative shapes the paper reports.
"""

import pytest

from repro.analysis import adoption, adslots, facets, late_bids, latency, partners, prices
from repro.errors import EmptyDatasetError
from repro.analysis.dataset import CrawlDataset
from repro.models import HBFacet


class TestAdoption:
    def test_tiers_partition_the_population(self, dataset):
        tiers = adoption.adoption_by_rank_tier(dataset)
        assert sum(tier.sites for tier in tiers) == len(dataset.sites())
        assert all(0.0 <= tier.adoption_rate <= 1.0 for tier in tiers)

    def test_top_tier_has_highest_adoption(self, dataset):
        tiers = adoption.adoption_by_rank_tier(dataset)
        assert tiers[0].adoption_rate >= tiers[-1].adoption_rate

    def test_summary_contains_overall_and_tiers(self, dataset):
        summary = adoption.adoption_summary(dataset)
        assert 0.05 < summary["overall"] < 0.3
        assert any(key.startswith("tier:") for key in summary)

    def test_empty_dataset_raises(self):
        with pytest.raises(EmptyDatasetError):
            adoption.adoption_summary(CrawlDataset())


class TestPartners:
    def test_popularity_shares_are_fractions_of_hb_sites(self, dataset):
        rows = partners.partner_popularity(dataset)
        assert rows == sorted(rows, key=lambda r: -r.sites)
        assert all(0 < row.share_of_hb_sites <= 1 for row in rows)
        assert rows[0].partner == "DFP"

    def test_partners_per_site_ecdf_majority_single_partner(self, dataset):
        curve = partners.partners_per_site_ecdf(dataset)
        assert curve.fraction_at_most(1.0) > 0.35
        assert curve.values[0] >= 1.0

    def test_combinations_are_dominated_by_dfp_alone(self, dataset):
        rows = partners.partner_combinations(dataset, top_n=10)
        assert rows[0][0] == ("DFP",)
        assert rows[0][1] > 0.3
        assert all(share <= rows[0][1] + 1e-9 for _, share in rows)

    def test_partners_per_facet_shares_sum_to_at_most_one(self, dataset):
        per_facet = partners.partners_per_facet(dataset)
        for facet, rows in per_facet.items():
            assert sum(share for _, share in rows) <= 1.0 + 1e-9


class TestLatency:
    def test_total_latency_median_in_paper_ballpark(self, dataset):
        curve = latency.total_latency_ecdf(dataset)
        assert 200.0 < curve.median < 1_500.0

    def test_rank_bins_cover_hb_sites(self, dataset):
        rows = latency.latency_by_rank_bin(dataset, bin_size=50)
        assert rows
        assert all(stats.median > 0 for _, stats in rows)

    def test_partner_profiles_are_sorted_by_popularity(self, dataset):
        profiles = latency.partner_latency_profiles(dataset, min_samples=1)
        ranks = [profile.popularity_rank for profile in profiles]
        assert ranks == sorted(ranks)

    def test_fastest_are_faster_than_slowest(self, dataset):
        fastest = latency.fastest_partners(dataset, top_n=3, min_samples=1)
        slowest = latency.slowest_partners(dataset, top_n=3, min_samples=1)
        assert fastest[0].median_ms < slowest[0].median_ms

    def test_latency_grows_with_partner_count(self, dataset):
        rows = latency.latency_by_partner_count(dataset)
        assert rows[0][0] == 1
        single = rows[0][1].median
        multi = [stats.median for count, stats, _ in rows if count >= 3]
        if multi:
            assert max(multi) > single
        shares = [share for _, _, share in rows]
        assert sum(shares) <= 1.0 + 1e-9

    def test_popularity_bins_have_positive_latency(self, dataset):
        rows = latency.latency_by_popularity_rank(dataset, bin_size=10)
        assert rows
        assert all(stats.median > 0 for _, stats in rows)


class TestLateBids:
    def test_late_bid_ecdf_is_percentage_scale(self, dataset):
        curve = late_bids.late_bid_ecdf(dataset)
        assert 0.0 < curve.values[0] <= 100.0
        assert curve.values[-1] <= 100.0

    def test_per_partner_lateness_sorted_worst_first(self, dataset):
        rows = late_bids.late_bids_per_partner(dataset, min_bids=1)
        shares = [row.late_share for row in rows]
        assert shares == sorted(shares, reverse=True)
        assert all(row.late_bids <= row.bids for row in rows)

    def test_share_distribution_summary(self, dataset):
        summary = late_bids.late_bid_share_distribution(dataset)
        assert 0.0 <= summary["share_of_auctions_with_late_bids"] <= 1.0


class TestAdslotsAndPrices:
    def test_adslot_ecdf_medians_in_paper_range(self, dataset):
        curves = adslots.adslots_per_site_ecdf(dataset)
        for facet, curve in curves.items():
            assert 1.0 <= curve.median <= 8.0

    def test_latency_by_adslot_count_grows(self, dataset):
        rows = adslots.latency_by_adslot_count(dataset)
        assert rows[0][0] >= 1
        assert all(stats.median > 0 for _, stats in rows)

    def test_top_size_is_the_medium_rectangle(self, dataset):
        shares = adslots.adslot_size_shares(dataset)
        for facet, rows in shares.items():
            if rows:
                assert rows[0][0] in {"300x250", "728x90"}

    def test_price_cdf_client_side_highest(self, dataset):
        curves = prices.price_ecdf_by_facet(dataset)
        assert set(curves) <= set(HBFacet)
        if HBFacet.CLIENT_SIDE in curves and HBFacet.SERVER_SIDE in curves:
            assert curves[HBFacet.CLIENT_SIDE].median >= curves[HBFacet.SERVER_SIDE].median * 0.8

    def test_price_by_size_sorted_by_area(self, dataset):
        rows = prices.price_by_size(dataset, min_bids=1)
        from repro.models import parse_size

        areas = [parse_size(label).area for label, _ in rows]
        assert areas == sorted(areas, reverse=True)

    def test_price_by_popularity_has_positive_medians(self, dataset):
        rows = prices.price_by_popularity_rank(dataset)
        assert all(stats.median > 0 for _, stats in rows)


class TestFacets:
    def test_breakdown_sums_to_one_and_server_side_leads(self, dataset):
        breakdown = facets.facet_breakdown(dataset)
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown[HBFacet.SERVER_SIDE] == max(breakdown.values())

    def test_counts_match_hb_sites(self, dataset):
        counts = facets.facet_counts(dataset)
        assert sum(counts.values()) == len(dataset.hb_sites())
