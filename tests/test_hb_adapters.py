"""Unit tests for bidder adapters (request construction)."""

from repro.hb.adapters import build_bid_request, build_notification_request
from repro.models import AdSlot, AdSlotSize


class TestBuildBidRequest:
    def test_request_targets_partner_endpoint(self, registry):
        appnexus = registry.get("AppNexus")
        slots = [AdSlot(code="slot-1", primary_size=AdSlotSize(300, 250))]
        spec = build_bid_request(appnexus, slots, page_url="https://pub.example/",
                                 auction_id="a-1", timeout_ms=3000)
        assert spec.method == "POST"
        assert "adnxs.com" in spec.url
        assert spec.params["bidder"] == "appnexus"
        assert spec.params["auction_id"] == "a-1"
        assert spec.params["tmax"] == "3000"

    def test_request_serialises_every_slot(self, registry):
        criteo = registry.get("Criteo")
        slots = [
            AdSlot(code="slot-a", primary_size=AdSlotSize(300, 250)),
            AdSlot(code="slot-b", primary_size=AdSlotSize(728, 90)),
        ]
        spec = build_bid_request(criteo, slots, page_url="https://pub.example/",
                                 auction_id="a-2", timeout_ms=1000)
        assert spec.params["slot_count"] == "2"
        assert "slot-a" in spec.params["ad_units"]
        assert "slot-b" in spec.params["ad_units"]
        assert "728x90" in spec.params["sizes"]

    def test_bid_request_carries_no_hb_targeting_keys(self, registry):
        rubicon = registry.get("Rubicon")
        slots = [AdSlot(code="slot-1", primary_size=AdSlotSize(300, 250))]
        spec = build_bid_request(rubicon, slots, page_url="https://pub.example/",
                                 auction_id="a-3", timeout_ms=500)
        assert not any(key.startswith("hb_") for key in spec.params)


class TestNotificationRequest:
    def test_notification_names_winner_and_price(self, registry):
        appnexus = registry.get("AppNexus")
        spec = build_notification_request(appnexus, slot_code="slot-1", cpm=0.42, auction_id="a-9")
        assert spec.method == "GET"
        assert spec.url.endswith("/hb/win")
        assert spec.params["hb_bidder"] == "appnexus"
        assert spec.params["hb_cpm"] == "0.42000"
        assert spec.params["event"] == "win"
