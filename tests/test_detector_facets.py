"""Unit tests for facet classification from observations."""

import pytest

from repro.detector.dom_inspector import DomEventInspector
from repro.detector.facets import classify_facet
from repro.detector.partner_list import build_known_partner_list
from repro.detector.webrequest_inspector import WebRequestInspector
from repro.models import DomEvent, HBFacet, RequestDirection, WebRequest


def outgoing(url, t, params=None):
    return WebRequest(url=url, method="POST", direction=RequestDirection.OUTGOING,
                      timestamp_ms=t, params=params or {})


def incoming(url, t, params=None):
    return WebRequest(url=url, method="RESPONSE", direction=RequestDirection.INCOMING,
                      timestamp_ms=t, params=params or {})


def dom_event(name, t=0.0, **payload):
    return DomEvent(name=name, timestamp_ms=t, payload=payload)


@pytest.fixture(scope="module")
def inspectors(registry):
    return DomEventInspector(), WebRequestInspector(build_known_partner_list(registry))


def classify(inspectors, events, requests):
    dom_inspector, web_inspector = inspectors
    return classify_facet(dom_inspector.inspect(events), web_inspector.inspect(requests))


class TestClassifyFacet:
    def test_no_evidence_returns_none(self, inspectors):
        assert classify(inspectors, [], [outgoing("https://cdn.example/app.js", 1.0)]) is None

    def test_client_side_push_to_own_ad_server(self, inspectors):
        events = [dom_event("bidResponse", 200.0, bidder="appnexus", adUnitCode="s", cpm=0.2)]
        requests = [
            outgoing("https://ib.adnxs.com/hb/bid", 100.0),
            incoming("https://ib.adnxs.com/hb/bid", 300.0, {"hb_cpm_s": "0.2"}),
            outgoing("https://ads.pub.example/gampad/ads", 400.0, {"hb_bidder_s": "appnexus"}),
            incoming("https://ads.pub.example/gampad/ads", 500.0),
        ]
        assert classify(inspectors, events, requests) is HBFacet.CLIENT_SIDE

    def test_hybrid_push_to_known_partner_ad_server(self, inspectors):
        events = [dom_event("bidResponse", 200.0, bidder="criteo", adUnitCode="s", cpm=0.3)]
        requests = [
            outgoing("https://criteo.com/hb/bid", 100.0),
            incoming("https://criteo.com/hb/bid", 280.0, {"hb_cpm_s": "0.3"}),
            outgoing("https://doubleclick.net/gampad/ads", 400.0, {"hb_pb_s": "0.30"}),
            incoming("https://doubleclick.net/gampad/render", 600.0,
                     {"hb_bidder": "rubicon", "slot": "s"}),
        ]
        assert classify(inspectors, events, requests) is HBFacet.HYBRID

    def test_server_side_single_partner_with_hb_responses(self, inspectors):
        requests = [
            outgoing("https://doubleclick.net/gampad/ads", 100.0, {"correlator": "1"}),
            incoming("https://doubleclick.net/gampad/ads", 400.0,
                     {"hb_bidder": "appnexus", "hb_pb": "0.10", "slot": "s"}),
        ]
        assert classify(inspectors, [], requests) is HBFacet.SERVER_SIDE

    def test_wrapper_events_without_known_partners_default_to_client_side(self, inspectors):
        events = [dom_event("auctionInit", 10.0, auctionId="a"),
                  dom_event("auctionEnd", 500.0, auctionId="a")]
        requests = [outgoing("https://unknown-bidder.example/bid", 50.0)]
        assert classify(inspectors, events, requests) is HBFacet.CLIENT_SIDE

    def test_waterfall_notifications_are_not_hb(self, inspectors):
        requests = [
            outgoing("https://rubiconproject.com/rtb/win", 100.0,
                     {"price": "0.5", "imp_id": "slot"}),
        ]
        assert classify(inspectors, [], requests) is None
