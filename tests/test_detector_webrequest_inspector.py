"""Unit tests for the web-request inspector."""

import pytest

from repro.detector.partner_list import build_known_partner_list
from repro.detector.webrequest_inspector import WebRequestInspector
from repro.models import RequestDirection, WebRequest


def outgoing(url, t, params=None):
    return WebRequest(url=url, method="POST", direction=RequestDirection.OUTGOING,
                      timestamp_ms=t, params=params or {})


def incoming(url, t, params=None):
    return WebRequest(url=url, method="RESPONSE", direction=RequestDirection.INCOMING,
                      timestamp_ms=t, params=params or {})


@pytest.fixture(scope="module")
def inspector(registry):
    return WebRequestInspector(build_known_partner_list(registry))


class TestWebRequestInspector:
    def test_pairs_requests_and_responses_per_partner(self, inspector):
        observations = inspector.inspect([
            outgoing("https://ib.adnxs.com/hb/bid", 100.0, {"bidder": "appnexus"}),
            incoming("https://ib.adnxs.com/hb/bid", 420.0, {"bidder": "appnexus", "hb_cpm_s1": "0.3"}),
        ])
        assert observations.partners_contacted == ("AppNexus",)
        assert observations.partner_latencies_ms["AppNexus"] == pytest.approx(320.0)
        assert observations.first_partner_request_at_ms == 100.0
        exchange = observations.exchanges[0]
        assert exchange.carries_hb_response

    def test_ad_server_push_to_unknown_host_is_client_side_marker(self, inspector):
        observations = inspector.inspect([
            outgoing("https://ads.pub.example/gampad/ads", 600.0, {"hb_bidder_s1": "appnexus"}),
            incoming("https://ads.pub.example/gampad/ads", 700.0, {"status": "filled"}),
        ])
        assert observations.ad_server_push is not None
        assert not observations.ad_server_is_known_partner
        assert observations.ad_server_partner is None
        assert observations.ad_server_response_at_ms == 700.0

    def test_ad_server_push_to_known_partner_is_attributed(self, inspector):
        observations = inspector.inspect([
            outgoing("https://doubleclick.net/gampad/ads", 500.0, {"hb_pb_s1": "0.20"}),
            incoming("https://doubleclick.net/gampad/render", 650.0,
                     {"hb_bidder": "rubicon", "slot": "s1"}),
        ])
        assert observations.ad_server_is_known_partner
        assert observations.ad_server_partner == "DFP"
        assert observations.hb_responses
        partner, timestamp, params = observations.hb_responses[0]
        assert partner == "DFP"
        assert params.global_values["hb_bidder"] == "rubicon"

    def test_win_notifications_are_not_mistaken_for_the_push(self, inspector):
        observations = inspector.inspect([
            outgoing("https://ib.adnxs.com/hb/win", 900.0, {"hb_bidder": "appnexus", "event": "win"}),
        ])
        assert observations.ad_server_push is None

    def test_plain_third_party_traffic_is_ignored(self, inspector):
        observations = inspector.inspect([
            outgoing("https://www.google-analytics.com/analytics.js", 10.0),
            incoming("https://cdn.example/site.css", 20.0),
        ])
        assert not observations.exchanges
        assert not observations.any_hb_traffic

    def test_response_without_matching_request_still_creates_exchange(self, inspector):
        observations = inspector.inspect([
            incoming("https://rubiconproject.com/hb/bid", 300.0, {"hb_cpm_s2": "0.2"}),
        ])
        exchange = observations.exchanges[0]
        assert exchange.partner == "Rubicon"
        assert exchange.request_at_ms is None
        assert exchange.latency_ms is None

    def test_first_exchange_latency_wins_for_partner(self, inspector):
        observations = inspector.inspect([
            outgoing("https://criteo.com/hb/bid", 100.0),
            incoming("https://criteo.com/hb/bid", 250.0),
            outgoing("https://criteo.com/hb/bid", 400.0),
            incoming("https://criteo.com/hb/bid", 900.0),
        ])
        assert observations.partner_latencies_ms["Criteo"] == pytest.approx(150.0)
