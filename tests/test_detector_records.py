"""Unit tests for the detection output records."""

import pytest

from repro.detector.records import ObservedAuction, ObservedBid, SiteDetection, count_bids
from repro.errors import DetectionError
from repro.models import HBFacet


def make_bid(**overrides):
    defaults = dict(partner="AppNexus", bidder_code="appnexus", slot_code="s1",
                    cpm=0.3, size="300x250", latency_ms=220.0)
    defaults.update(overrides)
    return ObservedBid(**defaults)


def make_auction(bids=None, **overrides):
    defaults = dict(slot_code="s1", size="300x250",
                    bids=tuple(bids if bids is not None else [make_bid()]),
                    start_ms=100.0, end_ms=700.0, facet=HBFacet.CLIENT_SIDE)
    defaults.update(overrides)
    return ObservedAuction(**defaults)


class TestObservedBid:
    def test_rejects_negative_cpm_or_latency(self):
        with pytest.raises(DetectionError):
            make_bid(cpm=-1.0)
        with pytest.raises(DetectionError):
            make_bid(latency_ms=-5.0)

    def test_rejects_unknown_source(self):
        with pytest.raises(DetectionError):
            make_bid(source="guess")


class TestObservedAuction:
    def test_latency_and_counts(self):
        auction = make_auction([make_bid(), make_bid(partner="Criteo", bidder_code="criteo", late=True)])
        assert auction.latency_ms == pytest.approx(600.0)
        assert auction.n_bids == 2
        assert len(auction.late_bids) == 1
        assert auction.late_bid_fraction == pytest.approx(0.5)

    def test_late_fraction_none_without_bids(self):
        assert make_auction([]).late_bid_fraction is None

    def test_winning_bid_lookup(self):
        auction = make_auction([make_bid(won=True), make_bid(partner="Criteo", bidder_code="criteo")])
        assert auction.winning_bid.partner == "AppNexus"
        assert make_auction([make_bid()]).winning_bid is None

    def test_rejects_end_before_start(self):
        with pytest.raises(DetectionError):
            make_auction(end_ms=50.0)


class TestSiteDetection:
    def test_detection_aggregates_auctions(self):
        detection = SiteDetection(
            domain="pub.example", rank=12, hb_detected=True, facet=HBFacet.HYBRID,
            partners=("DFP", "AppNexus"),
            auctions=(make_auction(), make_auction(bids=[make_bid(late=True)])),
            total_latency_ms=640.0,
        )
        assert detection.n_partners == 2
        assert detection.n_auctions == 2
        assert detection.n_bids == 2
        assert detection.n_late_bids == 1

    def test_hb_detected_requires_facet(self):
        with pytest.raises(DetectionError):
            SiteDetection(domain="pub.example", rank=1, hb_detected=True)

    def test_rank_must_be_positive(self):
        with pytest.raises(DetectionError):
            SiteDetection(domain="pub.example", rank=0, hb_detected=False)

    def test_negative_latency_rejected(self):
        with pytest.raises(DetectionError):
            SiteDetection(domain="pub.example", rank=1, hb_detected=True,
                          facet=HBFacet.CLIENT_SIDE, total_latency_ms=-1.0)

    def test_count_bids_helper(self):
        detection = SiteDetection(
            domain="pub.example", rank=3, hb_detected=True, facet=HBFacet.CLIENT_SIDE,
            auctions=(make_auction(),),
        )
        assert count_bids([detection, detection]) == 2
