"""Behavioural tests for the combined HBDetector against simulation ground truth."""

import pytest

from repro.detector.detector import HBDetector
from repro.detector.partner_list import build_known_partner_list
from repro.models import HBFacet


@pytest.fixture(scope="module")
def detections(engine, detector, small_population):
    """Detections plus ground truth for a slice of the shared population."""
    pairs = []
    for publisher in list(small_population)[:250]:
        result = engine.load(publisher)
        pairs.append((publisher, result, detector.inspect_page(result)))
    return pairs


class TestDetectionAccuracy:
    def test_no_false_positives(self, detections):
        false_positives = [p.domain for p, _, d in detections if d.hb_detected and not p.uses_hb]
        assert false_positives == []

    def test_high_recall(self, detections):
        hb = [(p, d) for p, _, d in detections if p.uses_hb]
        recall = sum(1 for _, d in hb if d.hb_detected) / len(hb)
        assert recall >= 0.9

    def test_facet_classification_mostly_correct(self, detections):
        classified = [(p, d) for p, _, d in detections if p.uses_hb and d.hb_detected]
        accuracy = sum(1 for p, d in classified if d.facet == p.facet) / len(classified)
        assert accuracy >= 0.85

    def test_detected_partners_are_a_subset_of_configured_plus_internal(self, detections, registry):
        known_names = set(registry.names)
        for publisher, _, detection in detections:
            if not detection.hb_detected:
                continue
            assert set(detection.partners) <= known_names
            # Visible partners must include the configured aggregator/partners
            # that the page actually contacted.
            if publisher.facet in (HBFacet.CLIENT_SIDE, HBFacet.HYBRID):
                assert set(publisher.partner_names) & set(detection.partners)

    def test_latency_close_to_ground_truth(self, detections):
        errors = []
        for publisher, result, detection in detections:
            truth = result.hb_ground_truth
            if truth is None or detection.total_latency_ms is None:
                continue
            errors.append(abs(detection.total_latency_ms - truth.total_latency_ms)
                          / max(truth.total_latency_ms, 1.0))
        assert errors, "expected at least some latency comparisons"
        assert sorted(errors)[len(errors) // 2] < 0.25  # median relative error < 25%

    def test_auction_counts_match_auctioned_slots(self, detections):
        checked = 0
        for publisher, _, detection in detections:
            if not (publisher.uses_hb and detection.hb_detected):
                continue
            assert detection.n_auctions <= publisher.n_auctioned_slots + 1
            if publisher.facet is not HBFacet.SERVER_SIDE:
                assert detection.n_auctions >= publisher.n_display_slots
            checked += 1
        assert checked > 0

    def test_detected_bids_never_exceed_ground_truth(self, detections):
        for publisher, result, detection in detections:
            truth = result.hb_ground_truth
            if truth is None or not detection.hb_detected:
                continue
            assert detection.n_bids <= len(truth.received_bids)

    def test_detection_channels_reported(self, detections):
        for publisher, _, detection in detections:
            if detection.hb_detected:
                assert detection.detection_channels
                assert "web-requests" in detection.detection_channels


class TestDetectorConfiguration:
    def test_lower_coverage_reduces_recall_but_not_precision(self, engine, small_population, registry):
        narrow = HBDetector(build_known_partner_list(registry, coverage=0.2, seed=1))
        full = HBDetector(build_known_partner_list(registry))
        narrow_hits = full_hits = false_positives = 0
        publishers = list(small_population)[:150]
        for publisher in publishers:
            result = engine.load(publisher)
            narrow_detection = narrow.inspect_page(result)
            full_detection = full.inspect_page(result)
            if narrow_detection.hb_detected and not publisher.uses_hb:
                false_positives += 1
            narrow_hits += int(narrow_detection.hb_detected and publisher.uses_hb)
            full_hits += int(full_detection.hb_detected and publisher.uses_hb)
        assert false_positives == 0
        assert narrow_hits <= full_hits

    def test_inspect_page_sets_crawl_day(self, engine, detector, hb_publisher):
        result = engine.load(hb_publisher)
        detection = detector.inspect_page(result, crawl_day=7)
        assert detection.crawl_day == 7
        assert detection.page_load_ms == pytest.approx(result.page_load_ms)
