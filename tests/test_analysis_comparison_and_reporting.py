"""Unit tests for the HB-vs-waterfall comparison and the text reporting."""

import pytest

from repro.analysis import comparison
from repro.analysis.reporting import (
    format_ecdf,
    format_share_rows,
    format_summary,
    format_table,
    format_whisker_rows,
)
from repro.analysis.stats import ecdf, whisker_stats
from repro.errors import EmptyDatasetError
from repro.analysis.dataset import CrawlDataset


class TestComparison:
    def test_hb_latency_exceeds_waterfall(self, experiment_artifacts):
        result = comparison.hb_vs_waterfall_latency(
            experiment_artifacts.dataset,
            list(experiment_artifacts.population),
            experiment_artifacts.environment,
            seed=3,
        )
        assert result.hb.median > result.waterfall.median
        assert result.median_ratio > 1.0

    def test_real_user_waterfall_prices_exceed_hb_baseline(self, experiment_artifacts):
        result = comparison.hb_vs_waterfall_prices(
            experiment_artifacts.dataset,
            list(experiment_artifacts.population),
            experiment_artifacts.environment,
            seed=3,
        )
        assert result.waterfall_real_user.median > result.hb.median
        assert result.real_user_median_ratio > 1.0

    def test_empty_dataset_raises(self, experiment_artifacts):
        with pytest.raises(EmptyDatasetError):
            comparison.hb_vs_waterfall_latency(
                CrawlDataset(), list(experiment_artifacts.population),
                experiment_artifacts.environment,
            )


class TestReporting:
    def test_format_table_aligns_columns(self):
        text = format_table(["name", "value"], [("alpha", 1.0), ("b", 123456.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert lines[3].startswith("alpha")
        assert "123,456" in text

    def test_format_summary_renders_key_values(self):
        text = format_summary({"metric": 3, "rate": "12.5%"})
        assert "metric" in text and "12.5%" in text

    def test_format_whisker_rows_contains_percentiles(self):
        stats = whisker_stats([1.0, 2.0, 3.0, 4.0])
        text = format_whisker_rows([("group-a", stats)], unit="ms")
        assert "median (ms)" in text
        assert "group-a" in text

    def test_format_ecdf_lists_requested_quantiles(self):
        text = format_ecdf(ecdf([1, 2, 3, 4, 5]), quantiles=(0.5, 0.9), unit="ms")
        assert "p50" in text and "p90" in text

    def test_format_share_rows_renders_percentages(self):
        text = format_share_rows([("DFP", 0.801)], label_header="partner")
        assert "80.10%" in text


class TestCellFormatting:
    """Direct tests for the float formatting edge cases in table cells."""

    def test_format_table_column_widths_track_longest_cell(self):
        text = format_table(["a", "bb"], [("x", 1), ("longer-label", 22)])
        lines = text.splitlines()
        # Every line starts its second column at the same offset (widest cell + 2).
        offset = len("longer-label") + 2
        assert lines[0][offset:].startswith("bb")
        assert lines[2][offset:].startswith("1")
        assert lines[3][offset:].startswith("22")

    def test_negative_zero_renders_without_sign(self):
        text = format_table(["v"], [(-0.0,)])
        assert text.splitlines()[-1] == "0"

    def test_tiny_negative_does_not_round_to_signed_zero(self):
        text = format_table(["v"], [(-1e-9,)])
        assert text.splitlines()[-1] == "0.0000"

    def test_nan_and_inf_render_explicitly(self):
        text = format_table(["a", "b", "c"], [(float("nan"), float("inf"), float("-inf"))])
        assert text.splitlines()[-1].split() == ["nan", "inf", "-inf"]

    def test_magnitude_dependent_precision(self):
        rows = [(1234.5,), (12.345,), (0.1234,)]
        rendered = [format_table(["v"], [row]).splitlines()[-1] for row in rows]
        assert rendered == ["1,234", "12.35", "0.1234"]

    def test_format_ecdf_default_quantiles(self):
        text = format_ecdf(ecdf([1.0, 2.0, 3.0, 4.0, 5.0]), unit="ms", title="E")
        lines = text.splitlines()
        assert lines[0] == "E"
        assert [line.split()[0] for line in lines[3:]] == ["p10", "p25", "p50", "p75", "p90", "p95"]
        assert "value ms" in lines[1]

    def test_format_ecdf_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            format_ecdf(ecdf([1.0, 2.0]), quantiles=(1.5,))
