"""Tests for the per-figure / per-table experiment entry points."""

import pytest

from repro.experiments import figures, tables
from repro.experiments.runner import ExperimentRunner
from repro.models import HBFacet


class TestTables:
    def test_table1_summary_text_and_numbers(self, experiment_artifacts):
        result = tables.table1_summary(experiment_artifacts)
        assert "Table 1" in result["text"]
        assert result["summary"]["websites_with_hb"] <= result["summary"]["websites_crawled"]

    def test_adoption_by_rank_rows(self, experiment_artifacts):
        result = tables.adoption_by_rank(experiment_artifacts)
        assert 0.05 < result["overall"] < 0.30
        assert len(result["tiers"]) == 3

    def test_detector_accuracy_reports_perfect_precision(self, experiment_artifacts):
        result = tables.detector_accuracy(experiment_artifacts)
        metrics = result["metrics"]
        assert metrics["precision"] == pytest.approx(1.0)
        assert metrics["recall"] > 0.9
        assert metrics["facet_accuracy"] > 0.8


class TestFigures:
    def test_every_figure_entry_point_produces_text(self, experiment_artifacts):
        entry_points = [
            figures.figure08_top_partners,
            figures.figure09_partners_per_site,
            figures.figure10_partner_combinations,
            figures.figure11_partners_per_facet,
            figures.figure12_latency_ecdf,
            figures.figure13_latency_vs_rank,
            figures.figure14_partner_latency,
            figures.figure15_latency_vs_partner_count,
            figures.figure16_latency_vs_popularity,
            figures.figure17_late_bids_ecdf,
            figures.figure18_late_bids_per_partner,
            figures.figure19_adslots_ecdf,
            figures.figure20_latency_vs_adslots,
            figures.figure21_adslot_sizes,
            figures.figure22_price_cdf,
            figures.figure23_price_per_size,
            figures.figure24_price_vs_popularity,
            figures.facet_breakdown_result,
        ]
        for entry_point in entry_points:
            result = entry_point(experiment_artifacts)
            assert isinstance(result, dict)
            assert result["text"].strip(), entry_point.__name__

    def test_figure04_uses_historical_static_analysis(self, experiment_artifacts):
        historical = ExperimentRunner(experiment_artifacts.config).run_historical()
        result = figures.figure04_adoption_history(historical)
        years = [int(row["year"]) for row in result["rows"]]
        assert years == sorted(years)
        assert result["rows"][0]["adoption_rate"] <= result["rows"][-1]["adoption_rate"] + 0.05

    def test_figure08_top_partner_is_dfp(self, experiment_artifacts):
        result = figures.figure08_top_partners(experiment_artifacts)
        assert result["rows"][0].partner == "DFP"
        assert result["rows"][0].share_of_hb_sites > 0.6

    def test_figure09_shares_follow_paper_shape(self, experiment_artifacts):
        result = figures.figure09_partners_per_site(experiment_artifacts)
        assert result["share_one_partner"] > 0.35
        assert result["share_five_or_more"] < 0.5

    def test_figure12_median_close_to_paper(self, experiment_artifacts):
        result = figures.figure12_latency_ecdf(experiment_artifacts)
        assert 200.0 < result["median_ms"] < 1_500.0
        assert 0.0 <= result["share_above_3s"] <= 0.35

    def test_figure15_latency_increases_with_partners(self, experiment_artifacts):
        rows = figures.figure15_latency_vs_partner_count(experiment_artifacts)["rows"]
        single = next(stats.median for count, stats, _ in rows if count == 1)
        several = [stats.median for count, stats, _ in rows if count >= 2]
        assert several and max(several) > single

    def test_facet_breakdown_server_side_leads(self, experiment_artifacts):
        breakdown = figures.facet_breakdown_result(experiment_artifacts)["breakdown"]
        assert breakdown[HBFacet.SERVER_SIDE] == max(breakdown.values())

    def test_waterfall_latency_comparison_ratio(self, experiment_artifacts):
        result = figures.waterfall_latency_comparison(experiment_artifacts)
        assert result["comparison"].median_ratio > 1.0

    def test_waterfall_price_comparison_real_users_pay_more(self, experiment_artifacts):
        result = figures.waterfall_price_comparison(experiment_artifacts)
        assert result["comparison"].real_user_median_ratio > 1.0
