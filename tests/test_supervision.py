"""Supervised execution: shard retries, timeouts, quarantine, fault injection.

The acceptance criterion under test: a crawl running under any injected fault
the supervision layer can absorb (transient raises, hangs, dead process
workers, flaky sink writes) completes unattended and produces *byte-identical*
sink files versus a fault-free run — supervision changes availability, never
output.  Shards that exhaust their retry budget are quarantined, recorded in
the checkpoint, reported on the result, and re-crawled by a resume whose final
bytes are again identical to a never-faulted run.
"""

import dataclasses
import json
import pickle
from dataclasses import replace

import pytest

import repro.daemon as daemon_mod

from repro.crawler.checkpoint import CrawlCheckpoint, CrawlCheckpointer, PhaseProgress
from repro.crawler.colstore import storage_for
from repro.crawler.crawler import CrawlConfig, CrawlResult, ShardFailure
from repro.crawler.engine import CrawlEngine, SupervisionPolicy
from repro.errors import ConfigurationError, StorageError
from repro.experiments.config import ExperimentConfig
from repro.testing import (
    Fault,
    FaultAction,
    FaultInjectingSink,
    FaultPlan,
    InjectedFault,
    SimulatedCrash,
    parse_fault_plan,
)


@pytest.fixture(scope="module")
def sites(small_population):
    return list(small_population)[:24]


def engine_run(
    environment,
    detector,
    config,
    sites,
    tmp_path,
    name,
    *,
    plan=None,
    store_format="jsonl",
    flush_every=3,
    checkpointed=False,
):
    """One engine-level crawl; returns ``(result, storage, checkpoint_path)``."""
    suffix = "hbc" if store_format == "columnar" else "jsonl"
    storage = storage_for(tmp_path / f"{name}.{suffix}", format=store_format)
    checkpoint = None
    checkpoint_path = tmp_path / f"{name}.ckpt"
    if checkpointed:
        fingerprint = {"seed": config.seed, "sites": [p.domain for p in sites]}
        checkpoint = CrawlCheckpointer.fresh(checkpoint_path, fingerprint)
    with CrawlEngine(environment, detector, config, fault_plan=plan) as engine:
        with storage.open_sink(flush_every=flush_every) as sink:
            result = engine.crawl(sites, crawl_day=0, sink=sink, checkpoint=checkpoint)
    return result, storage, checkpoint_path


# ---------------------------------------------------------------------------
# The fault-spec grammar


class TestFaultSpecParsing:
    def test_full_spec_round_trips(self):
        spec = "crash@p=0.2x4,hang@shard=3~5,raise@count=10x2,sink@p=0.1x5"
        plan = parse_fault_plan("seed=7," + spec)
        assert plan.seed == 7
        assert plan.describe() == spec

    def test_defaults(self):
        plan = parse_fault_plan("raise@shard=2")
        (fault,) = plan.faults
        assert fault.times == 1
        assert fault.delay is None
        assert plan.seed == 0

    def test_hang_gets_a_default_delay(self):
        plan = parse_fault_plan("hang@shard=0")
        action = plan.next_action(0)
        assert action.kind == "hang"
        assert action.delay > 0

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "seed=7",                  # seed but no faults
            "seed=x,raise@shard=0",    # bad seed
            "explode@shard=0",         # unknown kind
            "raise@shard=1.5",         # shard takes an integer
            "raise@p=0",               # p out of (0, 1]
            "raise@p=1.5",
            "raise@shard=0x0",         # times must be >= 1
            "sink@shard=0",            # sink faults cannot key on shard
            "raise@when=now",          # unknown key
            "raise shard=0",           # malformed token
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ConfigurationError):
            parse_fault_plan(spec)

    def test_fault_needs_exactly_one_trigger(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            Fault(kind="raise", shard=1, count=2)
        with pytest.raises(ConfigurationError, match="exactly one"):
            Fault(kind="raise")

    def test_experiment_config_validates_fault_spec(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(total_sites=400, fault_spec="bogus@nope=1")
        config = ExperimentConfig(total_sites=400, fault_spec="raise@shard=0")
        assert config.fault_spec == "raise@shard=0"


class TestFaultPlan:
    def test_shard_trigger_fires_once_then_exhausts(self):
        plan = parse_fault_plan("raise@shard=2")
        assert plan.next_action(0) is None
        action = plan.next_action(2)
        assert action.kind == "raise" and action.shard == 2
        assert plan.next_action(2) is None  # exhausted

    def test_count_trigger_fires_from_serial_onward(self):
        plan = parse_fault_plan("raise@count=2x2")
        assert plan.next_action(9) is None   # submission 0
        assert plan.next_action(9) is None   # submission 1
        assert plan.next_action(9) is not None  # submission 2
        assert plan.next_action(9) is not None  # x2 cap
        assert plan.next_action(9) is None

    def test_probabilistic_trigger_is_seed_deterministic(self):
        draws = [
            [parse_fault_plan(f"seed={seed},raise@p=0.5x100").next_action(0) is not None
             for _ in range(20)]
            for seed in (7, 7, 8)
        ]
        # Same-seed is too weak a check as written (each call mutates its
        # own plan); rebuild instead and compare full sequences.
        def sequence(seed):
            plan = parse_fault_plan(f"seed={seed},raise@p=0.5x100")
            return [plan.next_action(0) is not None for _ in range(20)]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)
        assert draws  # sanity: the comprehension above ran

    def test_sink_writes_use_their_own_counter(self):
        plan = parse_fault_plan("sink@count=1x1,raise@count=0x1")
        assert plan.next_action(0) is not None  # submission 0 fires the raise
        assert plan.sink_exception() is None    # write 0 < count=1
        exc = plan.sink_exception()             # write 1 fires
        assert isinstance(exc, StorageError)
        assert plan.sink_exception() is None    # exhausted

    def test_actions_are_picklable(self):
        action = parse_fault_plan("hang@shard=3~0.5").next_action(3)
        clone = pickle.loads(pickle.dumps(action))
        assert clone == action

    def test_crash_degrades_to_exception_outside_pool_workers(self):
        action = FaultAction(kind="crash", shard=1)
        with pytest.raises(SimulatedCrash):
            action()  # the test process has no multiprocessing parent

    def test_raise_action(self):
        with pytest.raises(InjectedFault):
            FaultAction(kind="raise", shard=0)()

    def test_wrap_sink_passthrough_without_sink_faults(self):
        plan = parse_fault_plan("raise@shard=0")
        sentinel = object()
        assert plan.wrap_sink(sentinel) is sentinel
        assert plan.wrap_sink(None) is None

    def test_injecting_sink_raises_before_delegating(self):
        writes = []

        class Inner:
            offset = 0

            def write(self, record):
                writes.append(record)

            def flush(self):
                pass

        plan = parse_fault_plan("sink@count=0x1")
        sink = FaultInjectingSink(Inner(), plan)
        with pytest.raises(StorageError):
            sink.write("first")
        assert writes == []  # the inner sink never saw the failed write
        sink.write("first")
        assert writes == ["first"]


# ---------------------------------------------------------------------------
# Supervision policy mechanics


class TestSupervisionPolicy:
    def test_from_config(self):
        config = CrawlConfig(
            shard_retries=3, shard_timeout=5.0, retry_backoff=0.2, quarantine=False
        )
        policy = SupervisionPolicy.from_config(config)
        assert policy.retries == 3
        assert policy.timeout == 5.0
        assert policy.backoff == 0.2
        assert policy.quarantine is False
        assert policy.seed == config.seed

    def test_delay_is_deterministic_exponential_with_jitter(self):
        policy = SupervisionPolicy(retries=3, backoff=0.1, seed=5)
        first = policy.delay("shard-2", 1)
        assert first == policy.delay("shard-2", 1)
        assert 0.05 <= first < 0.1  # backoff * 2**0 * jitter in [0.5, 1.0)
        second = policy.delay("shard-2", 2)
        assert 0.1 <= second < 0.2  # doubled
        assert policy.delay("shard-3", 1) != first  # keyed jitter

    def test_zero_backoff_never_sleeps(self):
        policy = SupervisionPolicy(retries=3, backoff=0.0, seed=5)
        assert policy.delay("k", 1) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shard_retries": -1},
            {"shard_timeout": 0.0},
            {"shard_timeout": -1.0},
            {"retry_backoff": -0.1},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            CrawlConfig(**kwargs)


class TestShardFailureRecord:
    def test_round_trips_through_dict(self):
        failure = ShardFailure(
            shard_index=3, error="boom", attempts=2, domains=("a.com", "b.com")
        )
        assert ShardFailure.from_dict(failure.to_dict()) == failure

    def test_merge_concatenates_quarantine_and_sums_counters(self):
        left = CrawlResult(retries=1, pool_rebuilds=1,
                           quarantined_shards=(ShardFailure(0, "x", 2),))
        right = CrawlResult(retries=2, sink_retries=3,
                            quarantined_shards=(ShardFailure(4, "y", 3),))
        merged = left.merge(right)
        assert merged.retries == 3
        assert merged.pool_rebuilds == 1
        assert merged.sink_retries == 3
        assert [f.shard_index for f in merged.quarantined_shards] == [0, 4]
        assert merged.degraded

    def test_fresh_result_is_not_degraded(self):
        assert not CrawlResult().degraded


# ---------------------------------------------------------------------------
# Retry supervision: faults absorbed, bytes identical


class TestRetrySupervision:
    def baseline(self, environment, detector, sites, tmp_path, store_format="jsonl"):
        config = CrawlConfig(seed=2019)
        return engine_run(
            environment, detector, config, sites, tmp_path, "baseline",
            store_format=store_format,
        )

    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 2)])
    def test_transient_raises_are_retried_byte_identically(
        self, environment, detector, sites, tmp_path, backend, workers
    ):
        base_result, base_storage, _ = self.baseline(environment, detector, sites, tmp_path)
        # shard_retries exceeds the plan's total firing cap (x4), so no
        # single shard can exhaust its budget even if every firing lands on it.
        config = CrawlConfig(
            seed=2019, backend=backend, workers=workers,
            shard_oversubscribe=2, shard_retries=4, retry_backoff=0.0,
        )
        plan = parse_fault_plan("seed=3,raise@p=0.4x4")
        result, storage, _ = engine_run(
            environment, detector, config, sites, tmp_path, f"faulty-{backend}",
            plan=plan,
        )
        assert plan.total_fired > 0
        assert result.retries == plan.total_fired
        assert not result.degraded
        assert storage.path.read_bytes() == base_storage.path.read_bytes()
        assert [d.domain for d in result.detections] == [
            d.domain for d in base_result.detections
        ]

    def test_hung_shard_times_out_and_retries(
        self, environment, detector, sites, tmp_path
    ):
        _, base_storage, _ = self.baseline(environment, detector, sites, tmp_path)
        config = CrawlConfig(
            seed=2019, backend="thread", workers=2, shard_oversubscribe=2,
            shard_retries=2, shard_timeout=0.3, retry_backoff=0.0,
        )
        plan = parse_fault_plan("hang@shard=2~1.5")
        result, storage, _ = engine_run(
            environment, detector, config, sites, tmp_path, "hung", plan=plan
        )
        assert result.retries >= 1
        assert not result.degraded
        assert storage.path.read_bytes() == base_storage.path.read_bytes()

    def test_transient_sink_failures_are_retried(
        self, environment, detector, sites, tmp_path
    ):
        _, base_storage, _ = self.baseline(environment, detector, sites, tmp_path)
        config = CrawlConfig(
            seed=2019, backend="thread", workers=2, shard_oversubscribe=2,
            shard_retries=2, retry_backoff=0.0,
        )
        plan = parse_fault_plan("seed=5,sink@p=0.2x6")
        result, storage, _ = engine_run(
            environment, detector, config, sites, tmp_path, "flaky-sink", plan=plan
        )
        assert result.sink_retries == 6
        assert not result.degraded
        assert storage.path.read_bytes() == base_storage.path.read_bytes()

    def test_serial_streaming_retry_replays_without_duplicates(
        self, environment, detector, sites, tmp_path
    ):
        """A mid-shard failure on the inline backend must not re-emit the
        detections the failed attempt already delivered (the skip-k replay)."""
        _, base_storage, _ = self.baseline(environment, detector, sites, tmp_path)
        config = CrawlConfig(seed=2019, shard_retries=2, retry_backoff=0.0)
        # Write 10 fails 4 times: the write-level retry budget (2) exhausts,
        # the shard attempt fails and is retried, the replay skips the 9
        # delivered detections, and the final firing is absorbed in-line.
        plan = parse_fault_plan("sink@count=10x4")
        result, storage, _ = engine_run(
            environment, detector, config, sites, tmp_path, "replay", plan=plan,
            flush_every=1,
        )
        assert result.retries == 1
        assert not result.degraded
        assert storage.path.read_bytes() == base_storage.path.read_bytes()

    def test_fault_log_records_retry_events(
        self, environment, detector, sites, tmp_path
    ):
        log = tmp_path / "faults.jsonl"
        config = CrawlConfig(
            seed=2019, shard_retries=2, retry_backoff=0.0, fault_log=str(log)
        )
        plan = parse_fault_plan("raise@count=0x2")
        result, _, _ = engine_run(
            environment, detector, config, sites, tmp_path, "logged", plan=plan
        )
        assert result.retries == 2
        events = [json.loads(line) for line in log.read_text().splitlines()]
        assert [e["event"] for e in events] == ["retry", "retry"]
        assert all(e["shard"] == 0 for e in events)
        assert events[0]["attempt"] == 1 and events[1]["attempt"] == 2

    def test_columnar_store_is_also_byte_identical_under_faults(
        self, environment, detector, sites, tmp_path
    ):
        _, base_storage, _ = self.baseline(
            environment, detector, sites, tmp_path, store_format="columnar"
        )
        config = CrawlConfig(
            seed=2019, backend="thread", workers=2, shard_oversubscribe=2,
            shard_retries=2, retry_backoff=0.0,
        )
        plan = parse_fault_plan("seed=11,raise@p=0.5x3,sink@p=0.2x3")
        result, storage, _ = engine_run(
            environment, detector, config, sites, tmp_path, "col-faulty",
            plan=plan, store_format="columnar",
        )
        assert result.retries + result.sink_retries > 0
        assert storage.path.read_bytes() == base_storage.path.read_bytes()


# ---------------------------------------------------------------------------
# Dead process workers (SIGKILL) and pool rebuilds


class TestProcessWorkerDeath:
    def test_sigkilled_worker_rebuilds_pool_byte_identically(
        self, environment, detector, sites, tmp_path
    ):
        _, base_storage, _ = TestRetrySupervision().baseline(
            environment, detector, sites, tmp_path
        )
        config = CrawlConfig(
            seed=2019, backend="process", workers=2, shard_oversubscribe=2,
            shard_retries=3, retry_backoff=0.0,
        )
        plan = parse_fault_plan("crash@shard=1")
        result, storage, _ = engine_run(
            environment, detector, config, sites, tmp_path, "sigkill", plan=plan
        )
        assert result.pool_rebuilds >= 1
        assert result.retries >= 1  # every in-flight casualty is charged one attempt
        assert not result.degraded
        assert storage.path.read_bytes() == base_storage.path.read_bytes()


# ---------------------------------------------------------------------------
# Quarantine, degraded completion, resume


class TestQuarantine:
    def test_exhausted_shard_is_quarantined_and_resume_completes(
        self, environment, detector, sites, tmp_path
    ):
        _, base_storage, _ = TestRetrySupervision().baseline(
            environment, detector, sites, tmp_path
        )
        config = CrawlConfig(seed=2019, shard_retries=1, retry_backoff=0.0)
        plan = parse_fault_plan("raise@shard=0x9")
        result, storage, checkpoint_path = engine_run(
            environment, detector, config, sites, tmp_path, "quarantined",
            plan=plan, checkpointed=True,
        )
        assert result.degraded
        (failure,) = result.quarantined_shards
        assert failure.shard_index == 0
        assert failure.attempts == 2  # 1 try + 1 retry
        assert "InjectedFault" in failure.error
        assert failure.domains  # triage info

        # The quarantine is persisted in the checkpoint.
        checkpoint = CrawlCheckpoint.load(checkpoint_path)
        recorded = checkpoint.phases[-1].quarantined
        assert [entry["shard"] for entry in recorded] == [0]
        assert not checkpoint.phases[-1].done

        # Resume without the fault plan: the quarantined shard is re-crawled
        # and the final bytes match a never-faulted run.
        fingerprint = {"seed": config.seed, "sites": [p.domain for p in sites]}
        resumed = CrawlCheckpointer.resume(checkpoint_path, fingerprint, storage)
        with CrawlEngine(environment, detector, config) as engine:
            with storage.open_sink(append=True, flush_every=3) as sink:
                final = engine.crawl(sites, crawl_day=0, sink=sink, checkpoint=resumed)
        assert not final.degraded
        assert storage.path.read_bytes() == base_storage.path.read_bytes()
        assert CrawlCheckpoint.load(checkpoint_path).phases[-1].quarantined == ()

    def test_quarantine_off_aborts_the_crawl(
        self, environment, detector, sites, tmp_path
    ):
        config = CrawlConfig(
            seed=2019, shard_retries=0, retry_backoff=0.0, quarantine=False
        )
        plan = parse_fault_plan("raise@shard=0")
        with pytest.raises(InjectedFault):
            engine_run(
                environment, detector, config, sites, tmp_path, "abort", plan=plan
            )

    def test_pool_backend_quarantine_keeps_completed_prefix(
        self, environment, detector, sites, tmp_path
    ):
        config = CrawlConfig(
            seed=2019, backend="thread", workers=2, shard_oversubscribe=2,
            shard_retries=0, retry_backoff=0.0,
        )
        plan = parse_fault_plan("raise@shard=1x9")
        result, storage, _ = engine_run(
            environment, detector, config, sites, tmp_path, "pool-quarantine",
            plan=plan,
        )
        assert result.degraded
        assert [f.shard_index for f in result.quarantined_shards] == [1]
        # Detections cover exactly the shards before the gap (shard 0 only).
        base_result, _, _ = TestRetrySupervision().baseline(
            environment, detector, sites, tmp_path
        )
        prefix = [d.domain for d in result.detections]
        assert prefix == [d.domain for d in base_result.detections][: len(prefix)]
        assert 0 < len(prefix) < len(base_result.detections)

    def test_sink_retry_exhaustion_leaves_checkpoint_consistent(
        self, environment, detector, sites, tmp_path
    ):
        """A persistently failing parent-side sink aborts the crawl, but the
        checkpoint still records the completed-shard prefix, and a resume
        with a healthy sink finishes byte-identically."""
        _, base_storage, _ = TestRetrySupervision().baseline(
            environment, detector, sites, tmp_path
        )
        config = CrawlConfig(
            seed=2019, backend="thread", workers=2, shard_oversubscribe=2,
            shard_retries=1, retry_backoff=0.0,
        )
        # Every write from the 7th onward fails, far beyond the write-level
        # retry budget: the crawl must abort with StorageError.
        plan = parse_fault_plan("sink@count=6x500")
        suffix_path = tmp_path / "exhausted.jsonl"
        storage = storage_for(suffix_path, format="jsonl")
        fingerprint = {"seed": config.seed, "sites": [p.domain for p in sites]}
        checkpoint_path = tmp_path / "exhausted.ckpt"
        recorder = CrawlCheckpointer.fresh(checkpoint_path, fingerprint)
        with pytest.raises(StorageError, match="injected sink write failure"):
            with CrawlEngine(environment, detector, config, fault_plan=plan) as engine:
                with storage.open_sink(flush_every=3) as sink:
                    engine.crawl(sites, crawl_day=0, sink=sink, checkpoint=recorder)

        checkpoint = CrawlCheckpoint.load(checkpoint_path)
        phase = checkpoint.phases[-1]
        assert not phase.done
        completed = phase.completed_shards
        assert completed == tuple(range(len(completed)))  # a contiguous prefix

        resumed = CrawlCheckpointer.resume(checkpoint_path, fingerprint, storage)
        with CrawlEngine(environment, detector, config) as engine:
            with storage.open_sink(append=True, flush_every=3) as sink:
                final = engine.crawl(sites, crawl_day=0, sink=sink, checkpoint=resumed)
        assert not final.degraded
        assert storage.path.read_bytes() == base_storage.path.read_bytes()

    def test_phase_progress_quarantine_is_backward_compatible(self):
        phase = PhaseProgress(
            crawl_day=0, plan_hash="abc", n_shards=2, completed_shards=(0,),
            n_detections=3, pages_visited=3, sessions_started=3,
            timed_out_domains=(),
        )
        data = phase.to_dict()
        assert data["quarantined"] == []
        del data["quarantined"]  # a checkpoint written before this field
        assert PhaseProgress.from_dict(data).quarantined == ()


# ---------------------------------------------------------------------------
# CLI surface


class TestCliFlags:
    def test_run_accepts_the_supervision_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "run",
                "--shard-retries", "3",
                "--shard-timeout", "10",
                "--retry-backoff", "0.5",
                "--inject-faults", "seed=7,crash@p=0.2x4",
                "--fault-log", "faults.jsonl",
            ]
        )
        assert args.shard_retries == 3
        assert args.shard_timeout == 10.0
        assert args.retry_backoff == 0.5
        assert args.inject_faults == "seed=7,crash@p=0.2x4"
        assert args.fault_log == "faults.jsonl"

    def test_run_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run"])
        assert args.shard_retries == 2
        assert args.shard_timeout is None
        assert args.inject_faults is None

    def test_daemon_accepts_supervision_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["daemon", "--dir", "work", "--shard-retries", "1", "--shard-timeout", "30"]
        )
        assert args.shard_retries == 1
        assert args.shard_timeout == 30.0

    def test_rejected_values(self):
        from repro.cli import build_parser

        for argv in (
            ["run", "--shard-retries", "-1"],
            ["run", "--shard-timeout", "0"],
            ["run", "--retry-backoff", "-0.5"],
        ):
            with pytest.raises(SystemExit):
                build_parser().parse_args(argv)


# ---------------------------------------------------------------------------
# Daemon fault tolerance


def _daemon_config(**overrides):
    from repro.experiments.config import ExperimentConfig as _EC

    return _EC(total_sites=400, seed=7, historical_sites=120, **overrides)


class TestDaemonFaultTolerance:
    def test_degraded_tick_fails_without_recording_the_day(self, tmp_path):
        work = tmp_path / "work"
        degraded = daemon_mod.RecrawlDaemon(
            work,
            _daemon_config(shard_retries=0, fault_spec="raise@shard=0x9"),
            target_days=1,
        )
        report = degraded.tick()
        assert report.status == "failed"
        assert "quarantined" in report.error
        assert report.snapshot_days == []
        assert list(degraded.metrics_dir.glob("*.json")) == []
        assert degraded.recorded_state() == (0, False)  # started, never finished
        assert degraded.fault_log_path.exists()

        # A healthy daemon over the same workdir resumes the quarantined
        # shard from the checkpoint and records day 0 normally.
        healthy = daemon_mod.RecrawlDaemon(work, _daemon_config(), target_days=1)
        report = healthy.tick()
        assert report.status == "bootstrapped"
        assert report.day == 0
        assert report.snapshot_days == [0]
        assert (healthy.metrics_dir / "day-00000.json").exists()

    def test_run_survives_a_raising_tick_and_backs_off(self, tmp_path, monkeypatch):
        monkeypatch.setattr(daemon_mod, "FAILED_TICK_BACKOFF_BASE", 0.01)
        monkeypatch.setattr(daemon_mod, "FAILED_TICK_BACKOFF_CAP", 0.05)
        daemon = daemon_mod.RecrawlDaemon(
            tmp_path / "work", _daemon_config(), target_days=0
        )
        real_tick = daemon.tick
        calls = {"n": 0}

        def flaky_tick():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient tick explosion")
            return real_tick()

        monkeypatch.setattr(daemon, "tick", flaky_tick)
        reports = daemon.run(max_ticks=2)
        assert [r.status for r in reports] == ["failed", "bootstrapped"]
        assert "RuntimeError: transient tick explosion" in reports[0].error

    def test_read_alerts_tolerates_a_torn_final_line(self, tmp_path):
        daemon = daemon_mod.RecrawlDaemon(tmp_path / "work", _daemon_config())
        good = {"day": 1, "rule": "r", "value": 2.0}
        daemon.alert_log.write_bytes(
            json.dumps(good).encode() + b"\n" + b'{"day": 2, "ru\xff\xfe'
        )
        assert daemon.read_alerts() == [good]
        # A trailing complete-but-corrupt line is skipped, not fatal.
        daemon.alert_log.write_bytes(
            json.dumps(good).encode() + b"\n" + b"not json\n"
        )
        assert daemon.read_alerts() == [good]
        # No newline at all: nothing complete to report.
        daemon.alert_log.write_bytes(b'{"day": 1')
        assert daemon.read_alerts() == []


# ---------------------------------------------------------------------------
# Service: failed campaigns persist and resume over HTTP


class TestServiceFailedCampaigns:
    def test_quarantined_campaign_fails_resumably_over_http(self, tmp_path):
        from repro.service import ServiceClient, running_server

        with running_server(tmp_path / "service", max_parallel=2) as srv:
            client = ServiceClient(srv.base_url)
            submitted = client.submit(
                {
                    "sites": 400,
                    "days": 0,
                    "seed": 7,
                    "historical_sites": 120,
                    "shard_retries": 0,
                    "fault_spec": "raise@shard=0x9",
                }
            )
            failed = client.wait(submitted["id"], timeout=300)
            assert failed["state"] == "failed", failed
            assert "quarantined" in failed["error"]
            assert failed["resumable"] is True
            assert failed["supervision"]["quarantined"] >= 1

            campaign = srv.manager.get(submitted["id"])
            record = json.loads((campaign.workdir / "campaign.json").read_text())
            assert record["state"] == "failed"
            assert "quarantined" in record["error"]
            assert record["supervision"]["quarantined"] >= 1
            assert campaign.fault_log_path.exists()

            # POST resume re-queues a failed campaign; the spec re-fires, so
            # it fails again — proving the resume path accepts failed state.
            resumed = client.resume(submitted["id"])
            assert resumed["state"] in {"queued", "running"}
            assert client.wait(submitted["id"], timeout=300)["state"] == "failed"

            # Once the injected fault is gone the resume re-crawls only the
            # quarantined shard and the campaign completes.
            campaign.config = dataclasses.replace(campaign.config, fault_spec=None)
            client.resume(submitted["id"])
            done = client.wait(submitted["id"], timeout=300)
            assert done["state"] == "done", done
            assert done["error"] is None
            assert done["supervision"]["quarantined"] == 0
            record = json.loads((campaign.workdir / "campaign.json").read_text())
            assert record["state"] == "done"
            assert record["supervision"]["quarantined"] == 0
