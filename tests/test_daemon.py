"""The continuous-recrawl daemon: ticks, alerts, retention, crash recovery.

The load-bearing property is inherited byte-identity: a campaign grown one
tick at a time produces exactly the sink a one-shot run with the full horizon
produces, and a daemon killed mid-day resumes into the same bytes.  On top
of that sit the alert mechanics — threshold parsing, metric flattening,
day-over-day evaluation, exactly-once logging — and the retention policy.
"""

import dataclasses
import json

import pytest

from repro.crawler.colstore import storage_for
from repro.daemon import (
    FIRST_COMPARABLE_DAY,
    AlertRule,
    RecrawlDaemon,
    evaluate_rules,
    flatten_metric_data,
    parse_rule,
    parse_rules,
)
from repro.errors import ConfigurationError, UnknownMetricError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from tests.crash_harness import FaultyBackend, SimulatedCrash


def _config(store_format="columnar", **overrides):
    return ExperimentConfig(
        total_sites=400,
        seed=7,
        historical_sites=120,
        store_format=store_format,
        **overrides,
    )


def _oneshot_bytes(tmp_path, config, days, name="oneshot"):
    suffix = "hbc" if config.store_format == "columnar" else "jsonl"
    storage = storage_for(tmp_path / f"{name}.{suffix}", format=config.store_format)
    ExperimentRunner(dataclasses.replace(config, recrawl_days=days)).run(
        use_cache=False, storage=storage
    )
    return storage.path.read_bytes()


# An absolute floor no simulated day reaches: fires on every comparable day.
IMPOSSIBLE_FLOOR = "table1.summary.websites_with_hb:min=100000"


class TestRuleParsing:
    def test_parses_the_three_kinds(self):
        rules = parse_rules(
            [
                "table1.summary.websites_with_hb:drop=0.25",
                "table1.summary.websites_crawled:min=100",
                "table1.summary.avg_bid_requests:max=9.5",
            ]
        )
        assert rules[0] == AlertRule("table1", "summary.websites_with_hb", "drop", 0.25)
        assert rules[1].kind == "min" and rules[1].value == 100.0
        assert rules[2].metric == "table1" and rules[2].value == 9.5

    def test_spec_round_trips(self):
        spec = "table1.summary.websites_with_hb:drop=0.25"
        assert parse_rule(spec).spec == spec

    @pytest.mark.parametrize(
        "spec",
        [
            "table1.summary.websites_with_hb",  # no kind
            "table1.summary.websites_with_hb:between=3",  # unknown kind
            "table1:drop=0.25",  # no field path
            "table1.summary.websites_with_hb:drop=lots",  # not a number
            "table1.summary.websites_with_hb:drop=1.5",  # drop outside (0, 1]
            "table1.summary.websites_with_hb:drop=0",  # drop outside (0, 1]
            "table1.summary.websites_with_hb:min",  # no value
        ],
    )
    def test_malformed_specs_are_refused(self, spec):
        with pytest.raises(ConfigurationError):
            parse_rule(spec)


class TestFlattening:
    def test_numeric_leaves_get_dotted_paths(self):
        flat = flatten_metric_data(
            {
                "summary": {"websites_with_hb": 60, "fraction": 0.15},
                "top": [3, 1],
                "label": "ignored",
                "nested": {"flag": True},
            }
        )
        assert flat == {
            "summary.websites_with_hb": 60.0,
            "summary.fraction": 0.15,
            "top.0": 3.0,
            "top.1": 1.0,
            "nested.flag": 1.0,
        }

    def test_long_sequences_are_skipped(self):
        flat = flatten_metric_data({"ecdf": list(range(1000)), "n": 7})
        assert flat == {"n": 7.0}


class TestEvaluateRules:
    def _snap(self, value):
        return {"table1": {"summary.websites_with_hb": value}}

    def test_drop_fires_past_threshold(self):
        rule = parse_rule("table1.summary.websites_with_hb:drop=0.25")
        alerts = evaluate_rules([rule], self._snap(100), self._snap(60), day=3)
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert["day"] == 3 and alert["baseline_day"] == 2
        assert alert["relative_drop"] == pytest.approx(0.4)
        assert "violates drop=0.25" in alert["message"]

    def test_drop_within_threshold_is_quiet(self):
        rule = parse_rule("table1.summary.websites_with_hb:drop=0.25")
        assert evaluate_rules([rule], self._snap(100), self._snap(80), day=3) == []

    def test_drop_skips_zero_baseline(self):
        rule = parse_rule("table1.summary.websites_with_hb:drop=0.25")
        assert evaluate_rules([rule], self._snap(0), self._snap(0), day=3) == []

    def test_min_and_max_are_absolute(self):
        floor = parse_rule("table1.summary.websites_with_hb:min=70")
        ceiling = parse_rule("table1.summary.websites_with_hb:max=50")
        alerts = evaluate_rules([floor, ceiling], self._snap(55), self._snap(60), day=2)
        assert [a["kind"] for a in alerts] == ["min", "max"]

    def test_missing_field_is_skipped(self):
        rule = parse_rule("table1.summary.nonexistent:min=1")
        assert evaluate_rules([rule], self._snap(10), self._snap(10), day=2) == []


class TestDaemonGrowth:
    @pytest.mark.parametrize("store_format", ["jsonl", "columnar"])
    def test_ticks_match_one_shot_bytes(self, tmp_path, store_format):
        config = _config(store_format)
        daemon = RecrawlDaemon(tmp_path / "work", config, target_days=2)
        reports = daemon.run()
        assert [r.status for r in reports] == ["bootstrapped", "advanced", "advanced"]
        assert [r.day for r in reports] == [0, 1, 2]
        assert daemon.sink_path.read_bytes() == _oneshot_bytes(tmp_path, config, 2)

    def test_tick_after_target_is_a_complete_noop(self, tmp_path):
        daemon = RecrawlDaemon(tmp_path / "work", _config(), target_days=1)
        daemon.run()
        before = daemon.sink_path.read_bytes()
        report = daemon.tick()
        assert report.status == "complete" and report.day is None
        assert report.detections > 0
        assert daemon.sink_path.read_bytes() == before

    def test_workdir_layout(self, tmp_path):
        daemon = RecrawlDaemon(tmp_path / "work", _config(), target_days=2)
        daemon.run()
        work = tmp_path / "work"
        assert (work / "daemon.json").exists()
        assert (work / "crawl.ckpt").exists()
        for day in range(3):
            assert (work / "metrics" / f"day-{day:05d}.json").exists()
            assert (work / "partitions" / f"day-{day:05d}.hbc").exists()
        snapshot = json.loads((work / "metrics" / "day-00002.json").read_text())
        assert snapshot["day"] == 2
        assert "summary.websites_with_hb" in snapshot["metrics"]["table1"]

    def test_partitions_concatenate_to_the_sink(self, tmp_path):
        config = _config("jsonl")
        daemon = RecrawlDaemon(tmp_path / "work", config, target_days=2)
        daemon.run()
        parts = b"".join(
            (tmp_path / "work" / "partitions" / f"day-{day:05d}.jsonl").read_bytes()
            for day in range(3)
        )
        assert parts == daemon.sink_path.read_bytes()

    def test_kill_mid_day_then_fresh_daemon_recovers(self, tmp_path, monkeypatch):
        import repro.crawler.engine as engine_mod

        config = _config(crawl_backend="thread", workers=2)
        work = tmp_path / "work"
        RecrawlDaemon(work, config, target_days=2).run(max_ticks=2)  # days 0 and 1 done

        real = engine_mod.backend_from_name
        with monkeypatch.context() as patch:
            patch.setattr(
                engine_mod,
                "backend_from_name",
                lambda name, workers=None: FaultyBackend(real(name, workers=workers), 1),
            )
            with pytest.raises(SimulatedCrash):
                RecrawlDaemon(work, config, target_days=2).tick()

        # A brand-new daemon (a restarted process) completes day 2.
        reports = RecrawlDaemon(work, config, target_days=2).run()
        assert reports[0].status == "advanced" and reports[0].day == 2
        sink = (work / "detections.hbc").read_bytes()
        assert sink == _oneshot_bytes(tmp_path, config, 2)

    def test_refuses_sink_without_checkpoint(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        (work / "detections.hbc").write_bytes(b"orphaned")
        with pytest.raises(ConfigurationError, match="refusing to overwrite"):
            RecrawlDaemon(work, _config())


class TestDaemonAlerts:
    def test_impossible_floor_fires_once_per_comparable_day(self, tmp_path):
        daemon = RecrawlDaemon(
            tmp_path / "work",
            _config(),
            rules=parse_rules([IMPOSSIBLE_FLOOR]),
            target_days=3,
        )
        reports = daemon.run()
        fired = [a for r in reports for a in r.alerts]
        assert [a["day"] for a in fired] == [2, 3]  # days 0/1 are not comparable
        assert all(a["kind"] == "min" for a in fired)
        logged = daemon.read_alerts()
        assert [a["day"] for a in logged] == [2, 3]
        assert all("ts" in a for a in logged)

    def test_restart_never_duplicates_alerts(self, tmp_path, monkeypatch):
        import repro.crawler.engine as engine_mod

        config = _config(crawl_backend="thread", workers=2)
        work = tmp_path / "work"
        rules = parse_rules([IMPOSSIBLE_FLOOR])
        RecrawlDaemon(work, config, rules=rules, target_days=3).run(max_ticks=3)

        # Kill mid-day-3, restart: day 2's alert must not be re-emitted.
        real = engine_mod.backend_from_name
        with monkeypatch.context() as patch:
            patch.setattr(
                engine_mod,
                "backend_from_name",
                lambda name, workers=None: FaultyBackend(real(name, workers=workers), 1),
            )
            with pytest.raises(SimulatedCrash):
                RecrawlDaemon(work, config, rules=rules, target_days=3).tick()
        daemon = RecrawlDaemon(work, config, rules=rules, target_days=3)
        daemon.run()
        assert [a["day"] for a in daemon.read_alerts()] == [2, 3]

        # Re-running the complete campaign emits nothing new either.
        daemon.run()
        assert [a["day"] for a in daemon.read_alerts()] == [2, 3]

    def test_day_below_first_comparable_never_alerts(self, tmp_path):
        daemon = RecrawlDaemon(
            tmp_path / "work",
            _config(),
            rules=parse_rules([IMPOSSIBLE_FLOOR]),
            target_days=FIRST_COMPARABLE_DAY - 1,
        )
        reports = daemon.run()
        assert all(not r.alerts for r in reports)
        assert daemon.read_alerts() == []


class TestDaemonValidation:
    def test_unknown_metric_is_refused(self, tmp_path):
        with pytest.raises(UnknownMetricError):
            RecrawlDaemon(tmp_path / "work", _config(), metrics=("tableZ",))

    def test_rule_must_target_a_watched_metric(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not watched"):
            RecrawlDaemon(
                tmp_path / "work",
                _config(),
                metrics=("table1",),
                rules=parse_rules(["table2.summary.x:min=1"]),
            )

    def test_negative_target_days_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="negative"):
            RecrawlDaemon(tmp_path / "work", _config(), target_days=-1)

    def test_retention_below_one_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="retention"):
            RecrawlDaemon(tmp_path / "work", _config(), retention_days=0)

    def test_empty_metrics_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="at least one metric"):
            RecrawlDaemon(tmp_path / "work", _config(), metrics=())


class TestRetention:
    def test_prunes_partitions_and_snapshots_but_never_the_sink(self, tmp_path):
        config = _config()
        daemon = RecrawlDaemon(
            tmp_path / "work", config, target_days=3, retention_days=1
        )
        daemon.run()
        work = tmp_path / "work"
        kept = sorted(p.name for p in (work / "partitions").iterdir())
        assert kept == ["day-00002.hbc", "day-00003.hbc"]
        snaps = sorted(p.name for p in (work / "metrics").iterdir())
        assert snaps == ["day-00002.json", "day-00003.json"]
        # The canonical sink still holds every day.
        assert daemon.sink_path.read_bytes() == _oneshot_bytes(tmp_path, config, 3)

    def test_last_two_days_always_survive(self, tmp_path):
        # retention_days=1 would keep only the last day, but the next tick's
        # diff needs the previous snapshot, so two days always remain.
        daemon = RecrawlDaemon(
            tmp_path / "work",
            _config(),
            rules=parse_rules([IMPOSSIBLE_FLOOR]),
            target_days=4,
            retention_days=1,
        )
        reports = daemon.run()
        assert [a["day"] for r in reports for a in r.alerts] == [2, 3, 4]
        snaps = sorted(p.name for p in (tmp_path / "work" / "metrics").iterdir())
        assert snaps == ["day-00003.json", "day-00004.json"]
