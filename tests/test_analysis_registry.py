"""Unit tests for the metric registry and the analysis context."""

import pytest

from repro.analysis import (
    AnalysisContext,
    CrawlDataset,
    FunctionMetric,
    MetricResult,
    available_metrics,
    compute_metric,
    get_metric,
    iter_metrics,
    metric_names,
)
from repro.analysis.registry import register
from repro.errors import MetricContextError, UnknownMetricError
from repro.experiments import figures, tables

#: Every artefact name the pre-registry CLI exposed, which must keep resolving.
LEGACY_ARTIFACT_NAMES = {
    "table1", "adoption", "accuracy", "facet",
    "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
    "fig24", "waterfall", "prices",
}


class TestRegistryContents:
    def test_every_legacy_artifact_is_registered(self):
        assert LEGACY_ARTIFACT_NAMES <= set(metric_names())

    def test_metrics_carry_paper_references(self):
        for metric in iter_metrics():
            assert metric.title, metric.name
            assert metric.ref, metric.name

    def test_unknown_metric_raises(self):
        with pytest.raises(UnknownMetricError):
            get_metric("fig99")

    def test_registration_is_idempotent_last_wins(self):
        marker = FunctionMetric(
            name="_test_metric", title="t", ref="r",
            fn=lambda context: {"text": "one"},
        )
        register(marker)
        replacement = FunctionMetric(
            name="_test_metric", title="t2", ref="r",
            fn=lambda context: {"text": "two"},
        )
        register(replacement)
        assert get_metric("_test_metric").title == "t2"


class TestContext:
    def test_from_artifacts_provides_everything_but_historical(self, experiment_artifacts):
        context = AnalysisContext.from_artifacts(experiment_artifacts)
        assert context.provides() == {"dataset", "population", "environment", "config"}
        assert context.total_sites == experiment_artifacts.config.total_sites
        assert context.seed == experiment_artifacts.config.seed

    def test_offline_context_provides_dataset_only(self, dataset):
        context = AnalysisContext.offline(dataset)
        assert context.provides() == {"dataset"}
        assert context.seed == 2019

    def test_offline_total_sites_recovered_from_dataset(self, experiment_artifacts):
        offline = AnalysisContext.offline(experiment_artifacts.dataset)
        assert offline.total_sites == experiment_artifacts.config.total_sites

    def test_missing_requirement_raises(self, dataset):
        with pytest.raises(MetricContextError) as excinfo:
            compute_metric("accuracy", AnalysisContext.offline(dataset))
        assert "population" in str(excinfo.value)

    def test_available_metrics_filters_by_context(self, experiment_artifacts):
        offline = set(available_metrics(AnalysisContext.offline(experiment_artifacts.dataset)))
        full = set(available_metrics(AnalysisContext.from_artifacts(experiment_artifacts)))
        assert "table1" in offline and "fig12" in offline
        assert {"accuracy", "waterfall", "prices", "fig04"}.isdisjoint(offline)
        assert offline < full
        assert {"accuracy", "waterfall", "prices"} <= full


class TestComputation:
    def test_result_envelope_fields(self, experiment_artifacts):
        result = compute_metric("fig12", AnalysisContext.from_artifacts(experiment_artifacts))
        assert isinstance(result, MetricResult)
        assert result.name == "fig12"
        assert result.render.get("kind") == "ecdf"
        assert result.text.startswith("Figure 12")
        assert "median_ms" in result.data
        assert result.as_dict()["text"] == result.text

    def test_param_overrides_are_recorded(self, experiment_artifacts):
        context = AnalysisContext.from_artifacts(experiment_artifacts)
        result = compute_metric("fig08", context, top_n=3)
        assert result.params == {"top_n": 3}
        assert len(result.data["rows"]) <= 3

    def test_registry_matches_legacy_table_bindings(self, experiment_artifacts):
        context = AnalysisContext.from_artifacts(experiment_artifacts)
        assert compute_metric("table1", context).text == tables.table1_summary(experiment_artifacts)["text"]
        assert compute_metric("adoption", context).text == tables.adoption_by_rank(experiment_artifacts)["text"]

    def test_registry_matches_legacy_figure_bindings(self, experiment_artifacts):
        context = AnalysisContext.from_artifacts(experiment_artifacts)
        assert compute_metric("fig08", context).text == figures.figure08_top_partners(experiment_artifacts)["text"]
        assert compute_metric("facet", context).text == figures.facet_breakdown_result(experiment_artifacts)["text"]

    def test_offline_and_in_memory_paths_agree(self, experiment_artifacts):
        offline = AnalysisContext.offline(experiment_artifacts.dataset)
        full = AnalysisContext.from_artifacts(experiment_artifacts)
        for name in ("table1", "adoption", "facet", "fig12", "fig13"):
            assert compute_metric(name, offline).text == compute_metric(name, full).text

    def test_empty_dataset_still_raises_analysis_errors(self):
        from repro.errors import EmptyDatasetError

        with pytest.raises(EmptyDatasetError):
            compute_metric("table1", AnalysisContext.offline(CrawlDataset()))
