"""Crash-injection harness for resumable-crawl tests.

:class:`FaultyBackend` wraps a real execution backend and dies after handing
the engine a configured number of shard results, simulating a crawl process
killed mid-campaign.  Because it wraps the genuine backend, the shards that
*do* complete are crawled by the real serial/thread/process machinery, so a
resumed run exercises exactly the recovery path a production crash would.

The crash is raised from the backend's ``execute`` generator, i.e. inside the
engine's merge loop: everything the engine already emitted and flushed stays
on disk (plus, possibly, a half-flushed tail beyond the last checkpoint),
everything in flight is lost — the same observable state as a SIGKILL between
two shard boundaries.
"""

from __future__ import annotations

import pytest

from repro.crawler.checkpoint import CrawlCheckpointer
from repro.crawler.colstore import storage_for
from repro.crawler.engine import CrawlEngine, backend_from_name


class SimulatedCrash(RuntimeError):
    """The injected failure.

    Deliberately *not* a :class:`repro.errors.ReproError`: a real crash
    (OOM kill, power loss) is not a library error, and tests must see it
    surface unmasked through every cleanup layer.
    """


class FaultyBackend:
    """Wraps a real backend and crashes after ``fail_after`` shard results.

    ``fail_after=k`` hands the engine exactly ``k`` shard results — counted
    across the backend's whole lifetime, so a multi-phase campaign can die
    mid-re-crawl — and then raises :class:`SimulatedCrash`.  ``k=0`` dies
    before the first shard lands, ``k=n_shards`` dies after a one-phase crawl
    finished but before ``crawl()`` could return, and a ``fail_after`` beyond
    the campaign's total shard count never fires.
    """

    def __init__(self, inner, fail_after: int) -> None:
        self.inner = inner
        self.fail_after = fail_after
        self.produced = 0
        self.crashes = 0

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def streams_inline(self) -> bool:
        return self.inner.streams_inline

    def prepare(self, context) -> None:
        self.inner.prepare(context)

    def shutdown(self) -> None:
        self.inner.shutdown()

    def execute(self, shards, crawl_day, on_detection):
        results = self.inner.execute(shards, crawl_day, on_detection)
        while True:
            if self.produced == self.fail_after:
                self.crashes += 1
                raise SimulatedCrash(
                    f"injected crash after {self.produced} shard results"
                )
            try:
                item = next(results)
            except StopIteration:
                return
            yield item
            self.produced += 1


def interrupted_then_resumed(
    environment,
    detector,
    config,
    sites,
    *,
    tmp_path,
    fail_after: int,
    crawl_day: int = 0,
    flush_every: int = 3,
    resume_config=None,
    store_format: str = "jsonl",
):
    """Crash a checkpointed crawl after ``fail_after`` shards, then resume it.

    Returns ``(result, storage)``: the resumed (complete) crawl result and
    the storage whose file now holds the recovered-plus-resumed bytes.  When
    ``fail_after`` exceeds the shard count the first run simply completes and
    the "resume" is a no-op replay — which must also be byte-identical.
    """
    fingerprint = {
        "seed": config.seed,
        "sites": [publisher.domain for publisher in sites],
    }
    suffix = "hbc" if store_format == "columnar" else "jsonl"
    storage = storage_for(tmp_path / f"interrupted.{suffix}", format=store_format)
    checkpoint_path = tmp_path / "checkpoint.json"

    faulty = FaultyBackend(
        backend_from_name(config.backend, workers=config.workers), fail_after
    )
    recorder = CrawlCheckpointer.fresh(checkpoint_path, fingerprint)
    engine = CrawlEngine(environment, detector, config, backend=faulty)
    crashed = False
    try:
        with engine, storage.open_sink(flush_every=flush_every) as sink:
            engine.crawl(sites, crawl_day=crawl_day, sink=sink, checkpoint=recorder)
    except SimulatedCrash:
        crashed = True
    n_shards = len(engine.plan(sites).shards)
    assert crashed == (fail_after <= n_shards)

    resumed = CrawlCheckpointer.resume(checkpoint_path, fingerprint, storage)
    with CrawlEngine(environment, detector, resume_config or config) as engine:
        with storage.open_sink(append=True, flush_every=flush_every) as sink:
            result = engine.crawl(
                sites, crawl_day=crawl_day, sink=sink, checkpoint=resumed
            )
    return result, storage


def uninterrupted_baseline(
    environment, detector, config, sites, *, tmp_path, crawl_day: int = 0,
    flush_every: int = 3, store_format: str = "jsonl",
):
    """One-shot reference crawl: the bytes and result resume must reproduce."""
    suffix = "hbc" if store_format == "columnar" else "jsonl"
    storage = storage_for(tmp_path / f"baseline.{suffix}", format=store_format)
    with CrawlEngine(environment, detector, config) as engine:
        with storage.open_sink(flush_every=flush_every) as sink:
            result = engine.crawl(sites, crawl_day=crawl_day, sink=sink)
    return result, storage


@pytest.fixture
def crash_sites(small_population):
    """A site list sized to give multi-site shards at a few workers."""
    return list(small_population)[:24]
