"""Back-compat shim: the crash harness now lives in ``repro.testing.faults``.

Kept so existing ``from tests.crash_harness import ...`` (and bare
``from crash_harness import ...``) sites keep working; new code should
import from :mod:`repro.testing` directly.  Only the pytest fixture stays
here — fixtures belong to the test tree, not the library.
"""

from __future__ import annotations

import pytest

from repro.testing.faults import (  # noqa: F401 - re-exported for back-compat
    Fault,
    FaultAction,
    FaultInjectingSink,
    FaultPlan,
    FaultyBackend,
    InjectedFault,
    SimulatedCrash,
    interrupted_then_resumed,
    parse_fault_plan,
    uninterrupted_baseline,
)


@pytest.fixture
def crash_sites(small_population):
    """A site list sized to give multi-site shards at a few workers."""
    return list(small_population)[:24]
