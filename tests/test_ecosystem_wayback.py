"""Unit tests for the Wayback-style snapshot archive."""

import pytest

from repro.ecosystem.alexa import yearly_top_lists
from repro.ecosystem.wayback import ADOPTION_CURVE, Snapshot, SnapshotArchive
from repro.errors import ConfigurationError
from repro.models import WrapperKind


@pytest.fixture(scope="module")
def archive():
    lists = yearly_top_lists(200, (2014, 2016, 2019), seed=5)
    return SnapshotArchive(lists, seed=5)


class TestSnapshotArchive:
    def test_years_are_sorted(self, archive):
        assert archive.years == (2014, 2016, 2019)

    def test_snapshot_is_cached_and_deterministic(self, archive):
        domain = archive.domains_for(2019)[0]
        first = archive.snapshot(domain, 2019)
        second = archive.snapshot(domain, 2019)
        assert first is second
        assert first.html == second.html

    def test_snapshots_for_year_cover_the_top_list(self, archive):
        snapshots = archive.snapshots_for(2016)
        assert len(snapshots) == 200
        assert {snapshot.year for snapshot in snapshots} == {2016}

    def test_adoption_grows_over_the_years(self, archive):
        def rate(year):
            snapshots = archive.snapshots_for(year)
            return sum(1 for s in snapshots if s.uses_hb) / len(snapshots)

        assert rate(2014) < rate(2019)
        assert rate(2019) > 0.1

    def test_adoption_probability_follows_curve(self, archive):
        assert archive.adoption_probability(2016) == ADOPTION_CURVE[2016]
        # Years before the curve get a reduced early-adopter rate.
        assert archive.adoption_probability(2010) < ADOPTION_CURVE[2014]
        # Years after the curve inherit the latest value.
        assert archive.adoption_probability(2025) == ADOPTION_CURVE[2019]

    def test_hb_snapshots_reference_a_wrapper_script(self, archive):
        hb_snapshots = [s for s in archive.snapshots_for(2019) if s.uses_hb]
        assert hb_snapshots
        named = [s for s in hb_snapshots if s.wrapper in (WrapperKind.PREBID, WrapperKind.GPT)]
        assert named, "expected some snapshots with well-known wrappers"
        assert any("prebid" in s.html for s in named if s.wrapper is WrapperKind.PREBID)

    def test_unknown_year_raises(self, archive):
        with pytest.raises(KeyError):
            archive.domains_for(1999)

    def test_rejects_invalid_configuration(self):
        lists = yearly_top_lists(50, (2019,), seed=1)
        with pytest.raises(ConfigurationError):
            SnapshotArchive({}, seed=1)
        with pytest.raises(ConfigurationError):
            SnapshotArchive(lists, renamed_wrapper_rate=1.5)

    def test_snapshot_validation(self):
        with pytest.raises(ConfigurationError):
            Snapshot(domain="", year=2019, html="<html/>", uses_hb=False)
        with pytest.raises(ConfigurationError):
            Snapshot(domain="x.example", year=1200, html="<html/>", uses_hb=False)
