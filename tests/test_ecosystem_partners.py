"""Unit tests for demand-partner behaviour models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ecosystem.partners import BidBehavior, DemandPartner, LatencyModel, supported_facets
from repro.models import AdSlotSize, HBFacet, PartnerKind


def make_partner(**overrides):
    defaults = dict(
        name="TestBidder",
        kind=PartnerKind.SSP,
        bidder_code="testbidder",
        domains=("testbidder.com",),
        latency=LatencyModel(300.0, 0.4),
        bidding=BidBehavior(bid_probability=1.0, base_cpm=0.05),
    )
    defaults.update(overrides)
    return DemandPartner(**defaults)


class TestLatencyModel:
    def test_sample_respects_minimum(self):
        model = LatencyModel(median_ms=20.0, sigma=0.3, minimum_ms=15.0)
        rng = np.random.default_rng(0)
        assert all(model.sample(rng) >= 15.0 for _ in range(200))

    def test_sample_median_is_close_to_configured_median(self):
        model = LatencyModel(median_ms=400.0, sigma=0.5)
        rng = np.random.default_rng(1)
        samples = [model.sample(rng) for _ in range(4000)]
        assert 360.0 < float(np.median(samples)) < 440.0

    def test_scale_shifts_the_distribution(self):
        model = LatencyModel(median_ms=400.0, sigma=0.3)
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        fast = [model.sample(rng_a, scale=0.5) for _ in range(500)]
        slow = [model.sample(rng_b, scale=1.0) for _ in range(500)]
        assert float(np.median(fast)) < float(np.median(slow))

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(median_ms=0.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(median_ms=100.0, sigma=0.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(median_ms=100.0, minimum_ms=-5.0)

    def test_sample_rejects_non_positive_scale(self):
        model = LatencyModel(median_ms=100.0)
        with pytest.raises(ValueError):
            model.sample(np.random.default_rng(0), scale=0.0)

    def test_quantile_is_monotonic(self):
        model = LatencyModel(median_ms=300.0, sigma=0.5)
        assert model.quantile(0.25) < model.quantile(0.5) < model.quantile(0.9)


class TestBidBehavior:
    def test_bid_probability_zero_never_bids(self):
        behavior = BidBehavior(bid_probability=0.0)
        rng = np.random.default_rng(0)
        assert not any(behavior.will_bid(rng) for _ in range(100))

    def test_bid_probability_one_always_bids(self):
        behavior = BidBehavior(bid_probability=1.0)
        rng = np.random.default_rng(0)
        assert all(behavior.will_bid(rng) for _ in range(100))

    def test_cpm_scales_with_multipliers(self):
        behavior = BidBehavior(bid_probability=1.0, base_cpm=0.05, cpm_sigma=0.2)
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        size = AdSlotSize(300, 250)
        cheap = [behavior.sample_cpm(rng_a, size, size_multiplier=1.0) for _ in range(300)]
        pricey = [behavior.sample_cpm(rng_b, size, size_multiplier=3.0) for _ in range(300)]
        assert float(np.median(pricey)) > 2.0 * float(np.median(cheap))

    def test_cpm_is_positive_and_rounded(self):
        behavior = BidBehavior(bid_probability=1.0, base_cpm=0.0005, cpm_sigma=0.8)
        rng = np.random.default_rng(4)
        cpm = behavior.sample_cpm(rng, AdSlotSize(300, 50))
        assert cpm > 0
        assert cpm == round(cpm, 5)

    def test_rejects_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            BidBehavior(bid_probability=1.5)
        with pytest.raises(ConfigurationError):
            BidBehavior(base_cpm=0.0)
        with pytest.raises(ConfigurationError):
            BidBehavior(cpm_sigma=0.0)

    def test_sample_cpm_rejects_bad_multipliers(self):
        behavior = BidBehavior()
        with pytest.raises(ValueError):
            behavior.sample_cpm(np.random.default_rng(0), AdSlotSize(300, 250), size_multiplier=0.0)


class TestDemandPartner:
    def test_slug_and_primary_domain(self):
        partner = make_partner(name="Index Exchange", domains=("indexexchange.com", "casalemedia.com"))
        assert partner.slug == "index-exchange"
        assert partner.primary_domain == "indexexchange.com"
        assert "indexexchange.com" in partner.bid_endpoint()

    def test_respond_always_reports_latency(self):
        partner = make_partner()
        rng = np.random.default_rng(5)
        response = partner.respond(rng, "slot-1", AdSlotSize(300, 250))
        assert response.latency_ms > 0
        assert response.slot_code == "slot-1"
        assert response.did_bid  # bid probability forced to 1.0

    def test_no_bid_partner_returns_none_cpm(self):
        partner = make_partner(bidding=BidBehavior(bid_probability=0.0))
        response = partner.respond(np.random.default_rng(6), "slot-1", AdSlotSize(300, 250))
        assert response.bid_cpm is None
        assert not response.did_bid

    def test_internal_auction_adds_latency(self):
        quiet = make_partner(runs_internal_auction=False)
        chatty = make_partner(name="Chatty", domains=("chatty.com",), runs_internal_auction=True)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        base = np.median([quiet.respond(rng_a, "s", AdSlotSize(300, 250)).latency_ms for _ in range(300)])
        extra = np.median([chatty.respond(rng_b, "s", AdSlotSize(300, 250)).latency_ms for _ in range(300)])
        assert extra > base

    def test_requires_at_least_one_domain(self):
        with pytest.raises(ConfigurationError):
            make_partner(domains=())

    def test_describe_is_json_friendly(self):
        description = make_partner().describe()
        assert description["name"] == "TestBidder"
        assert isinstance(description["domains"], list)

    def test_supported_facets_depend_on_server_side_capability(self):
        plain = make_partner()
        capable = make_partner(name="Capable", domains=("capable.com",), can_run_server_side=True)
        assert HBFacet.SERVER_SIDE not in supported_facets(plain)
        assert HBFacet.SERVER_SIDE in supported_facets(capable)
