"""Unit tests for the static HTML analyzer."""

import pytest

from repro.detector.static_analysis import DEFAULT_LIBRARY_PATTERNS, StaticAnalyzer


HB_PAGE = """
<html><head>
  <script async src="https://cdn.jsdelivr.net/npm/prebid.js@2.44/dist/prebid.js"></script>
  <script src="https://cdn.example/jquery.js"></script>
</head><body></body></html>
"""

PLAIN_PAGE = """
<html><head>
  <script src="https://cdn.example/jquery.js"></script>
  <script src="https://www.google-analytics.com/analytics.js"></script>
</head><body>no ads here</body></html>
"""

MISLEADING_PAGE = """
<html><head>
  <script src="https://cdn.example/auction-widget-headerbid-theme.js"></script>
</head><body></body></html>
"""

RENAMED_PAGE = """
<html><head>
  <script src="https://pub.example/static/bundle-123.min.js"></script>
</head><body></body></html>
"""


@pytest.fixture()
def analyzer():
    return StaticAnalyzer()


class TestStaticAnalyzer:
    def test_detects_prebid_script_tag(self, analyzer):
        detection = analyzer.analyze("pub.example", HB_PAGE)
        assert detection.hb_detected
        assert any("prebid" in pattern for pattern in detection.matched_patterns)
        assert detection.n_matches == 1

    def test_plain_page_is_negative(self, analyzer):
        assert not analyzer.analyze("plain.example", PLAIN_PAGE).hb_detected

    def test_misleading_script_name_is_a_false_positive(self, analyzer):
        # This is exactly the weakness of static analysis the paper describes.
        assert analyzer.analyze("tricky.example", MISLEADING_PAGE).hb_detected

    def test_renamed_wrapper_is_a_false_negative(self, analyzer):
        assert not analyzer.analyze("renamed.example", RENAMED_PAGE).hb_detected

    def test_script_sources_are_extracted(self, analyzer):
        sources = analyzer.script_sources(HB_PAGE)
        assert len(sources) == 2
        assert sources[0].endswith("prebid.js")

    def test_analyze_many_preserves_order(self, analyzer):
        results = analyzer.analyze_many([("a.example", HB_PAGE), ("b.example", PLAIN_PAGE)])
        assert [r.domain for r in results] == ["a.example", "b.example"]
        assert [r.hb_detected for r in results] == [True, False]

    def test_custom_patterns_replace_defaults(self):
        analyzer = StaticAnalyzer(patterns=(r"adzerk\.js",))
        assert not analyzer.analyze("pub.example", HB_PAGE).hb_detected
        assert analyzer.patterns == (r"adzerk\.js",)

    def test_gpt_alone_is_not_treated_as_hb(self, analyzer):
        gpt_page = '<script src="https://www.googletagservices.com/tag/js/gpt.js"></script>'
        assert not analyzer.analyze("gpt.example", gpt_page).hb_detected

    def test_requires_at_least_one_pattern(self):
        with pytest.raises(ValueError):
            StaticAnalyzer(patterns=())

    def test_default_patterns_cover_known_wrappers(self):
        joined = " ".join(DEFAULT_LIBRARY_PATTERNS)
        assert "prebid" in joined and "pubfood" in joined
