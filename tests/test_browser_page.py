"""Unit tests for page construction."""

import pytest

from repro.browser.page import WRAPPER_SCRIPT_URLS, build_page
from repro.models import WrapperKind


class TestBuildPage:
    def test_hb_page_embeds_wrapper_script(self, hb_publisher):
        page = build_page(hb_publisher, seed=3)
        assert page.domain == hb_publisher.domain
        wrapper_url = WRAPPER_SCRIPT_URLS[hb_publisher.wrapper]
        assert wrapper_url in page.header_script_urls
        assert wrapper_url in page.html

    def test_hb_page_contains_slot_divs(self, hb_publisher):
        page = build_page(hb_publisher, seed=3)
        for slot in hb_publisher.slots:
            assert slot.code in page.html

    def test_non_hb_page_has_no_wrapper_script(self, non_hb_publisher):
        page = build_page(non_hb_publisher, seed=3)
        for url in WRAPPER_SCRIPT_URLS.values():
            assert url not in page.header_script_urls

    def test_load_costs_are_positive_and_bounded(self, hb_publisher):
        page = build_page(hb_publisher, seed=3)
        assert 60 <= page.html_fetch_ms <= 3_000
        assert 400 <= page.content_load_ms <= 30_000

    def test_page_build_is_deterministic_per_seed(self, hb_publisher):
        a = build_page(hb_publisher, seed=3)
        b = build_page(hb_publisher, seed=3)
        c = build_page(hb_publisher, seed=4)
        assert a.html == b.html
        assert a.html_fetch_ms == b.html_fetch_ms
        assert (a.html_fetch_ms, a.content_load_ms) != (c.html_fetch_ms, c.content_load_ms)

    def test_baseline_resources_are_a_subset_of_catalogue(self, non_hb_publisher):
        page = build_page(non_hb_publisher, seed=3)
        assert 3 <= len(page.baseline_resources) <= 6
