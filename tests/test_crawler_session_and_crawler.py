"""Unit tests for crawl sessions and the crawl driver."""

import pytest

from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.session import CrawlSession
from repro.errors import ConfigurationError, CrawlError


class TestCrawlSession:
    def test_load_counts_pages(self, environment, hb_publisher):
        session = CrawlSession(environment, seed=3)
        session.load(hb_publisher)
        session.load(hb_publisher, visit_index=1)
        assert session.pages_loaded == 2

    def test_killed_session_refuses_loads(self, environment, hb_publisher):
        session = CrawlSession(environment, seed=3)
        session.kill()
        with pytest.raises(CrawlError):
            session.load(hb_publisher)

    def test_restart_returns_clean_session(self, environment, hb_publisher):
        session = CrawlSession(environment, seed=3, page_load_timeout_ms=45_000)
        session.load(hb_publisher)
        session.kill()
        fresh = session.restart()
        assert fresh.pages_loaded == 0
        assert not fresh.killed
        assert fresh.page_load_timeout_ms == 45_000


class TestCrawlConfig:
    def test_defaults_follow_paper(self):
        config = CrawlConfig()
        assert config.page_load_timeout_ms == 60_000.0
        assert config.extra_dwell_ms == 5_000.0
        assert config.restart_every_pages == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrawlConfig(page_load_timeout_ms=0)
        with pytest.raises(ConfigurationError):
            CrawlConfig(extra_dwell_ms=-1)
        with pytest.raises(ConfigurationError):
            CrawlConfig(restart_every_pages=0)


class TestCrawler:
    @pytest.fixture(scope="class")
    def crawl_result(self, environment, detector, small_population):
        crawler = Crawler(environment, detector, CrawlConfig(seed=5))
        return crawler.crawl(list(small_population)[:120])

    def test_one_detection_per_site(self, crawl_result):
        assert len(crawl_result.detections) == 120
        assert crawl_result.pages_visited == 120

    def test_adoption_rate_matches_detections(self, crawl_result):
        expected = len(crawl_result.hb_detections) / len(crawl_result.detections)
        assert crawl_result.adoption_rate == pytest.approx(expected)
        assert 0.0 < crawl_result.adoption_rate < 0.5

    def test_clean_state_means_one_session_per_page(self, crawl_result):
        assert crawl_result.sessions_started >= crawl_result.pages_visited

    def test_progress_callback_called_per_page(self, environment, detector, small_population):
        seen = []
        crawler = Crawler(environment, detector)
        crawler.crawl(list(small_population)[:10], progress=lambda i, n, d: seen.append((i, n)))
        assert seen[0] == (1, 10)
        assert seen[-1] == (10, 10)

    def test_crawl_domains_restricts_to_requested_sites(self, environment, detector, small_population):
        crawler = Crawler(environment, detector)
        domains = small_population.domains[:5]
        result = crawler.crawl_domains(small_population, domains)
        assert [d.domain for d in result.detections] == list(domains)

    def test_timeouts_are_recorded_and_crawl_continues(self, environment, detector, small_population):
        crawler = Crawler(environment, detector,
                          CrawlConfig(seed=5, page_load_timeout_ms=10.0))
        result = crawler.crawl(list(small_population)[:15])
        assert len(result.timed_out_domains) == 15
        assert len(result.detections) == 15
