"""Offline analysis: ``from_jsonl`` ingestion and the ``analyze`` CLI round-trip.

A crawl saved with ``run --save`` must be analysable any number of times
without re-simulating the Web, and the printed artefacts must be
byte-identical to the in-memory path.
"""

import pytest

from repro.analysis.dataset import CrawlDataset
from repro.cli import build_parser, main
from repro.crawler.storage import CrawlStorage
from repro.errors import StorageError

#: Every artefact the offline path supports, exercised end to end.
OFFLINE_ARTIFACTS = [
    "table1", "adoption", "facet",
    "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
    "fig24",
]


class TestFromJsonl:
    def test_round_trips_detections_exactly(self, experiment_artifacts, tmp_path):
        path = tmp_path / "crawl.jsonl"
        CrawlStorage(path).save(experiment_artifacts.dataset.detections)
        loaded = CrawlDataset.from_jsonl(path)
        assert loaded.detections == experiment_artifacts.dataset.detections
        assert loaded.label == "crawl"

    def test_label_defaults_to_file_stem_and_can_be_overridden(self, experiment_artifacts, tmp_path):
        path = tmp_path / "campaign-2019.jsonl"
        CrawlStorage(path).save(experiment_artifacts.dataset.detections[:5])
        assert CrawlDataset.from_jsonl(path).label == "campaign-2019"
        assert CrawlDataset.from_jsonl(path, label="x").label == "x"

    def test_summary_matches_in_memory_dataset(self, experiment_artifacts, tmp_path):
        path = tmp_path / "crawl.jsonl"
        CrawlStorage(path).save(experiment_artifacts.dataset.detections)
        assert CrawlDataset.from_jsonl(path).summary() == experiment_artifacts.dataset.summary()

    def test_missing_file_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError):
            CrawlDataset.from_jsonl(tmp_path / "nope.jsonl")


class TestAnalyzeCli:
    def test_analyze_parser_accepts_artifact_and_figures_aliases(self):
        args = build_parser().parse_args(["analyze", "c.jsonl", "--artifact", "table1"])
        assert args.figures == ["table1"]
        args = build_parser().parse_args(["analyze", "c.jsonl", "--figures", "fig12"])
        assert args.figures == ["fig12"]

    def test_analyze_rejects_simulation_only_artifacts(self):
        for name in ("accuracy", "waterfall", "prices", "fig04"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["analyze", "c.jsonl", "--artifact", name])

    def test_analyze_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_round_trip_prints_byte_identical_artifacts(self, tmp_path, capsys):
        """``run --save`` then ``analyze`` reproduces the run output exactly."""
        saved = tmp_path / "crawl.jsonl"
        assert main(["run", "--sites", "400", "--days", "1", "--seed", "7",
                     "--save", str(saved), "--figures", *OFFLINE_ARTIFACTS]) == 0
        run_out = capsys.readouterr().out
        # Drop the "Streamed N detections to ..." banner (two lines).
        run_artifacts = run_out.split("\n", 2)[2]

        assert main(["analyze", str(saved), "--artifact", *OFFLINE_ARTIFACTS]) == 0
        analyze_out = capsys.readouterr().out
        assert analyze_out == run_artifacts
