"""Unit tests for HB parameter extraction."""

import pytest

from repro.detector.parameters import extract_hb_parameters, has_hb_parameters
from repro.models import RequestDirection, WebRequest


def make_request(params):
    return WebRequest(url="https://example.com/x", method="GET",
                      direction=RequestDirection.OUTGOING, timestamp_ms=1.0, params=params)


class TestExtractHbParameters:
    def test_global_keys_are_collected(self):
        params = extract_hb_parameters({"hb_bidder": "appnexus", "hb_pb": "0.50", "other": "x"})
        assert params.global_values == {"hb_bidder": "appnexus", "hb_pb": "0.50"}
        assert not params.per_slot

    def test_slot_suffixed_keys_are_grouped_per_slot(self):
        params = extract_hb_parameters({
            "hb_bidder_div-1": "criteo",
            "hb_pb_div-1": "0.20",
            "hb_bidder_div-2": "rubicon",
            "hb_size_div-2": "728x90",
        })
        assert set(params.slot_codes) == {"div-1", "div-2"}
        assert params.bidder_for_slot("div-1") == "criteo"
        assert params.bidder_for_slot("div-2") == "rubicon"
        assert params.size_for_slot("div-2") == "728x90"

    def test_slot_codes_with_underscores_and_dots_survive(self):
        params = extract_hb_parameters({"hb_cpm_div-gpt-ad-site-000123.example-0": "0.03"})
        assert params.slot_codes == ("div-gpt-ad-site-000123.example-0",)
        assert params.price_for_slot("div-gpt-ad-site-000123.example-0") == pytest.approx(0.03)

    def test_price_prefers_cpm_over_bucket(self):
        params = extract_hb_parameters({"hb_cpm_slot": "0.456", "hb_pb_slot": "0.45"})
        assert params.price_for_slot("slot") == pytest.approx(0.456)

    def test_price_falls_back_to_global_bucket(self):
        params = extract_hb_parameters({"hb_pb": "0.45", "hb_bidder_slot": "ix"})
        assert params.price_for_slot("slot") == pytest.approx(0.45)

    def test_unparseable_price_returns_none(self):
        params = extract_hb_parameters({"hb_pb_slot": "free"})
        assert params.price_for_slot("slot") is None

    def test_empty_when_no_hb_keys(self):
        params = extract_hb_parameters({"price": "1.0", "auction_id": "x"})
        assert params.is_empty


class TestHasHbParameters:
    def test_true_for_suffixed_and_plain_keys(self):
        assert has_hb_parameters(make_request({"hb_bidder": "appnexus"}))
        assert has_hb_parameters(make_request({"hb_size_slot-3": "300x250"}))

    def test_false_for_rtb_notification_params(self):
        assert not has_hb_parameters(make_request({"price": "0.5", "imp_id": "slot"}))

    def test_false_for_lookalike_keys(self):
        assert not has_hb_parameters(make_request({"hbx_token": "1", "habit": "2"}))
