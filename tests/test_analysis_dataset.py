"""Unit tests for the crawl dataset container."""

import pytest

from repro.analysis.dataset import CrawlDataset
from repro.detector.records import ObservedAuction, ObservedBid, SiteDetection
from repro.errors import EmptyDatasetError
from repro.models import HBFacet


def detection(domain, day=0, hb=True, facet=HBFacet.CLIENT_SIDE, partners=("AppNexus",),
              n_bids=1, late=0, latency=500.0, rank=10):
    bids = tuple(
        ObservedBid(partner=partners[0], bidder_code=partners[0].lower(), slot_code="s1",
                    cpm=0.2, size="300x250", latency_ms=200.0, late=(i < late))
        for i in range(n_bids)
    )
    auctions = (ObservedAuction(slot_code="s1", size="300x250", bids=bids,
                                start_ms=0.0, end_ms=latency, facet=facet),) if hb else ()
    return SiteDetection(
        domain=domain, rank=rank, hb_detected=hb, facet=facet if hb else None,
        partners=partners if hb else (), auctions=auctions,
        partner_latencies_ms={partners[0]: 200.0} if hb else {},
        total_latency_ms=latency if hb else None, crawl_day=day,
    )


@pytest.fixture()
def mixed_dataset():
    return CrawlDataset.from_detections([
        detection("a.example", day=0, facet=HBFacet.CLIENT_SIDE, n_bids=2, late=1),
        detection("a.example", day=1, facet=HBFacet.CLIENT_SIDE, n_bids=1),
        detection("b.example", day=0, facet=HBFacet.SERVER_SIDE, partners=("DFP",)),
        detection("c.example", day=0, hb=False),
    ])


class TestCrawlDataset:
    def test_sites_deduplicate_by_domain(self, mixed_dataset):
        assert len(mixed_dataset) == 4
        assert len(mixed_dataset.sites()) == 3
        assert len(mixed_dataset.hb_sites()) == 2

    def test_hb_detections_include_recrawls(self, mixed_dataset):
        assert len(mixed_dataset.hb_detections()) == 3

    def test_auctions_and_bids_flatten_across_visits(self, mixed_dataset):
        assert len(mixed_dataset.auctions()) == 3
        assert len(mixed_dataset.bids()) == 4
        assert len(mixed_dataset.priced_bids()) == 4

    def test_groupers(self, mixed_dataset):
        by_facet = mixed_dataset.by_facet()
        assert len(by_facet[HBFacet.CLIENT_SIDE]) == 1
        assert len(by_facet[HBFacet.SERVER_SIDE]) == 1
        assert set(mixed_dataset.bids_by_partner()) == {"AppNexus", "DFP"}
        assert mixed_dataset.partner_site_counts() == {"AppNexus": 1, "DFP": 1}

    def test_partner_latency_and_site_latency_samples(self, mixed_dataset):
        latencies = mixed_dataset.partner_latency_samples()
        assert len(latencies["AppNexus"]) == 2
        site_latencies = mixed_dataset.site_latencies()
        assert len(site_latencies["a.example"]) == 2

    def test_summary_counts_match_views(self, mixed_dataset):
        summary = mixed_dataset.summary()
        assert summary["websites_crawled"] == 3
        assert summary["websites_with_hb"] == 2
        assert summary["auctions_detected"] == 3
        assert summary["bids_detected"] == 4
        assert summary["competing_demand_partners"] == 2
        assert summary["crawl_days"] == 2
        assert summary["page_visits"] == 4

    def test_filter_returns_new_dataset(self, mixed_dataset):
        only_day_zero = mixed_dataset.filter(lambda d: d.crawl_day == 0, label="day0")
        assert len(only_day_zero) == 3
        assert only_day_zero.label == "day0"
        assert len(mixed_dataset) == 4  # original untouched

    def test_empty_summary_raises(self):
        with pytest.raises(EmptyDatasetError):
            CrawlDataset().summary()

    def test_extend_appends_detections(self, mixed_dataset):
        before = len(mixed_dataset)
        mixed_dataset.extend([detection("d.example", hb=False)])
        assert len(mixed_dataset) == before + 1

    def test_crawl_days_sorted(self, mixed_dataset):
        assert mixed_dataset.crawl_days() == (0, 1)


class TestIndexCache:
    def test_views_are_cached_between_calls(self, mixed_dataset):
        first = mixed_dataset.hb_detections()
        assert mixed_dataset.hb_detections() is first
        assert mixed_dataset.bids() is mixed_dataset.bids()
        assert mixed_dataset.partner_site_counts() is mixed_dataset.partner_site_counts()

    def test_repeat_access_builds_each_index_once(self, mixed_dataset):
        for _ in range(3):
            mixed_dataset.hb_sites()
            mixed_dataset.auctions()
            mixed_dataset.summary()
        stats = mixed_dataset.index_stats()
        assert stats["builds"] == stats["cached"]

    def test_extend_invalidates_indices(self, mixed_dataset):
        assert len(mixed_dataset.sites()) == 3
        assert len(mixed_dataset.hb_sites()) == 2
        mixed_dataset.extend([detection("d.example", day=0, facet=HBFacet.HYBRID)])
        assert len(mixed_dataset.sites()) == 4
        assert len(mixed_dataset.hb_sites()) == 3
        assert mixed_dataset.summary()["websites_with_hb"] == 3

    def test_manual_invalidate_after_direct_mutation(self, mixed_dataset):
        mixed_dataset.sites()
        mixed_dataset.detections.append(detection("e.example", hb=False))
        mixed_dataset.invalidate_indices()
        assert len(mixed_dataset.sites()) == 4
        assert mixed_dataset.index_stats()["cached"] == 1

    def test_rank_bin_index_is_parameterised(self, mixed_dataset):
        by_10 = mixed_dataset.hb_latencies_by_rank_bin(10)
        by_5 = mixed_dataset.hb_latencies_by_rank_bin(5)
        assert mixed_dataset.hb_latencies_by_rank_bin(10) is by_10
        assert by_5 is not by_10
        assert sum(len(v) for v in by_10.values()) == len(mixed_dataset.hb_latency_values())

    def test_rank_bin_rejects_non_positive_width(self, mixed_dataset):
        with pytest.raises(ValueError):
            mixed_dataset.hb_latencies_by_rank_bin(0)

    def test_filtered_dataset_has_a_fresh_cache(self, mixed_dataset):
        mixed_dataset.hb_detections()
        filtered = mixed_dataset.filter(lambda d: d.crawl_day == 0)
        assert filtered.index_stats() == {"cached": 0, "builds": 0}
        assert len(filtered.hb_detections()) == 2
