"""Unit tests for the DOM-event inspector."""

import pytest

from repro.detector.dom_inspector import DomEventInspector
from repro.models import DomEvent


def event(name, t=0.0, **payload):
    return DomEvent(name=name, timestamp_ms=t, payload=payload)


@pytest.fixture()
def inspector():
    return DomEventInspector()


class TestDomEventInspector:
    def test_lifecycle_events_prove_hb(self, inspector):
        observations = inspector.inspect([event("auctionInit", 10.0, auctionId="a", library="prebid.js")])
        assert observations.hb_events_seen
        assert observations.library == "prebid.js"
        assert observations.auction_ids == ["a"]
        assert observations.auction_started_at_ms == 10.0

    def test_render_events_alone_are_not_proof(self, inspector):
        observations = inspector.inspect([event("slotRenderEnded", 5.0, adUnitCode="s", size="300x250")])
        assert not observations.hb_events_seen
        assert observations.rendered_slots == {"s": None}

    def test_bid_response_and_bid_won_are_collected(self, inspector):
        observations = inspector.inspect([
            event("bidResponse", 100.0, bidder="appnexus", adUnitCode="s1", cpm=0.4,
                  size="300x250", timeToRespond=210.0),
            event("bidWon", 400.0, bidder="appnexus", adUnitCode="s1", cpm=0.4, size="300x250"),
        ])
        assert len(observations.bids) == 2
        assert observations.bidders_seen == ("appnexus",)
        assert len(observations.winning_bids) == 1
        assert observations.bids[0].time_to_respond_ms == pytest.approx(210.0)

    def test_timeout_event_lists_bidders(self, inspector):
        observations = inspector.inspect([event("bidTimeout", 300.0, bidders=["sovrn", "criteo"])])
        assert observations.timed_out_bidders == ["sovrn", "criteo"]

    def test_auction_end_sets_end_and_derives_start(self, inspector):
        observations = inspector.inspect([event("auctionEnd", 800.0, auctionDuration=600.0)])
        assert observations.auction_ended_at_ms == 800.0
        assert observations.auction_started_at_ms == pytest.approx(200.0)

    def test_failed_render_is_tracked(self, inspector):
        observations = inspector.inspect([event("adRenderFailed", 900.0, adUnitCode="s2", reason="x")])
        assert observations.failed_slots == ["s2"]

    def test_unknown_events_are_ignored(self, inspector):
        observations = inspector.inspect([event("click", 1.0), event("scroll", 2.0)])
        assert not observations.hb_events_seen
        assert not observations.bids

    def test_missing_numeric_payloads_become_none(self, inspector):
        observations = inspector.inspect([event("bidResponse", 10.0, bidder="ix", adUnitCode="s")])
        bid = observations.bids[0]
        assert bid.cpm is None
        assert bid.time_to_respond_ms is None
