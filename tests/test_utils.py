"""Unit tests for the cross-cutting helpers in repro.utils."""

import numpy as np
import pytest

from repro.utils.ids import IdFactory, slugify
from repro.utils.rng import derive_rng, spawn_rngs, stable_hash, weighted_choice
from repro.utils.urls import build_url, parse_query, url_host, url_path


class TestRng:
    def test_derive_rng_is_deterministic(self):
        a = derive_rng(7, "partners", "criteo")
        b = derive_rng(7, "partners", "criteo")
        assert a.random() == b.random()

    def test_derive_rng_differs_across_keys(self):
        a = derive_rng(7, "partners", "criteo")
        b = derive_rng(7, "partners", "rubicon")
        assert a.random() != b.random()

    def test_derive_rng_differs_across_seeds(self):
        assert derive_rng(1, "x").random() != derive_rng(2, "x").random()

    def test_stable_hash_is_stable(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)
        assert stable_hash("a", 1) != stable_hash("a", 2)

    def test_spawn_rngs_preserves_order_and_count(self):
        rngs = spawn_rngs(3, ["a", "b", "c"])
        assert len(rngs) == 3
        assert rngs[0].random() == derive_rng(3, "a").random()

    def test_weighted_choice_respects_zero_weight(self):
        rng = np.random.default_rng(0)
        picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0]) for _ in range(20)}
        assert picks == {"a"}

    def test_weighted_choice_validates_input(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [0.0])


class TestUrls:
    def test_build_url_with_params(self):
        url = build_url("ib.adnxs.com", "/ut/v3", {"bidder": "appnexus", "n": 2})
        assert url == "https://ib.adnxs.com/ut/v3?bidder=appnexus&n=2"

    def test_build_url_normalises_missing_slash(self):
        assert build_url("a.example", "path") == "https://a.example/path"

    def test_build_url_requires_host(self):
        with pytest.raises(ValueError):
            build_url("", "/x")

    def test_parse_query_round_trips(self):
        url = build_url("x.example", "/p", {"a": "1", "b": "two"})
        assert parse_query(url) == {"a": "1", "b": "two"}

    def test_parse_query_keeps_blank_values(self):
        assert parse_query("https://x.example/p?a=&b=1") == {"a": "", "b": "1"}

    def test_url_host_lowercases(self):
        assert url_host("https://CDN.Example.com/x") == "cdn.example.com"

    def test_url_path_defaults_to_root(self):
        assert url_path("https://x.example") == "/"
        assert url_path("https://x.example/a/b?q=1") == "/a/b"


class TestIds:
    def test_slugify_collapses_non_alphanumerics(self):
        assert slugify("Index Exchange") == "index-exchange"
        assert slugify("EMX Digital!") == "emx-digital"

    def test_slugify_never_returns_empty(self):
        assert slugify("!!!") == "x"

    def test_id_factory_counts_per_namespace(self):
        ids = IdFactory()
        assert ids.next("auction") == "auction-000000"
        assert ids.next("auction") == "auction-000001"
        assert ids.next("bid") == "bid-000000"

    def test_id_factory_prefix_and_reset(self):
        ids = IdFactory(prefix="run1")
        assert ids.next("auction").startswith("run1-auction-")
        ids.reset()
        assert ids.next("auction") == "run1-auction-000000"
