"""Property-based tests on core invariants, using hypothesis.

These complement the unit tests by exploring the input space of the core data
structures and protocol components: price bucketing, parameter extraction,
detector records, storage round-trips and the ad-server decision rule.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawler.storage import detection_from_dict, detection_to_dict
from repro.detector.parameters import extract_hb_parameters
from repro.detector.records import ObservedAuction, ObservedBid, SiteDetection
from repro.ecosystem.adserver import AdServer
from repro.ecosystem.partners import BidBehavior, LatencyModel
from repro.ecosystem.registry import default_registry
from repro.hb.events import price_bucket
from repro.models import AdSlot, AdSlotSize, HBFacet, SaleChannel
from repro.utils.ids import slugify
from repro.utils.rng import derive_rng

_REGISTRY = default_registry()

slot_codes = st.text(alphabet="abcdefghij-0123456789", min_size=1, max_size=20).map(
    lambda s: f"slot-{s}"
)
cpms = st.floats(min_value=0.0001, max_value=50.0, allow_nan=False)


class TestPriceBucketProperties:
    @given(cpms)
    @settings(max_examples=100, deadline=None)
    def test_bucket_never_exceeds_cpm(self, cpm):
        bucket = float(price_bucket(cpm))
        assert bucket <= min(cpm, 20.0) + 1e-9

    @given(cpms)
    @settings(max_examples=100, deadline=None)
    def test_bucket_is_within_one_increment(self, cpm):
        bucket = float(price_bucket(cpm))
        assert min(cpm, 20.0) - bucket < 0.01 + 1e-9


class TestParameterExtractionProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["hb_bidder", "hb_pb", "hb_size", "hb_cpm"]),
            st.text(min_size=1, max_size=8),
            min_size=1,
            max_size=4,
        ),
        slot_codes,
    )
    @settings(max_examples=100, deadline=None)
    def test_suffixed_keys_always_recovered(self, hb_values, slot_code):
        params = {f"{key}_{slot_code}": value for key, value in hb_values.items()}
        extracted = extract_hb_parameters(params)
        assert extracted.slot_codes == (slot_code,)
        assert dict(extracted.per_slot[slot_code]) == hb_values

    @given(st.dictionaries(st.text(min_size=1, max_size=12), st.text(max_size=8), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_non_hb_keys_never_extracted(self, params):
        cleaned = {key: value for key, value in params.items()
                   if not any(key.startswith(prefix) for prefix in
                              ("hb_bidder", "hb_pb", "hb_size", "hb_cpm", "hb_adid",
                               "hb_currency", "hb_format", "hb_source"))}
        assert extract_hb_parameters(cleaned).is_empty


class TestLatencyModelProperties:
    @given(st.floats(min_value=20.0, max_value=2_000.0), st.floats(min_value=0.1, max_value=1.0),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_samples_are_at_least_the_minimum(self, median, sigma, seed):
        model = LatencyModel(median_ms=median, sigma=sigma, minimum_ms=15.0)
        assert model.sample(np.random.default_rng(seed)) >= 15.0


class TestBidBehaviorProperties:
    @given(st.floats(min_value=0.001, max_value=1.0), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_cpm_positive_for_any_base(self, base_cpm, seed):
        behavior = BidBehavior(bid_probability=1.0, base_cpm=base_cpm)
        cpm = behavior.sample_cpm(np.random.default_rng(seed), AdSlotSize(300, 250))
        assert cpm > 0


class TestDetectionRoundTripProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["AppNexus", "Criteo", "Rubicon"]), cpms, st.booleans()),
            min_size=0,
            max_size=5,
        ),
        st.integers(min_value=1, max_value=40_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_storage_round_trip_is_lossless(self, bid_specs, rank):
        bids = tuple(
            ObservedBid(partner=name, bidder_code=slugify(name), slot_code="s1",
                        cpm=round(cpm, 5), size="300x250", latency_ms=100.0, late=late)
            for name, cpm, late in bid_specs
        )
        auction = ObservedAuction(slot_code="s1", size="300x250", bids=bids,
                                  start_ms=0.0, end_ms=500.0, facet=HBFacet.HYBRID)
        detection = SiteDetection(domain="prop.example", rank=rank, hb_detected=True,
                                  facet=HBFacet.HYBRID, partners=("DFP",), auctions=(auction,),
                                  total_latency_ms=500.0)
        assert detection_from_dict(detection_to_dict(detection)) == detection


class TestAdServerProperties:
    @given(
        st.dictionaries(st.sampled_from(["appnexus", "criteo", "rubicon", "ix"]),
                        cpms, min_size=1, max_size=4),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_header_winner_is_always_the_highest_bid_above_floor(self, bids, floor, seed):
        slot = AdSlot(code="s", primary_size=AdSlotSize(300, 250), floor_cpm=floor)
        server = AdServer(_REGISTRY.get("DFP"), fallback_fill_probability=1.0)
        decision = server.decide(derive_rng(seed, "adserver-prop"), slot, bids)
        best_bidder = max(bids, key=lambda code: bids[code])
        if bids[best_bidder] >= floor:
            assert decision.channel is SaleChannel.HEADER_BIDDING
            assert decision.winner == best_bidder
        else:
            assert decision.channel is not SaleChannel.HEADER_BIDDING
