"""Unit tests for the shared primitive types in repro.models."""

import pytest

from repro.models import (
    AdSlot,
    AdSlotSize,
    DomEvent,
    HBFacet,
    PageTimings,
    PartnerKind,
    RequestDirection,
    STANDARD_SIZES,
    WebRequest,
    WrapperKind,
    parse_size,
)


class TestAdSlotSize:
    def test_label_round_trips_through_parse(self):
        size = AdSlotSize(300, 250)
        assert parse_size(size.label) == size

    def test_area_is_width_times_height(self):
        assert AdSlotSize(728, 90).area == 728 * 90

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            AdSlotSize(0, 250)
        with pytest.raises(ValueError):
            AdSlotSize(300, -1)

    def test_parse_accepts_upper_case_separator(self):
        assert parse_size("300X600") == AdSlotSize(300, 600)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("banner")
        with pytest.raises(ValueError):
            parse_size("300x")

    def test_standard_sizes_include_paper_top_sizes(self):
        labels = {size.label for size in STANDARD_SIZES}
        assert {"300x250", "728x90", "300x600"} <= labels

    def test_ordering_is_deterministic(self):
        assert sorted([AdSlotSize(728, 90), AdSlotSize(300, 250)])[0] == AdSlotSize(300, 250)


class TestAdSlot:
    def test_primary_size_always_in_sizes(self):
        slot = AdSlot(code="slot-1", primary_size=AdSlotSize(300, 250), sizes=(AdSlotSize(728, 90),))
        assert AdSlotSize(300, 250) in slot.sizes
        assert "300x250" in slot.accepted_labels

    def test_defaults_sizes_to_primary(self):
        slot = AdSlot(code="slot-1", primary_size=AdSlotSize(300, 250))
        assert slot.sizes == (AdSlotSize(300, 250),)

    def test_rejects_empty_code(self):
        with pytest.raises(ValueError):
            AdSlot(code="", primary_size=AdSlotSize(300, 250))

    def test_rejects_negative_floor(self):
        with pytest.raises(ValueError):
            AdSlot(code="slot", primary_size=AdSlotSize(300, 250), floor_cpm=-0.1)


class TestEnums:
    def test_facet_values_match_paper_terms(self):
        assert {facet.value for facet in HBFacet} == {"client-side", "server-side", "hybrid"}

    def test_wrapper_kinds_include_prebid(self):
        assert WrapperKind.PREBID.value == "prebid.js"

    def test_partner_kind_str(self):
        assert str(PartnerKind.DSP) == "dsp"


class TestDomEvent:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            DomEvent(name="", timestamp_ms=1.0)

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError):
            DomEvent(name="auctionEnd", timestamp_ms=-1.0)

    def test_get_reads_payload_with_default(self):
        event = DomEvent(name="bidWon", timestamp_ms=0.0, payload={"cpm": 1.5})
        assert event.get("cpm") == 1.5
        assert event.get("missing", "x") == "x"


class TestWebRequest:
    def _request(self, url, direction=RequestDirection.OUTGOING):
        return WebRequest(url=url, method="GET", direction=direction, timestamp_ms=1.0)

    def test_host_strips_scheme_port_and_path(self):
        request = self._request("https://ib.adnxs.com:443/ut/v3?x=1")
        assert request.host == "ib.adnxs.com"

    def test_matches_host_accepts_subdomains(self):
        request = self._request("https://ib.adnxs.com/ut")
        assert request.matches_host(["adnxs.com"])
        assert not request.matches_host(["rubiconproject.com"])

    def test_matches_host_requires_domain_boundary(self):
        request = self._request("https://notadnxs.com/x")
        assert not request.matches_host(["adnxs.com"])

    def test_rejects_empty_url(self):
        with pytest.raises(ValueError):
            self._request("")


class TestPageTimings:
    def test_page_load_is_difference(self):
        timings = PageTimings(0.0, 100.0, 500.0, 1200.0)
        assert timings.page_load_ms == pytest.approx(1200.0)

    def test_rejects_unordered_timings(self):
        with pytest.raises(ValueError):
            PageTimings(0.0, 500.0, 100.0, 1200.0)

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            PageTimings(-1.0, 0.0, 0.0, 0.0)
