"""Unit tests for the wrapper base class and factory."""

import pytest

from repro.browser.context import BrowserContext
from repro.errors import ConfigurationError
from repro.hb.events import HBEventName
from repro.hb.gpt import GptWrapper
from repro.hb.prebid import PrebidWrapper
from repro.hb.pubfood import PubfoodWrapper
from repro.hb.wrappers import HBWrapper, build_wrapper
from repro.models import WrapperKind


class TestBuildWrapper:
    def test_factory_picks_class_by_wrapper_kind(self, small_population, environment, rng):
        classes = {
            WrapperKind.PREBID: PrebidWrapper,
            WrapperKind.GPT: GptWrapper,
            WrapperKind.PUBFOOD: PubfoodWrapper,
            WrapperKind.CUSTOM: HBWrapper,
        }
        seen = set()
        for publisher in small_population.hb_publishers():
            context = BrowserContext.clean_slate(rng)
            wrapper = build_wrapper(publisher, context, environment)
            assert isinstance(wrapper, classes[publisher.wrapper])
            seen.add(publisher.wrapper)
        assert WrapperKind.PREBID in seen
        assert WrapperKind.GPT in seen

    def test_wrapper_rejects_non_hb_publisher(self, non_hb_publisher, environment, context):
        with pytest.raises(ConfigurationError):
            HBWrapper(non_hb_publisher, context, environment)


class TestEventEmission:
    @pytest.fixture()
    def prebid(self, client_side_publisher, environment, context):
        return PrebidWrapper(client_side_publisher, context, environment)

    def test_lifecycle_events_carry_library_name(self, prebid, context):
        prebid.emit_auction_init("a-1")
        events = context.dom.events
        assert events[0].name == HBEventName.AUCTION_INIT.value
        assert events[0].payload["library"] == "prebid.js"
        assert events[1].name == HBEventName.REQUEST_BIDS.value

    def test_bid_response_payload_has_price_bucket(self, prebid, context):
        prebid.emit_bid_response("a-1", bidder_code="appnexus", slot_code="slot-1",
                                 cpm=0.537, size_label="300x250", latency_ms=123.4)
        event = context.dom.events[-1]
        assert event.payload["hb_pb"] == "0.53"
        assert event.payload["cpm"] == pytest.approx(0.537)
        assert event.payload["timeToRespond"] == pytest.approx(123.4)

    def test_gpt_wrapper_suppresses_lifecycle_but_keeps_render_events(
        self, hybrid_publisher, environment, context
    ):
        wrapper = GptWrapper(hybrid_publisher, context, environment)
        wrapper.emit_auction_init("a-1")
        wrapper.emit_bid_response("a-1", bidder_code="appnexus", slot_code="s",
                                  cpm=0.2, size_label="300x250", latency_ms=10)
        assert len(context.dom.events) == 0
        wrapper.emit_slot_render_ended(slot_code="s", size_label="300x250", is_empty=False)
        wrapper.emit_auction_end("a-1", n_bids=0, latency_ms=10.0)
        names = [event.name for event in context.dom.events]
        assert HBEventName.SLOT_RENDER_ENDED.value in names
        assert HBEventName.AUCTION_END.value in names

    def test_bid_timeout_only_emitted_with_bidders(self, prebid, context):
        prebid.emit_bid_timeout("a-1", [])
        assert len(context.dom.events) == 0
        prebid.emit_bid_timeout("a-1", ["sovrn"])
        assert context.dom.events[-1].payload["bidders"] == ["sovrn"]

    def test_run_dispatches_to_facet_executor(self, client_side_publisher, environment, context):
        wrapper = PrebidWrapper(client_side_publisher, context, environment)
        outcome = wrapper.run()
        assert outcome.facet is client_side_publisher.facet
        assert outcome.domain == client_side_publisher.domain
