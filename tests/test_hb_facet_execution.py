"""Behavioural tests for the three facet executors (client / server / hybrid)."""

import numpy as np
import pytest

from repro.browser.context import BrowserContext
from repro.hb.events import HBEventName
from repro.hb.wrappers import build_wrapper
from repro.models import HBFacet, RequestDirection
from repro.utils.rng import derive_rng


def run_facet(publisher, environment, seed=21):
    context = BrowserContext.clean_slate(derive_rng(seed, "facet-test", publisher.domain))
    wrapper = build_wrapper(publisher, context, environment)
    outcome = wrapper.run()
    return context, outcome


class TestClientSide:
    def test_outcome_covers_every_auctioned_slot(self, client_side_publisher, environment):
        _, outcome = run_facet(client_side_publisher, environment)
        assert outcome.facet is HBFacet.CLIENT_SIDE
        assert {o.slot.code for o in outcome.slot_outcomes} == {
            slot.code for slot in client_side_publisher.auctioned_slots
        }

    def test_every_partner_is_asked_for_every_slot(self, client_side_publisher, environment):
        _, outcome = run_facet(client_side_publisher, environment)
        for slot_outcome in outcome.slot_outcomes:
            bidders = {bid.partner_name for bid in slot_outcome.bids}
            assert bidders == set(client_side_publisher.partner_names)

    def test_bid_requests_go_to_partner_domains(self, client_side_publisher, environment):
        context, _ = run_facet(client_side_publisher, environment)
        outgoing_hosts = {r.host for r in context.requests.outgoing()}
        for partner in client_side_publisher.partners:
            assert any(host.endswith(partner.primary_domain) for host in outgoing_hosts)

    def test_ad_server_push_targets_publishers_own_host(self, client_side_publisher, environment):
        context, _ = run_facet(client_side_publisher, environment)
        own_host = client_side_publisher.own_ad_server_host
        pushes = [r for r in context.requests.outgoing() if r.host == own_host]
        assert pushes, "client-side HB must push key-values to the publisher's own ad server"

    def test_ad_server_response_defines_total_latency(self, client_side_publisher, environment):
        _, outcome = run_facet(client_side_publisher, environment)
        for slot_outcome in outcome.slot_outcomes:
            assert slot_outcome.ad_server_responded_at_ms >= slot_outcome.ad_server_called_at_ms
            assert slot_outcome.total_latency_ms > 0

    def test_late_flag_matches_ad_server_call_time(self, client_side_publisher, environment):
        _, outcome = run_facet(client_side_publisher, environment)
        for slot_outcome in outcome.slot_outcomes:
            for bid in slot_outcome.bids:
                expected_late = bid.responded_at_ms > slot_outcome.ad_server_called_at_ms
                assert bid.late == expected_late

    def test_winning_bid_is_the_highest_on_time_bid(self, client_side_publisher, environment):
        _, outcome = run_facet(client_side_publisher, environment)
        for slot_outcome in outcome.slot_outcomes:
            priced_on_time = [b for b in slot_outcome.on_time_bids]
            winners = [b for b in slot_outcome.bids if b.won]
            if not priced_on_time:
                assert not winners
                continue
            best = max(priced_on_time, key=lambda b: b.cpm)
            if winners:
                assert winners[0].cpm == pytest.approx(best.cpm)


class TestServerSide:
    def test_single_outgoing_auction_request(self, server_side_publisher, environment):
        context, _ = run_facet(server_side_publisher, environment)
        aggregator = server_side_publisher.partners[0]
        auction_requests = [
            r for r in context.requests.outgoing()
            if r.matches_host(aggregator.domains) and "gampad" in r.url
        ]
        assert len(auction_requests) == 1

    def test_responses_carry_hb_parameters_when_filled(self, server_side_publisher, environment):
        context, outcome = run_facet(server_side_publisher, environment)
        filled_slots = [o for o in outcome.slot_outcomes if o.winner is not None]
        responses_with_hb = [
            r for r in context.requests.incoming() if "hb_bidder" in r.params
        ]
        assert len(responses_with_hb) == len(filled_slots)

    def test_no_auction_lifecycle_events_are_emitted(self, server_side_publisher, environment):
        context, _ = run_facet(server_side_publisher, environment)
        names = {event.name for event in context.dom.events}
        assert HBEventName.BID_RESPONSE.value not in names
        assert HBEventName.AUCTION_INIT.value not in names

    def test_ground_truth_bids_are_never_late(self, server_side_publisher, environment):
        _, outcome = run_facet(server_side_publisher, environment)
        assert all(not bid.late for bid in outcome.all_bids)

    def test_misconfiguration_flag_is_never_set(self, server_side_publisher, environment):
        _, outcome = run_facet(server_side_publisher, environment)
        assert outcome.misconfigured_wrapper is False


class TestHybrid:
    def test_client_bids_and_ad_server_winners_both_present(self, hybrid_publisher, environment):
        context, outcome = run_facet(hybrid_publisher, environment)
        assert outcome.facet is HBFacet.HYBRID
        ad_server = hybrid_publisher.ad_server
        pushes = [
            r for r in context.requests.outgoing()
            if r.matches_host(ad_server.domains) and any(k.startswith("hb_") for k in r.params)
        ]
        assert pushes, "hybrid HB pushes client-side key-values to the partner ad server"

    def test_ad_server_response_arrives_after_push(self, hybrid_publisher, environment):
        _, outcome = run_facet(hybrid_publisher, environment)
        for slot_outcome in outcome.slot_outcomes:
            assert slot_outcome.ad_server_responded_at_ms > slot_outcome.ad_server_called_at_ms

    def test_winner_has_the_highest_considered_cpm(self, hybrid_publisher, environment):
        _, outcome = run_facet(hybrid_publisher, environment)
        for slot_outcome in outcome.slot_outcomes:
            if slot_outcome.winner is None:
                continue
            considered = [b.cpm for b in slot_outcome.bids if b.is_bid and not b.late]
            assert slot_outcome.clearing_cpm == pytest.approx(max(considered))

    def test_total_latency_exceeds_pure_client_phase(self, hybrid_publisher, environment):
        _, outcome = run_facet(hybrid_publisher, environment)
        for slot_outcome in outcome.slot_outcomes:
            assert slot_outcome.total_latency_ms > 0
            assert slot_outcome.ad_server_responded_at_ms > slot_outcome.auction_start_ms
