"""Fast-path equivalence: compiled profiles must change nothing but speed.

The property under test: for any seed, any backend and any worker count, a
crawl simulated through precompiled site profiles, per-worker scratch
buffers and the shared-memory handoff (``fast_path=True``, the default)
produces **byte-identical** sink output and identical values for every
registered offline metric compared to the slow reference path
(``fast_path=False``) that re-derives every per-page input.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import available_metrics, compute_metric
from repro.crawler.crawler import CrawlConfig
from repro.crawler.engine import CrawlEngine, CrawlPlan
from repro.crawler.storage import CrawlStorage, detection_to_dict
from repro.detector.detector import HBDetector
from repro.detector.partner_list import build_known_partner_list
from repro.ecosystem.publishers import PopulationConfig, generate_population
from repro.ecosystem.registry import default_registry
from repro.errors import ReproError
from repro.models import HBFacet


def serialise(detections):
    return json.dumps([detection_to_dict(d) for d in detections])


def metric_texts(path):
    """Every registered offline metric's outcome (text or identical error)."""
    context = AnalysisContext.offline(CrawlDataset.from_jsonl(path))
    names = sorted(available_metrics(frozenset({"dataset"})))
    assert names
    outcomes = {}
    for name in names:
        try:
            outcomes[name] = compute_metric(name, context).text
        except ReproError as exc:
            outcomes[name] = f"{type(exc).__name__}: {exc}"
    return outcomes


@pytest.fixture(scope="module", params=[5, 23])
def workload(request, registry):
    """A population slice covering every facet, misconfiguration and non-HB."""
    seed = request.param
    population = generate_population(PopulationConfig(seed=seed).scaled(180), registry)
    sites = list(population)[:180]
    facets = {p.facet for p in sites if p.uses_hb}
    assert facets == set(HBFacet), "workload must exercise every facet"
    assert any(not p.uses_hb for p in sites)
    assert any(p.uses_hb and p.misconfigured_wrapper for p in sites)
    return seed, sites


@pytest.fixture(scope="module")
def reference(workload, environment, detector, tmp_path_factory):
    """Slow-path serial crawl: sink bytes, detections, offline metrics."""
    seed, sites = workload
    storage = CrawlStorage(tmp_path_factory.mktemp("slow") / "crawl.jsonl")
    config = CrawlConfig(seed=seed, fast_path=False)
    with CrawlEngine(environment, detector, config) as engine, storage.open_sink() as sink:
        result = engine.crawl(sites, sink=sink)
    return storage.path.read_bytes(), serialise(result.detections), metric_texts(storage.path)


class TestFastPathEquivalence:
    @pytest.mark.parametrize("batch_sim", [True, False], ids=["columnar", "scalar"])
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1),
        ("thread", 3),
        ("process", 2),
    ])
    def test_sink_bytes_and_metrics_identical(
        self, workload, reference, environment, detector, tmp_path, backend, workers,
        batch_sim,
    ):
        """Both fast paths — columnar batch (default) and the scalar per-page
        loop it superseded — must match the slow reference byte-for-byte."""
        seed, sites = workload
        ref_bytes, ref_json, ref_metrics = reference
        storage = CrawlStorage(tmp_path / "fast.jsonl")
        config = CrawlConfig(
            seed=seed, workers=workers, backend=backend, batch_sim=batch_sim
        )
        assert config.fast_path  # the default IS the fast path
        assert CrawlConfig(seed=seed).batch_sim  # ... and columnar is its default
        with CrawlEngine(environment, detector, config) as engine, \
                storage.open_sink() as sink:
            result = engine.crawl(sites, sink=sink)
        assert serialise(result.detections) == ref_json
        assert storage.path.read_bytes() == ref_bytes
        assert metric_texts(storage.path) == ref_metrics

    @pytest.mark.parametrize("backend,workers,fail_after", [
        ("serial", 1, 1),
        ("thread", 3, 2),
        ("process", 2, 1),
    ])
    def test_columnar_checkpoint_resume_stays_identical(
        self, workload, reference, environment, detector, tmp_path, backend, workers,
        fail_after,
    ):
        """A columnar crawl killed mid-campaign and resumed must reproduce
        the reference bytes — resume replays only the missing shards, so the
        recovered prefix and the resumed tail must agree on every boundary."""
        from tests.crash_harness import interrupted_then_resumed

        seed, sites = workload
        ref_bytes, ref_json, ref_metrics = reference
        config = CrawlConfig(seed=seed, workers=workers, backend=backend)
        assert config.batch_sim
        result, storage = interrupted_then_resumed(
            environment, detector, config, sites,
            tmp_path=tmp_path, fail_after=fail_after,
        )
        assert serialise(result.detections) == ref_json
        assert storage.path.read_bytes() == ref_bytes
        assert metric_texts(storage.path) == ref_metrics

    def test_columnar_resume_finishes_a_scalar_crawl(
        self, workload, reference, environment, detector, tmp_path
    ):
        """The two fast paths are interchangeable across a crash boundary:
        a crawl started on the scalar loop may be resumed columnar (the
        default after an upgrade) without perturbing a single byte."""
        from tests.crash_harness import interrupted_then_resumed

        seed, sites = workload
        ref_bytes, ref_json, _ = reference
        result, storage = interrupted_then_resumed(
            environment, detector,
            CrawlConfig(seed=seed, workers=3, backend="thread", batch_sim=False),
            sites, tmp_path=tmp_path, fail_after=2,
            resume_config=CrawlConfig(seed=seed, workers=3, backend="thread"),
        )
        assert serialise(result.detections) == ref_json
        assert storage.path.read_bytes() == ref_bytes

    def test_fast_path_warm_engine_stays_identical(
        self, workload, reference, environment, detector
    ):
        """Profile/scratch reuse across crawls and days must not leak state."""
        seed, sites = workload
        _, ref_json, _ = reference
        with CrawlEngine(environment, detector, CrawlConfig(seed=seed)) as engine:
            first = engine.crawl(sites)
            second = engine.crawl(sites)  # warm: profiles compiled, scratch reused
            assert serialise(first.detections) == ref_json
            assert serialise(second.detections) == ref_json
            day1_warm = engine.crawl(sites, crawl_day=1)
        with CrawlEngine(environment, detector, CrawlConfig(seed=seed, fast_path=False)) as engine:
            day1_slow = engine.crawl(sites, crawl_day=1)
        assert serialise(day1_warm.detections) == serialise(day1_slow.detections)

    def test_fast_path_flag_threads_through_experiment_config(self):
        from repro.experiments.config import ExperimentConfig

        assert ExperimentConfig.test_scale().crawl_config().fast_path is True
        import dataclasses

        slow = dataclasses.replace(ExperimentConfig.test_scale(), fast_path=False)
        assert slow.crawl_config().fast_path is False


class TestOversubscribedPlan:
    def test_parallel_plans_oversubscribe(self, small_population):
        sites = list(small_population)[:64]
        plan = CrawlPlan.build(sites, workers=4, seed=3, oversubscribe=4)
        assert len(plan.shards) == 16
        assert plan.site_order == tuple(p.domain for p in sites)

    def test_sequential_plans_stay_single_shard(self, small_population):
        sites = list(small_population)[:64]
        plan = CrawlPlan.build(sites, workers=1, seed=3, oversubscribe=4)
        assert len(plan.shards) == 1

    def test_oversubscribe_is_capped_by_site_count(self, small_population):
        sites = list(small_population)[:5]
        plan = CrawlPlan.build(sites, workers=4, seed=3, oversubscribe=4)
        assert len(plan.shards) == 5
        assert all(len(shard) == 1 for shard in plan.shards)

    def test_engine_plan_uses_config_oversubscribe(
        self, environment, detector, small_population
    ):
        sites = list(small_population)[:64]
        config = CrawlConfig(seed=3, workers=4, backend="thread", shard_oversubscribe=2)
        engine = CrawlEngine(environment, detector, config)
        assert len(engine.plan(sites).shards) == 8

    def test_detections_identical_across_oversubscription(
        self, environment, detector, small_population
    ):
        sites = list(small_population)[:48]
        baseline = None
        for oversubscribe in (1, 3):
            config = CrawlConfig(
                seed=3, workers=4, backend="thread", shard_oversubscribe=oversubscribe
            )
            with CrawlEngine(environment, detector, config) as engine:
                blob = serialise(engine.crawl(sites).detections)
            if baseline is None:
                baseline = blob
            else:
                assert blob == baseline
