"""Shared-memory handoff: payload blocks, site-list publication, cleanup.

The process backend must start workers pickle-free — one shared block for
the environment/detector/config, one per distinct site list — and must not
leak a single block past ``engine.close()`` no matter how many crawls ran.
"""

from __future__ import annotations

import json

import pytest
from multiprocessing import shared_memory

from repro.crawler.crawler import CrawlConfig
from repro.crawler.engine import (
    CrawlEngine,
    ProcessPoolBackend,
    SharedPayload,
    _read_shared_payload,
)
from repro.crawler.storage import detection_to_dict
from repro.errors import ConfigurationError


def block_exists(name: str) -> bool:
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


class TestSharedPayload:
    def test_round_trip(self):
        payload = SharedPayload({"alpha": [1, 2, 3], "beta": "x" * 10_000})
        try:
            assert _read_shared_payload(payload.name, payload.size) == {
                "alpha": [1, 2, 3],
                "beta": "x" * 10_000,
            }
        finally:
            payload.release()
        assert not block_exists(payload.name)

    def test_refcounted_release(self):
        payload = SharedPayload([1, 2, 3])
        payload.retain()
        payload.release()
        assert payload.live
        assert block_exists(payload.name)
        payload.release()
        assert not payload.live
        assert not block_exists(payload.name)

    def test_release_is_idempotent(self):
        payload = SharedPayload("x")
        payload.release()
        payload.release()
        assert not payload.live

    def test_retain_after_release_refused(self):
        payload = SharedPayload("x")
        payload.release()
        with pytest.raises(ConfigurationError):
            payload.retain()


class TestSitePublication:
    def test_same_list_reuses_the_block(self, small_population):
        sites = list(small_population)[:12]
        backend = ProcessPoolBackend(max_workers=2)
        try:
            backend.publish_sites(sites)
            _, first = backend._current_sites
            backend.publish_sites(list(sites))  # new list object, same elements
            _, second = backend._current_sites
            assert second is first
            assert len(backend._site_blocks) == 1
        finally:
            backend.shutdown()
        assert not block_exists(first.name)

    def test_distinct_lists_are_bounded_lru(self, small_population):
        sites = list(small_population)[:40]
        backend = ProcessPoolBackend(max_workers=2)
        try:
            published = []
            for start in range(0, 36, 6):  # 6 distinct lists > SITE_BLOCK_LIMIT
                backend.publish_sites(sites[start : start + 6])
                published.append(backend._current_sites[1])
            assert len(backend._site_blocks) == ProcessPoolBackend.SITE_BLOCK_LIMIT
            evicted = published[: len(published) - ProcessPoolBackend.SITE_BLOCK_LIMIT]
            for block in evicted:
                assert not block.live
        finally:
            backend.shutdown()
        for block in published:
            assert not block_exists(block.name)


class TestEngineLifecycle:
    def serialise(self, detections):
        return json.dumps([detection_to_dict(d) for d in detections])

    def test_warm_crawls_ship_sites_once_and_close_unlinks(
        self, environment, detector, small_population
    ):
        sites = list(small_population)[:16]
        serial = CrawlEngine(environment, detector, CrawlConfig(seed=5)).crawl(sites)
        config = CrawlConfig(seed=5, workers=2, backend="process")
        engine = CrawlEngine(environment, detector, config)
        result = engine.crawl(sites)
        backend = engine.backend
        payload = backend._payload
        _, site_block = backend._current_sites
        assert payload.live and site_block.live
        engine.crawl(sites, crawl_day=1)  # warm: same site block reused
        assert backend._current_sites[1] is site_block
        assert len(backend._site_blocks) == 1
        assert backend.shared_site_tasks > 0
        assert backend.fallback_tasks == 0  # no task ever re-pickled publishers
        engine.close()
        assert not block_exists(payload.name)
        assert not block_exists(site_block.name)
        assert self.serialise(result.detections) == self.serialise(serial.detections)

    def test_engine_reusable_after_close(self, environment, detector, small_population):
        sites = list(small_population)[:8]
        config = CrawlConfig(seed=5, workers=2, backend="process")
        engine = CrawlEngine(environment, detector, config)
        first = engine.crawl(sites)
        engine.close()
        second = engine.crawl(sites)
        engine.close()
        assert self.serialise(first.detections) == self.serialise(second.detections)
