"""Shared fixtures for the test suite.

Expensive objects (the publisher population, a full end-to-end experiment run)
are session-scoped: they are generated once and reused by every test that only
reads them.  Tests that need to mutate state build their own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.browser.context import BrowserContext
from repro.browser.engine import BrowserEngine
from repro.detector.detector import HBDetector
from repro.detector.partner_list import build_known_partner_list
from repro.ecosystem.publishers import PopulationConfig, generate_population
from repro.ecosystem.registry import default_registry
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.hb.environment import AuctionEnvironment


@pytest.fixture(scope="session")
def registry():
    """The default 84-partner registry."""
    return default_registry(seed=2019)


@pytest.fixture(scope="session")
def small_population(registry):
    """A 600-site publisher population with paper-shaped proportions."""
    config = PopulationConfig(seed=7).scaled(600)
    return generate_population(config, registry)


@pytest.fixture(scope="session")
def environment(registry):
    """The default auction environment over the default registry."""
    return AuctionEnvironment(registry=registry)


@pytest.fixture(scope="session")
def engine(environment):
    """A browser engine with a fixed seed."""
    return BrowserEngine(environment, seed=13)


@pytest.fixture(scope="session")
def detector(registry):
    """HBDetector with a complete known-partner list."""
    return HBDetector(build_known_partner_list(registry))


@pytest.fixture(scope="session")
def hb_publisher(small_population):
    """Some HB-enabled publisher from the small population."""
    return small_population.hb_publishers()[0]


@pytest.fixture(scope="session")
def client_side_publisher(small_population):
    from repro.models import HBFacet

    for publisher in small_population.hb_publishers():
        if publisher.facet is HBFacet.CLIENT_SIDE:
            return publisher
    pytest.skip("no client-side publisher in the sample population")


@pytest.fixture(scope="session")
def server_side_publisher(small_population):
    from repro.models import HBFacet

    for publisher in small_population.hb_publishers():
        if publisher.facet is HBFacet.SERVER_SIDE:
            return publisher
    pytest.skip("no server-side publisher in the sample population")


@pytest.fixture(scope="session")
def hybrid_publisher(small_population):
    from repro.models import HBFacet

    for publisher in small_population.hb_publishers():
        if publisher.facet is HBFacet.HYBRID:
            return publisher
    pytest.skip("no hybrid publisher in the sample population")


@pytest.fixture(scope="session")
def non_hb_publisher(small_population):
    for publisher in small_population:
        if not publisher.uses_hb:
            return publisher
    pytest.skip("no non-HB publisher in the sample population")


@pytest.fixture()
def rng():
    """A fresh generator per test (fixed seed for reproducibility)."""
    return np.random.default_rng(42)


@pytest.fixture()
def context(rng):
    """A clean browser context per test."""
    return BrowserContext.clean_slate(rng)


@pytest.fixture(scope="session")
def experiment_artifacts():
    """A complete (tiny) end-to-end experiment run, shared by read-only tests."""
    return ExperimentRunner(ExperimentConfig.test_scale()).run()


@pytest.fixture(scope="session")
def dataset(experiment_artifacts):
    """The crawl dataset of the shared experiment run."""
    return experiment_artifacts.dataset
