"""Unit tests for the auction environment."""

import numpy as np
import pytest

from repro.ecosystem.registry import default_registry
from repro.errors import ConfigurationError
from repro.hb.environment import AuctionEnvironment
from repro.models import AdSlot, AdSlotSize, HBFacet


class TestAuctionEnvironment:
    def test_popularity_rank_orders_by_weight(self, environment, registry):
        dfp = registry.get("DFP")
        sovrn = registry.get("Sovrn")
        assert environment.popularity_rank(dfp) == 1
        assert environment.popularity_rank(dfp) < environment.popularity_rank(sovrn)
        assert environment.total_partners == len(registry)

    def test_price_multiplier_prefers_client_side(self, environment, registry):
        partner = registry.get("Criteo")
        size = AdSlotSize(300, 250)
        client = environment.price_multiplier(partner, size, HBFacet.CLIENT_SIDE)
        server = environment.price_multiplier(partner, size, HBFacet.SERVER_SIDE)
        assert client > server

    def test_partner_response_uses_latency_scale(self, environment, registry):
        partner = registry.get("Rubicon")
        slot = AdSlot(code="s", primary_size=AdSlotSize(300, 250))
        fast = [
            environment.partner_response(np.random.default_rng(i), partner, slot,
                                         HBFacet.CLIENT_SIDE, latency_scale=0.5).latency_ms
            for i in range(200)
        ]
        slow = [
            environment.partner_response(np.random.default_rng(i), partner, slot,
                                         HBFacet.CLIENT_SIDE, latency_scale=1.0).latency_ms
            for i in range(200)
        ]
        assert np.median(fast) < np.median(slow)

    def test_internal_bidders_exclude_requested_partners(self, environment, registry, rng):
        dfp = registry.get("DFP")
        bidders = environment.sample_internal_bidders(rng, exclude=(dfp,))
        assert dfp not in bidders
        low, high = environment.internal_auction_pool
        assert low <= len(bidders) <= high

    def test_ad_server_latency_is_positive(self, environment, rng):
        samples = [environment.ad_server_latency(rng) for _ in range(100)]
        assert all(value >= 10.0 for value in samples)

    def test_rejects_invalid_configuration(self, registry):
        with pytest.raises(ConfigurationError):
            AuctionEnvironment(registry=registry, ad_server_latency_median_ms=0)
        with pytest.raises(ConfigurationError):
            AuctionEnvironment(registry=registry, internal_auction_pool=(0, 3))
        with pytest.raises(ConfigurationError):
            AuctionEnvironment(registry=registry, internal_auction_pool=(5, 3))

    def test_default_registry_is_built_when_omitted(self):
        environment = AuctionEnvironment()
        assert environment.total_partners == len(default_registry())
