"""Unit tests for the columnar simulator's vectorized RNG kernels.

Same contract as ``tests/test_profiles.py``, one level lower: the columnar
path re-implements numpy's ``SeedSequence`` entropy mixing and the PCG64
step/output functions as array arithmetic.  Given the same seeding inputs,
the kernels must produce the *same values* and the *same stream state* as
``numpy.random.Generator`` — bit-for-bit, since one flipped bit anywhere
breaks the crawl's byte-identity guarantee.  If a numpy upgrade changes
either algorithm these tests fail loudly instead of the columnar path
silently diverging from the reference path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecosystem.columnar import (
    _mul128_add,
    _output_doubles,
    _seed_states,
    _visit_entropy,
)
from repro.utils.rng import derive_rng, fast_uniform, stable_hash


def reference_generators(seed, domains, day):
    return [derive_rng(seed, "visit", domain, day) for domain in domains]


def generator_state(gen):
    state = gen.bit_generator.state["state"]
    return state["state"], state["inc"]


def split128(value):
    return np.uint64(value >> 64), np.uint64(value & 0xFFFFFFFFFFFFFFFF)


DOMAINS = [f"site-{i:06d}.example" for i in range(64)] + ["x.y", "a-very.long.domain.example"]


class TestSeedStates:
    @pytest.mark.parametrize("seed", [0, 5, 23, 77, 2019, 2**31 - 1, 2**63 - 1])
    @pytest.mark.parametrize("day", [0, 1, 33])
    def test_matches_derive_rng_initial_state(self, seed, day):
        """Batch seeding lands every stream on derive_rng's exact PCG64 state."""

        class P:
            def __init__(self, domain):
                self.domain = domain

        publishers = [P(d) for d in DOMAINS]
        hi, lo, inc_hi, inc_lo = _seed_states(seed, _visit_entropy(publishers, day))
        for i, gen in enumerate(reference_generators(seed, DOMAINS, day)):
            state, inc = generator_state(gen)
            assert (int(hi[i]) << 64) | int(lo[i]) == state
            assert (int(inc_hi[i]) << 64) | int(lo[i] * 0 + inc_lo[i]) == inc

    def test_visit_entropy_matches_stable_hash(self):
        class P:
            def __init__(self, domain):
                self.domain = domain

        entropy = _visit_entropy([P(d) for d in DOMAINS], 7)
        assert entropy.dtype == np.uint32
        for i, domain in enumerate(DOMAINS):
            assert int(entropy[i]) == stable_hash("visit", domain, 7) & 0xFFFFFFFF


class TestVectorStep:
    def test_matches_generator_random_for_thousands_of_draws(self):
        """Values AND final stream state agree with numpy, elementwise."""
        seed, day = 13, 2
        gens = reference_generators(seed, DOMAINS, day)

        class P:
            def __init__(self, domain):
                self.domain = domain

        hi, lo, inc_hi, inc_lo = _seed_states(seed, _visit_entropy([P(d) for d in DOMAINS], day))
        for _ in range(2000):
            hi, lo = _mul128_add(hi, lo, inc_hi, inc_lo)
            doubles = _output_doubles(hi, lo)
            for i, gen in enumerate(gens):
                assert float(doubles[i]) == float(gen.random())
        for i, gen in enumerate(gens):
            state, inc = generator_state(gen)
            assert (int(hi[i]) << 64) | int(lo[i]) == state
            assert (int(inc_hi[i]) << 64) | int(inc_lo[i]) == inc

    def test_state_activation_resumes_the_stream(self):
        """A scalar Generator activated with a kernel state continues the
        exact stream — the hook the per-page ad simulators rely on."""
        seed, day = 5, 0
        domains = DOMAINS[:8]

        class P:
            def __init__(self, domain):
                self.domain = domain

        hi, lo, inc_hi, inc_lo = _seed_states(seed, _visit_entropy([P(d) for d in domains], day))
        # Consume three draws vectorized, then hand over to a scalar
        # Generator and compare the *next* draws with an untouched reference.
        for _ in range(3):
            hi, lo = _mul128_add(hi, lo, inc_hi, inc_lo)
        gen = np.random.Generator(np.random.PCG64(0))
        template = {
            "bit_generator": "PCG64",
            "state": {"state": 0, "inc": 0},
            "has_uint32": 0,
            "uinteger": 0,
        }
        for i, reference in enumerate(reference_generators(seed, domains, day)):
            for _ in range(3):
                reference.random()
            template["state"]["state"] = (int(hi[i]) << 64) | int(lo[i])
            template["state"]["inc"] = (int(inc_hi[i]) << 64) | int(inc_lo[i])
            gen.bit_generator.state = template
            for _ in range(50):
                assert float(gen.random()) == float(reference.random())
            assert fast_uniform(gen, 5.0, 40.0) == fast_uniform(reference, 5.0, 40.0)
            assert float(gen.lognormal(1.5, 0.4)) == float(reference.lognormal(1.5, 0.4))
            assert int(gen.integers(1, 4)) == int(reference.integers(1, 4))
            assert gen.bit_generator.state["state"] == reference.bit_generator.state["state"]

    def test_folded_uniform_constants_are_bit_exact(self):
        """``5 + 35*u`` / ``3 + 17*u`` over vector doubles equal fast_uniform.

        The columnar plain-page path folds ``low + (high-low)*u`` into
        literal constants; IEEE evaluation order must leave every double
        unchanged versus the scalar helper.
        """
        seed, day = 99, 1
        domains = DOMAINS[:16]

        class P:
            def __init__(self, domain):
                self.domain = domain

        hi, lo, inc_hi, inc_lo = _seed_states(seed, _visit_entropy([P(d) for d in domains], day))
        gens = reference_generators(seed, domains, day)
        for k in range(500):
            hi, lo = _mul128_add(hi, lo, inc_hi, inc_lo)
            u = _output_doubles(hi, lo)
            resource = 5.0 + 35.0 * u
            script = 3.0 + 17.0 * u
            for i, gen in enumerate(gens):
                expected = float(gen.random())
                low, high = ((5.0, 40.0), (3.0, 20.0))[k % 2]
                value = low + (high - low) * expected
                assert float((resource if k % 2 == 0 else script)[i]) == value
