"""Unit and behavioural tests for the waterfall / RTB baseline."""

import numpy as np
import pytest

from repro.browser.context import BrowserContext
from repro.errors import AuctionError
from repro.hb.environment import AuctionEnvironment
from repro.hb.waterfall import (
    WaterfallAdNetwork,
    build_waterfall_chain,
    default_waterfall_slot,
    run_waterfall,
)
from repro.models import AdSlot, AdSlotSize, SaleChannel


@pytest.fixture()
def slot():
    return AdSlot(code="wf-slot", primary_size=AdSlotSize(300, 250))


class TestChainConstruction:
    def test_chain_priorities_are_sequential(self, registry, rng):
        chain = build_waterfall_chain(registry, rng, max_levels=4)
        assert [n.priority for n in chain] == list(range(1, len(chain) + 1))

    def test_chain_prefers_popular_networks(self, registry, rng):
        chains = [build_waterfall_chain(registry, np.random.default_rng(i)) for i in range(30)]
        names = {network.partner.name for chain in chains for network in chain}
        assert "DFP" in names or "AppNexus" in names

    def test_rejects_zero_levels(self, registry, rng):
        with pytest.raises(AuctionError):
            build_waterfall_chain(registry, rng, max_levels=0)

    def test_network_validation(self, registry):
        partner = registry.get("Criteo")
        with pytest.raises(AuctionError):
            WaterfallAdNetwork(partner=partner, priority=0)
        with pytest.raises(AuctionError):
            WaterfallAdNetwork(partner=partner, priority=1, floor_cpm=-1.0)


class TestRunWaterfall:
    def test_outcome_has_positive_latency_and_a_winner(self, registry, environment, slot, rng):
        chain = build_waterfall_chain(registry, rng, max_levels=3)
        outcome = run_waterfall(slot, chain, environment, rng)
        assert outcome.total_latency_ms > 0
        assert outcome.winner is not None
        assert outcome.channel in (SaleChannel.RTB_WATERFALL, SaleChannel.FALLBACK)

    def test_stops_at_first_accepted_level(self, registry, environment, slot):
        rng = np.random.default_rng(3)
        chain = build_waterfall_chain(registry, rng, max_levels=4)
        outcome = run_waterfall(slot, chain, environment, rng)
        accepted = [index for index, p in enumerate(outcome.passes) if p.accepted]
        if accepted:
            assert accepted == [len(outcome.passes) - 1]
            assert outcome.channel is SaleChannel.RTB_WATERFALL

    def test_sequential_latency_accumulates_over_passes(self, registry, environment, slot):
        rng = np.random.default_rng(5)
        chain = build_waterfall_chain(registry, rng, max_levels=4)
        outcome = run_waterfall(slot, chain, environment, rng)
        assert outcome.total_latency_ms >= sum(p.latency_ms for p in outcome.passes) - 1e-6

    def test_real_user_prices_exceed_vanilla_prices(self, registry, environment, slot):
        vanilla, real = [], []
        for index in range(150):
            rng = np.random.default_rng(1000 + index)
            chain = build_waterfall_chain(registry, rng, max_levels=3)
            vanilla_outcome = run_waterfall(slot, chain, environment, np.random.default_rng(index),
                                            real_user=False)
            real_outcome = run_waterfall(slot, chain, environment, np.random.default_rng(index),
                                         real_user=True)
            if vanilla_outcome.channel is SaleChannel.RTB_WATERFALL:
                vanilla.append(vanilla_outcome.clearing_cpm)
            if real_outcome.channel is SaleChannel.RTB_WATERFALL:
                real.append(real_outcome.clearing_cpm)
        assert np.median(real) > np.median(vanilla)

    def test_win_notification_recorded_without_hb_params(self, registry, environment, slot, rng):
        context = BrowserContext.clean_slate(rng)
        # Use several attempts to make sure at least one waterfall sale happens.
        sold = False
        for index in range(20):
            chain = build_waterfall_chain(registry, np.random.default_rng(index), max_levels=3)
            outcome = run_waterfall(slot, chain, environment, context.rng, context=context,
                                    page_url="https://pub.example/")
            if outcome.channel is SaleChannel.RTB_WATERFALL:
                sold = True
        assert sold
        notifications = [r for r in context.requests.outgoing() if "/rtb/win" in r.url]
        assert notifications
        for request in notifications:
            assert not any(key.startswith("hb_") for key in request.params)
            assert "price" in request.params

    def test_empty_chain_is_rejected(self, environment, slot, rng):
        with pytest.raises(AuctionError):
            run_waterfall(slot, [], environment, rng)

    def test_default_waterfall_slot_uses_common_sizes(self, rng):
        slot = default_waterfall_slot(rng)
        assert slot.primary_size.label in {"300x250", "728x90", "160x600"}
