"""Unit tests for precompiled site profiles (the fast-path substrate).

Each sampler in :mod:`repro.ecosystem.profiles` shortcuts a per-page
derivation; these tests pin the contract that matters: given the same RNG
state, the precompiled sampler must produce the *same values* and leave the
*same stream state* as the model code it replaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecosystem.profiles import (
    LatencyDraw,
    SiteProfileTable,
    sample_without_replacement,
)
from repro.models import HBFacet


def fresh_pair(seed=123):
    return np.random.default_rng(seed), np.random.default_rng(seed)


class TestSampleWithoutReplacement:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("n", [8, 9, 12, 83])
    def test_matches_generator_choice_exactly(self, size, n):
        """Values AND stream state agree with numpy for thousands of draws.

        This is the guard that makes the replica safe: if a numpy upgrade
        changes ``Generator.choice``'s draw algorithm, this test fails loudly
        instead of the fast path silently diverging from the slow path.
        """
        weights = np.random.default_rng(n * size).random(n) + 0.01
        p = weights / weights.sum()
        cdf = np.cumsum(p)
        cdf /= cdf[-1]
        a, b = fresh_pair(seed=n * 31 + size)
        for _ in range(400):
            expected = a.choice(n, size=size, replace=False, p=p)
            got = sample_without_replacement(b, p, cdf, size)
            assert list(expected) == list(got)
        assert a.bit_generator.state == b.bit_generator.state

    def test_collision_heavy_distribution(self):
        """A near-degenerate distribution forces the redraw loop constantly."""
        p = np.asarray([0.96, 0.01, 0.01, 0.01, 0.01])
        p = p / p.sum()
        cdf = np.cumsum(p)
        cdf /= cdf[-1]
        a, b = fresh_pair(seed=99)
        for _ in range(300):
            expected = a.choice(5, size=3, replace=False, p=p)
            got = sample_without_replacement(b, p, cdf, 3)
            assert list(expected) == list(got)
        assert a.bit_generator.state == b.bit_generator.state


class TestLatencyDraw:
    def test_matches_latency_model_sample(self, registry):
        for partner in registry.partners[:20]:
            for scale in (1.0, 0.72, 0.58, 0.35):
                draw = LatencyDraw.compile(partner.latency, scale)
                a, b = fresh_pair(seed=hash((partner.name, scale)) & 0xFFFF)
                for _ in range(200):
                    assert partner.latency.sample(a, scale=scale) == draw.sample(b)
                assert a.bit_generator.state == b.bit_generator.state


class TestPartnerProfile:
    def test_respond_matches_environment_partner_response(
        self, environment, small_population
    ):
        table = SiteProfileTable(environment, seed=13)
        for publisher in small_population.hb_publishers()[:12]:
            profile = table.profile_for(publisher)
            slots = publisher.auctioned_slots
            for partner, pprofile in zip(publisher.partners, profile.partner_profiles):
                a, b = fresh_pair(seed=publisher.rank)
                for index, slot in enumerate(slots):
                    expected = environment.partner_response(
                        a, partner, slot, publisher.facet,
                        latency_scale=publisher.latency_scale,
                    )
                    got = pprofile.respond(b, index, slot.code, slot.primary_size)
                    assert got.latency_ms == expected.latency_ms
                    assert got.bid_cpm == expected.bid_cpm
                    assert got.size == expected.size
                    assert got.slot_code == expected.slot_code
                    assert got.partner is partner
                assert a.bit_generator.state == b.bit_generator.state

    def test_ad_server_latency_matches_environment_bitwise(
        self, environment, small_population
    ):
        """The compiled mu must use np.log exactly like the slow path.

        math.log and np.log disagree in the last ulp for some inputs, which
        is enough to shift a lognormal draw and break byte-identity.
        """
        table = SiteProfileTable(environment, seed=13)
        for publisher in small_population.hb_publishers()[:8]:
            profile = table.profile_for(publisher)
            a, b = fresh_pair(seed=publisher.rank)
            for _ in range(100):
                expected = environment.ad_server_latency(
                    a, latency_scale=publisher.latency_scale
                )
                assert profile.ad_server_latency(b) == expected
            assert a.bit_generator.state == b.bit_generator.state

    def test_sample_internal_bidders_matches_environment(
        self, environment, small_population
    ):
        table = SiteProfileTable(environment, seed=13)
        for publisher in small_population.hb_publishers():
            if publisher.facet is not HBFacet.SERVER_SIDE:
                continue
            profile = table.profile_for(publisher)
            aggregator = publisher.partners[0]
            a, b = fresh_pair(seed=publisher.rank)
            for _ in range(40):
                expected = environment.sample_internal_bidders(a, exclude=(aggregator,))
                got = profile.sample_internal_bidders(b)
                assert [p.name for p in expected] == [g.partner.name for g in got]
            assert a.bit_generator.state == b.bit_generator.state
            break
        else:
            pytest.skip("no server-side publisher in the sample population")


class TestSiteProfileTable:
    def test_page_matches_slow_build(self, environment, small_population):
        from repro.browser.page import build_page

        table = SiteProfileTable(environment, seed=13)
        for publisher in list(small_population)[:10]:
            profile = table.profile_for(publisher)
            assert profile.page == build_page(publisher, seed=13)

    def test_profiles_are_cached_per_domain(self, environment, small_population):
        table = SiteProfileTable(environment, seed=13)
        publisher = list(small_population)[0]
        first = table.profile_for(publisher)
        assert table.profile_for(publisher) is first
        assert table.compiles == 1

    def test_table_recompiles_for_a_different_publisher_object(
        self, environment, small_population
    ):
        import dataclasses

        table = SiteProfileTable(environment, seed=13)
        publisher = next(p for p in small_population if not p.uses_hb)
        table.profile_for(publisher)
        changed = dataclasses.replace(publisher, latency_scale=publisher.latency_scale * 2)
        profile = table.profile_for(changed)
        assert profile.publisher is changed
        assert table.compiles == 2

    def test_bounded_eviction(self, environment, small_population):
        table = SiteProfileTable(environment, seed=13, max_sites=8)
        for publisher in list(small_population)[:20]:
            table.profile_for(publisher)
        assert len(table) <= 8

    def test_precompile_batches_under_one_lock_acquisition(
        self, environment, small_population
    ):
        """Warming N fresh sites takes ONE lock acquisition, not N — and a
        fully warm batch takes zero.  This is the serialization fix the
        columnar path leans on at every shard start."""
        import threading

        class CountingLock:
            def __init__(self):
                self.inner = threading.Lock()
                self.acquisitions = 0

            def __enter__(self):
                self.acquisitions += 1
                return self.inner.__enter__()

            def __exit__(self, *exc):
                return self.inner.__exit__(*exc)

        table = SiteProfileTable(environment, seed=13)
        lock = CountingLock()
        table._lock = lock
        sites = list(small_population)[:24]
        table.precompile(sites)
        assert table.compiles == len(sites)
        # One acquisition publishes the whole batch; compiling also fills the
        # shared waterfall cache once per distinct non-HB latency scale.
        waterfall_fills = len({p.latency_scale for p in sites if not p.uses_hb})
        assert lock.acquisitions == 1 + waterfall_fills
        for publisher in sites:
            assert table.profile_for(publisher).publisher is publisher

        table.precompile(sites)  # warm: no compiles, no lock traffic
        assert table.compiles == len(sites)
        assert lock.acquisitions == 1 + waterfall_fills

    def test_precompile_respects_the_site_bound(self, environment, small_population):
        table = SiteProfileTable(environment, seed=13, max_sites=8)
        table.precompile(list(small_population)[:20])
        assert len(table) <= 8

    def test_seed_mismatch_refused_by_browser_engine(self, environment):
        from repro.browser.engine import BrowserEngine

        table = SiteProfileTable(environment, seed=13)
        with pytest.raises(ValueError):
            BrowserEngine(environment, seed=14, profiles=table)


class TestFastUniform:
    def test_matches_generator_uniform_exactly(self):
        from repro.utils.rng import fast_uniform

        for low, high in [(5.0, 40.0), (3.0, 20.0), (15.0, 45.0), (30.0, 150.0),
                          (0.005, 0.02), (0.02, 0.12), (20.0, 120.0)]:
            a, b = fresh_pair(seed=int(high))
            for _ in range(2000):
                assert float(a.uniform(low, high)) == fast_uniform(b, low, high)
            assert a.bit_generator.state == b.bit_generator.state
