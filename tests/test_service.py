"""End-to-end tests for the crawl-as-a-service subsystem.

One module-scoped server hosts every test; one module-scoped campaign (the
standard 400-site test scale) backs the read-side assertions, with a direct
``ExperimentRunner`` run of the identical configuration as the ground truth:
the service must serve byte-identical detections and render every registered
offline metric identically to a local ``repro run``.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import compute_metric, get_metric, metric_names
from repro.crawler.storage import CrawlStorage
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.service import DetectionQuery, ServiceClient, ServiceClientError, running_server
from repro.service.campaigns import CampaignManager, campaign_config_from_dict
from repro.errors import ServiceError

CAMPAIGN_BODY = {"sites": 400, "days": 1, "seed": 7, "workers": 2, "backend": "thread"}
CAMPAIGN_CONFIG = ExperimentConfig(
    total_sites=400, recrawl_days=1, seed=7, workers=2, crawl_backend="thread"
)


def offline_metric_names():
    return [n for n in metric_names() if set(get_metric(n).requires) <= {"dataset"}]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("service")
    with running_server(root, max_parallel=2) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.base_url)


@pytest.fixture(scope="module")
def campaign(client):
    """A finished test-scale campaign, shared by every read-side test."""
    submitted = client.submit(CAMPAIGN_BODY)
    done = client.wait(submitted["id"], timeout=300)
    assert done["state"] == "done", done
    return done


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The same campaign run directly, streamed to a local sink file."""
    path = tmp_path_factory.mktemp("reference") / "crawl.jsonl"
    artifacts = ExperimentRunner(CAMPAIGN_CONFIG).run(use_cache=False, storage=CrawlStorage(path))
    return path.read_bytes(), artifacts.dataset


class TestSubmissionValidation:
    @pytest.mark.parametrize(
        "body",
        [
            {"sites": "not-a-number"},
            {"bogus_field": 1},
            {"checkpoint_path": "/tmp/x"},      # server-managed
            {"resume": True},                    # server-managed
            {"sites": 40, "total_sites": 50},    # alias + field collision
            {"sites": 3},                        # below the config floor
        ],
    )
    def test_bad_submission_is_4xx_json(self, client, body):
        with pytest.raises(ServiceClientError) as err:
            client.submit(body)
        assert err.value.status == 400
        assert set(err.value.body["error"]) == {"type", "message"}

    def test_non_object_submission_is_400(self, client):
        with pytest.raises(ServiceClientError) as err:
            client._json("POST", "/campaigns", body=["not", "an", "object"])
        assert err.value.status == 400

    def test_non_json_body_is_400_not_traceback(self, server):
        request = urllib.request.Request(
            server.base_url + "/campaigns", data=b"this is not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400
        assert "error" in json.loads(err.value.read().decode("utf-8"))

    def test_unknown_campaign_is_404(self, client):
        for call in (client.campaign, client.cancel, client.resume,
                     lambda cid: client.detections(cid), lambda cid: client.artifact(cid, "table1")):
            with pytest.raises(ServiceClientError) as err:
                call("c9999-aaaaaa")
            assert err.value.status == 404

    def test_unknown_route_is_404_json(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.base_url + "/not-a-route")
        assert err.value.code == 404
        assert "error" in json.loads(err.value.read().decode("utf-8"))

    def test_unknown_metric_is_404(self, client, campaign):
        with pytest.raises(ServiceClientError) as err:
            client.artifact(campaign["id"], "figNaN")
        assert err.value.status == 404

    def test_bad_filters_are_400(self, client, campaign):
        for params in ({"facet": "wat"}, {"limit": 10_000}, {"crawl_day": "x"},
                       {"nope": 1}, {"offset": -1}, {"hb": "maybe"}):
            with pytest.raises(ServiceClientError) as err:
                client.detections(campaign["id"], **params)
            assert err.value.status == 400

    def test_config_alias_parsing(self):
        config = campaign_config_from_dict(
            {"sites": 50, "days": 2, "backend": "thread", "flush_every": 3, "oversubscribe": 2}
        )
        assert (config.total_sites, config.recrawl_days) == (50, 2)
        assert (config.crawl_backend, config.sink_flush_every, config.shard_oversubscribe) == (
            "thread", 3, 2,
        )
        with pytest.raises(ServiceError):
            campaign_config_from_dict({"historical_years": "2019"})


class TestRoundTrip:
    def test_served_detections_byte_identical_to_direct_run(self, client, campaign, reference):
        ref_bytes, _ = reference
        assert client.download(campaign["id"]) == ref_bytes

    def test_every_offline_metric_matches_direct_run(self, client, campaign, reference):
        _, ref_dataset = reference
        context = AnalysisContext.offline(ref_dataset)
        for name in offline_metric_names():
            expected = compute_metric(name, context)
            served = client.artifact(campaign["id"], name)
            assert served["text"] == expected.text, name
            assert served["name"] == name
            # the text format is exactly what ``repro analyze`` prints
            assert client.artifact_text(campaign["id"], name) == expected.text + "\n", name

    def test_campaign_record_counters(self, client, campaign, reference):
        ref_bytes, ref_dataset = reference
        info = client.campaign(campaign["id"])
        assert info["state"] == "done" and info["error"] is None
        assert info["runs"] == 1
        assert info["detections"]["sink_bytes"] == len(ref_bytes)
        assert info["detections"]["indexed"] == len(ref_dataset)
        assert info["resumable"]  # the finished checkpoint file remains

    def test_index_lists_campaign_and_artifacts(self, client, campaign):
        index = client.index()
        assert index["campaigns"][campaign["id"]] == "done"
        assert "table1" in index["artifacts"] and "detections.jsonl" in index["artifacts"]
        listed = {c["id"]: c["state"] for c in client.campaigns()}
        assert listed[campaign["id"]] == "done"


class TestDetectionQueries:
    def test_pagination_walks_everything_in_order(self, client, campaign, reference):
        _, ref_dataset = reference
        served = list(client.iter_detections(campaign["id"], page_size=97))
        assert [d["domain"] for d in served] == [d.domain for d in ref_dataset.detections]

    @pytest.mark.parametrize(
        "filters",
        [
            {"hb": "true"},
            {"hb": "false"},
            {"crawl_day": 1},
            {"rank_bin": 0},
            {"rank_bin": 2, "bin_size": 50},
            {"site": "0"},
        ],
    )
    def test_filters_match_brute_force(self, client, campaign, reference, filters):
        _, ref_dataset = reference
        query = DetectionQuery.from_params({k: str(v) for k, v in filters.items()})
        keep = query.predicate()
        expected = [d.domain for d in ref_dataset.detections if keep(d)]
        page = client.detections(campaign["id"], limit=500, **filters)
        assert page["total"] == len(expected)
        assert [d["domain"] for d in page["items"]] == expected[:500]

    def test_partner_and_facet_filters(self, client, campaign, reference):
        _, ref_dataset = reference
        hb = ref_dataset.hb_detections()
        partner = hb[0].partners[0]
        facet = hb[0].facet
        by_partner = client.detections(campaign["id"], partner=partner, limit=500)
        assert by_partner["total"] == sum(1 for d in hb if partner in d.partners)
        assert by_partner["filters"] == {"partner": partner}
        by_facet = client.detections(campaign["id"], facet=facet.value, limit=500)
        assert by_facet["total"] == sum(1 for d in hb if d.facet is facet)
        assert all(item["facet"] == facet.value for item in by_facet["items"])

    def test_offset_beyond_total_is_empty_page(self, client, campaign):
        page = client.detections(campaign["id"], offset=10**6)
        assert page["count"] == 0 and page["items"] == []


class TestEvents:
    def test_stream_final_snapshot_equals_analyze(self, client, tmp_path):
        """The acceptance invariant: the SSE stream's last metric snapshot is
        exactly what ``repro analyze`` computes over the finished sink."""
        submitted = client.submit({"sites": 60, "days": 1, "seed": 13})
        tail = client.stream_to_completion(
            submitted["id"], artifacts=("table1", "adoption"), interval=0.05
        )
        assert tail["state"]["state"] == "done"
        sink = tmp_path / "served.jsonl"
        sink.write_bytes(client.download(submitted["id"]))
        context = AnalysisContext.offline(CrawlDataset.from_jsonl(sink))
        assert tail["metrics"]["final"] is True
        for name in ("table1", "adoption"):
            assert tail["metrics"]["artifacts"][name] == compute_metric(name, context).text
        counts = [p["detections"] for p in tail["progress"]]
        assert counts == sorted(counts)
        assert counts[-1] == tail["metrics"]["detections"]

    def test_stream_unknown_artifact_is_404(self, client, campaign):
        with pytest.raises(ServiceClientError) as err:
            list(client.events(campaign["id"], artifacts=("nope",)))
        assert err.value.status == 404


class TestCancellation:
    def test_cancel_then_resume_is_byte_identical(self, client, tmp_path):
        body = {"sites": 400, "days": 2, "seed": 11, "workers": 2,
                "flush_every": 1, "checkpoint_every_shards": 1}
        submitted = client.submit(body)
        cid = submitted["id"]
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            info = client.campaign(cid)
            if info["detections"]["sink_bytes"] > 0:
                break
            time.sleep(0.01)
        client.cancel(cid)
        cancelled = client.wait(cid, timeout=60)
        assert cancelled["state"] == "cancelled"
        assert cancelled["resumable"], "cancellation must leave a resumable checkpoint"
        partial = client.download(cid)

        client.resume(cid)
        done = client.wait(cid, timeout=300)
        assert done["state"] == "done" and done["runs"] == 2

        path = tmp_path / "uninterrupted.jsonl"
        config = campaign_config_from_dict(body)
        ExperimentRunner(config).run(use_cache=False, storage=CrawlStorage(path))
        full = path.read_bytes()
        assert len(partial) < len(full)
        assert client.download(cid) == full

    def test_cancel_terminal_campaign_is_409(self, client, campaign):
        with pytest.raises(ServiceClientError) as err:
            client.cancel(campaign["id"])
        assert err.value.status == 409

    def test_resume_done_campaign_is_409(self, client, campaign):
        with pytest.raises(ServiceClientError) as err:
            client.resume(campaign["id"])
        assert err.value.status == 409


class TestCampaignManager:
    def test_queued_campaign_cancels_without_running(self, tmp_path):
        manager = CampaignManager(tmp_path, max_parallel=1)
        try:
            blocker = manager.submit(ExperimentConfig(total_sites=400, recrawl_days=2, seed=3))
            queued = manager.submit(ExperimentConfig(total_sites=40, seed=4))
            manager.cancel(queued.id)
            manager.wait(queued.id, timeout=30)
            assert queued.state == "cancelled"
            assert queued.runs == 0 and queued.started_at is None
            assert not queued.checkpoint_path.exists()
            manager.cancel(blocker.id)
            manager.wait(blocker.id, timeout=60)
        finally:
            manager.shutdown(timeout=60)

    def test_cancelled_before_checkpoint_resumes_fresh(self, tmp_path):
        manager = CampaignManager(tmp_path, max_parallel=1)
        try:
            blocker = manager.submit(ExperimentConfig(total_sites=400, recrawl_days=2, seed=3))
            queued = manager.submit(ExperimentConfig(total_sites=40, seed=4))
            manager.cancel(queued.id)
            manager.wait(queued.id, timeout=30)
            manager.cancel(blocker.id)
            manager.wait(blocker.id, timeout=60)
            resumed = manager.resume(queued.id)
            manager.wait(resumed.id, timeout=120)
            assert resumed.state == "done"
        finally:
            manager.shutdown(timeout=60)

    def test_shutdown_cancels_in_flight_and_rejects_submissions(self, tmp_path):
        manager = CampaignManager(tmp_path, max_parallel=1)
        campaign = manager.submit(
            ExperimentConfig(
                total_sites=400, recrawl_days=2, seed=5,
                sink_flush_every=1, checkpoint_every_shards=1,
            )
        )
        deadline = time.monotonic() + 60
        while campaign.store.storage.size() == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        manager.shutdown(timeout=60)
        assert campaign.state == "cancelled"
        assert campaign.checkpoint_path.exists()
        with pytest.raises(ServiceError):
            manager.submit(ExperimentConfig(total_sites=40))
        with pytest.raises(ServiceError):
            manager.resume(campaign.id)

    def test_concurrent_reads_during_crawl_are_consistent(self, tmp_path):
        """Hammer the store from reader threads while the campaign crawls."""
        manager = CampaignManager(tmp_path, max_parallel=1)
        try:
            campaign = manager.submit(
                ExperimentConfig(total_sites=400, recrawl_days=1, seed=6, sink_flush_every=1)
            )
            errors = []
            stop = threading.Event()

            def reader():
                query = DetectionQuery(limit=50)
                try:
                    while not stop.is_set():
                        campaign.store.refresh()
                        page = campaign.store.query(query)
                        assert page["count"] <= 50
                        campaign.to_dict()
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for t in threads:
                t.start()
            manager.wait(campaign.id, timeout=300)
            stop.set()
            for t in threads:
                t.join(timeout=10)
            assert not errors
            assert campaign.state == "done"
            campaign.store.refresh()
            assert campaign.store.drained()
            assert campaign.store.count == len(CrawlStorage(campaign.sink_path).load())
        finally:
            manager.shutdown(timeout=60)


class TestTicks:
    """POST /campaigns/{id}/ticks — daemon ticks through the service."""

    # An absolute floor no simulated day reaches: every tick alerts.
    FLOOR = "table1.summary.websites_with_hb:min=100000"

    def test_tick_extends_campaign_and_streams_the_alert(self, client):
        submitted = client.submit({"sites": 60, "days": 1, "seed": 13})
        cid = submitted["id"]
        client.wait(cid, timeout=300)

        ticked = client.tick(cid, thresholds=[self.FLOOR])
        assert ticked["tick_day"] == 2
        assert ticked["state"] in ("queued", "running")
        tail = client.stream_to_completion(cid, interval=0.05)
        assert tail["state"]["state"] == "done"
        assert tail["state"]["config"]["recrawl_days"] == 2
        assert tail["state"]["alerts"] == 1
        assert len(tail["alerts"]) == 1
        alert = tail["alerts"][0]
        assert alert["campaign"] == cid
        assert alert["day"] == 2 and alert["kind"] == "min"

        # A second stream replays the logged alert exactly once.
        replay = client.stream_to_completion(cid, interval=0.05)
        assert len(replay["alerts"]) == 1

        # The grown sink equals a one-shot two-day run of the same campaign.
        done = client.wait(cid, timeout=300)
        assert done["runs"] == 2
        config = campaign_config_from_dict({"sites": 60, "days": 2, "seed": 13})
        path_free_bytes = client.download(cid)
        import tempfile
        from pathlib import Path
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "oneshot.jsonl"
            ExperimentRunner(config).run(use_cache=False, storage=CrawlStorage(path))
            assert path_free_bytes == path.read_bytes()

    def test_tick_while_running_is_409(self, client):
        submitted = client.submit({"sites": 400, "days": 2, "seed": 21, "workers": 2})
        cid = submitted["id"]
        with pytest.raises(ServiceClientError) as err:
            client.tick(cid)
        assert err.value.status == 409
        client.wait(cid, timeout=300)

    def test_tick_unknown_campaign_is_404(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.tick("nope")
        assert err.value.status == 404

    def test_tick_with_unknown_body_key_is_400(self, client, campaign, server):
        body = json.dumps({"bogus": 1}).encode()
        request = urllib.request.Request(
            f"{server.base_url}/campaigns/{campaign['id']}/ticks",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400

    def test_tick_with_malformed_threshold_is_400(self, client, campaign):
        with pytest.raises(ServiceClientError) as err:
            client.tick(campaign["id"], thresholds=["not-a-rule"])
        assert err.value.status == 400


class TestKeepalive:
    def test_idle_stream_carries_keepalive_comments(self, tmp_path):
        """A queued campaign emits nothing, so the stream must heartbeat."""
        with running_server(tmp_path / "ka", max_parallel=1) as srv:
            ka_client = ServiceClient(srv.base_url)
            blocker = ka_client.submit({"sites": 4000, "days": 2, "seed": 3})
            queued = ka_client.submit({"sites": 40, "days": 1, "seed": 4})
            url = (
                f"{srv.base_url}/campaigns/{queued['id']}/events"
                f"?interval=0.05&keepalive=0.05&timeout=0.5"
            )
            raw = urllib.request.urlopen(url, timeout=30).read()
            assert b": keepalive\n\n" in raw
            assert b"event: timeout" in raw
            for cid in (blocker["id"], queued["id"]):
                try:
                    ka_client.cancel(cid)
                except ServiceClientError:
                    pass  # already finished

    def test_keepalive_comments_are_invisible_to_the_parser(self, client):
        """ServiceClient.events yields only real events on a keepalive-dense stream."""
        submitted = client.submit({"sites": 60, "days": 1, "seed": 17})
        events = list(
            client.events(submitted["id"], interval=0.05, keepalive=0.02)
        )
        kinds = {event for event, _ in events}
        assert kinds <= {"refresh", "progress", "metrics", "state", "alert"}
        assert events[-1][0] == "state"
