"""Unit and property-based tests for the statistical primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import Ecdf, ecdf, histogram_shares, percentile, whisker_stats
from repro.errors import EmptyDatasetError

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestEcdf:
    def test_simple_ecdf_values(self):
        curve = ecdf([3.0, 1.0, 2.0, 4.0])
        assert curve.values == (1.0, 2.0, 3.0, 4.0)
        assert curve.probabilities[-1] == pytest.approx(1.0)
        assert curve.median == 2.0
        assert curve.quantile(0.75) == 3.0

    def test_fraction_helpers(self):
        curve = ecdf([1, 2, 3, 4, 5])
        assert curve.fraction_at_most(3) == pytest.approx(0.6)
        assert curve.fraction_above(3) == pytest.approx(0.4)

    def test_empty_input_raises(self):
        with pytest.raises(EmptyDatasetError):
            ecdf([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ecdf([1.0, float("nan")])

    def test_quantile_bounds(self):
        curve = ecdf([1, 2, 3])
        with pytest.raises(ValueError):
            curve.quantile(0.0)
        with pytest.raises(ValueError):
            curve.quantile(1.5)

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_probabilities_are_monotone_and_end_at_one(self, values):
        curve = ecdf(values)
        assert list(curve.probabilities) == sorted(curve.probabilities)
        assert curve.probabilities[-1] == pytest.approx(1.0)
        assert list(curve.values) == sorted(curve.values)

    @given(st.lists(finite_floats, min_size=1, max_size=200), st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_quantile_is_an_observed_value(self, values, q):
        curve = ecdf(values)
        assert curve.quantile(q) in curve.values


class TestWhiskerStats:
    def test_percentiles_are_ordered(self):
        stats = whisker_stats(range(100))
        assert stats.p5 <= stats.p25 <= stats.median <= stats.p75 <= stats.p95
        assert stats.n == 100
        assert stats.interquartile_range == pytest.approx(stats.p75 - stats.p25)
        assert stats.spread == pytest.approx(stats.p95 - stats.p5)

    def test_as_dict_has_all_keys(self):
        stats = whisker_stats([1.0, 2.0, 3.0])
        assert set(stats.as_dict()) == {"p5", "p25", "median", "p75", "p95", "n"}

    def test_empty_input_raises(self):
        with pytest.raises(EmptyDatasetError):
            whisker_stats([])

    @given(st.lists(finite_floats, min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_median_matches_numpy(self, values):
        stats = whisker_stats(values)
        assert stats.median == pytest.approx(float(np.median(values)))

    @given(st.lists(finite_floats, min_size=2, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_whiskers_bound_the_data_range(self, values):
        stats = whisker_stats(values)
        assert min(values) <= stats.p5 and stats.p95 <= max(values)


class TestPercentileAndShares:
    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], -5)
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 50) == pytest.approx(5.0)

    def test_histogram_shares_sum_to_one(self):
        shares = histogram_shares(["a", "b", "a", "c", "a"])
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["a"] == pytest.approx(0.6)
        assert list(shares)[0] == "a"  # sorted by share, descending

    def test_histogram_shares_empty_raises(self):
        with pytest.raises(EmptyDatasetError):
            histogram_shares([])
