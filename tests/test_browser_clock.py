"""Unit tests for the simulated clock."""

import pytest

from repro.browser.clock import SimulatedClock


class TestSimulatedClock:
    def test_starts_at_zero_by_default(self):
        assert SimulatedClock().now() == 0.0

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(100.0)
        clock.advance(50.5)
        assert clock.now() == pytest.approx(150.5)

    def test_advance_rejects_negative_delta(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_advance_to_never_goes_backwards(self):
        clock = SimulatedClock()
        clock.advance(100.0)
        clock.advance_to(50.0)
        assert clock.now() == 100.0
        clock.advance_to(200.0)
        assert clock.now() == 200.0

    def test_reset_returns_to_start(self):
        clock = SimulatedClock(start_ms=10.0)
        clock.advance(500.0)
        clock.reset()
        assert clock.now() == 0.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimulatedClock(start_ms=-1.0)
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.reset(-5.0)
