"""Integration tests across the whole pipeline (ecosystem → crawl → analysis)."""

import pytest

from repro.analysis.dataset import CrawlDataset
from repro.crawler.storage import CrawlStorage
from repro.experiments import figures, tables
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.models import HBFacet


class TestEndToEnd:
    def test_dataset_counts_are_internally_consistent(self, experiment_artifacts):
        dataset = experiment_artifacts.dataset
        summary = dataset.summary()
        assert summary["websites_with_hb"] == len(dataset.hb_sites())
        assert summary["auctions_detected"] == len(dataset.auctions())
        assert summary["bids_detected"] == len(dataset.bids())
        assert summary["page_visits"] == len(dataset)

    def test_detected_adoption_close_to_ground_truth(self, experiment_artifacts):
        detected = experiment_artifacts.dataset.summary()["adoption_rate"]
        actual = experiment_artifacts.population.adoption_rate()
        assert abs(detected - actual) < 0.02

    def test_detected_facet_mix_close_to_ground_truth(self, experiment_artifacts):
        from repro.analysis.facets import facet_breakdown

        detected = facet_breakdown(experiment_artifacts.dataset)
        truth_counts = experiment_artifacts.population.facet_counts()
        truth_total = sum(truth_counts.values())
        for facet in HBFacet:
            truth_share = truth_counts[facet] / truth_total
            assert abs(detected.get(facet, 0.0) - truth_share) < 0.12

    def test_dataset_survives_storage_round_trip(self, experiment_artifacts, tmp_path):
        storage = CrawlStorage(tmp_path / "dataset.jsonl")
        storage.save(experiment_artifacts.dataset.detections)
        reloaded = CrawlDataset.from_detections(storage.load())
        assert reloaded.summary() == experiment_artifacts.dataset.summary()
        # A figure computed from the reloaded dataset matches the original.
        from repro.analysis.partners import partner_popularity

        original = partner_popularity(experiment_artifacts.dataset, top_n=5)
        restored = partner_popularity(reloaded, top_n=5)
        assert [(r.partner, r.sites) for r in original] == [(r.partner, r.sites) for r in restored]

    def test_daily_recrawls_only_revisit_hb_sites(self, experiment_artifacts):
        dataset = experiment_artifacts.dataset
        day_zero_hb = {d.domain for d in dataset.detections if d.crawl_day == 0 and d.hb_detected}
        for detection in dataset.detections:
            if detection.crawl_day > 0:
                assert detection.domain in day_zero_hb

    def test_headline_results_hold_together(self, experiment_artifacts):
        """The cross-cutting claims of the paper hold in one consistent run."""
        adoption = tables.adoption_by_rank(experiment_artifacts)
        assert 0.08 <= adoption["overall"] <= 0.25

        facet = figures.facet_breakdown_result(experiment_artifacts)["breakdown"]
        assert facet[HBFacet.SERVER_SIDE] > facet[HBFacet.CLIENT_SIDE]

        top_partners = figures.figure08_top_partners(experiment_artifacts)["rows"]
        assert top_partners[0].partner == "DFP"

        latency = figures.figure12_latency_ecdf(experiment_artifacts)
        waterfall = figures.waterfall_latency_comparison(experiment_artifacts)["comparison"]
        assert latency["median_ms"] > waterfall.waterfall.median

    def test_smaller_experiment_runs_from_scratch(self):
        config = ExperimentConfig(total_sites=300, seed=77, recrawl_days=0, historical_sites=100,
                                  historical_years=(2019,))
        artifacts = ExperimentRunner(config).run(use_cache=False)
        assert artifacts.summary["websites_crawled"] == 300
        accuracy = tables.detector_accuracy(artifacts)["metrics"]
        assert accuracy["precision"] == 1.0
