"""Unit tests for the web-request log."""

import pytest

from repro.browser.clock import SimulatedClock
from repro.browser.webrequest import WebRequestLog
from repro.models import RequestDirection


@pytest.fixture()
def log():
    return WebRequestLog(SimulatedClock())


class TestWebRequestLog:
    def test_outgoing_merges_query_and_body_params(self, log):
        request = log.record_outgoing(
            "https://ib.adnxs.com/ut/v3?from=query", method="post", params={"bidder": "appnexus"}
        )
        assert request.direction is RequestDirection.OUTGOING
        assert request.method == "POST"
        assert request.params["from"] == "query"
        assert request.params["bidder"] == "appnexus"

    def test_incoming_uses_response_pseudo_method(self, log):
        response = log.record_incoming("https://ib.adnxs.com/ut/v3", params={"hb_pb": "0.50"})
        assert response.direction is RequestDirection.INCOMING
        assert response.method == "RESPONSE"
        assert response.params["hb_pb"] == "0.50"

    def test_record_fetch_builds_url(self, log):
        request = log.record_fetch("cdn.example", "/lib.js", params={"v": 1})
        assert request.url.startswith("https://cdn.example/lib.js")
        assert request.params["v"] == "1"

    def test_timestamps_come_from_clock_unless_overridden(self, log):
        log._clock.advance(250.0)
        auto = log.record_outgoing("https://a.example/")
        manual = log.record_outgoing("https://a.example/", timestamp_ms=999.0)
        assert auto.timestamp_ms == 250.0
        assert manual.timestamp_ms == 999.0

    def test_direction_views_and_host_filter(self, log):
        log.record_outgoing("https://ib.adnxs.com/bid")
        log.record_incoming("https://ib.adnxs.com/bid")
        log.record_outgoing("https://cdn.example/app.js")
        assert len(log.outgoing()) == 2
        assert len(log.incoming()) == 1
        assert len(log.to_hosts(["adnxs.com"])) == 2

    def test_len_iter_and_clear(self, log):
        log.record_outgoing("https://a.example/")
        assert len(log) == 1
        assert list(log)[0].url == "https://a.example/"
        log.clear()
        assert len(log) == 0
