"""Benchmark: Figure 22 — CDF of bid prices (CPM) per HB facet.

Paper: client-side HB draws the highest baseline bid prices; the crawler's
vanilla profile keeps the absolute values well below real-user RTB prices.
"""

from repro.experiments.figures import figure22_price_cdf
from repro.models import HBFacet


def test_bench_fig22_price_cdf(benchmark, artifacts):
    result = benchmark(figure22_price_cdf, artifacts)
    medians = result["medians"]
    curves = result["ecdfs"]
    assert set(medians) == set(HBFacet)
    # Client-side prices sit above server-side prices (ordering, not absolutes).
    assert medians[HBFacet.CLIENT_SIDE] > medians[HBFacet.SERVER_SIDE]
    # Vanilla-profile baseline prices are small but strictly positive.
    for facet, curve in curves.items():
        assert curve.values[0] > 0
        assert curve.median < 2.0
    print()
    print(result["text"])
