"""Load-test harness for the crawl-as-a-service HTTP campaign server.

Starts an in-process service (the same ``ThreadingHTTPServer`` that
``hbrepro serve`` runs), submits a campaign, and hammers the read API from
concurrent clients while the crawl streams detections into its sink —
measuring what the service adds on top of the crawl itself:

* ``campaign`` — end-to-end wall time of the submitted crawl and its
  detections/s throughput, with concurrent readers attached the whole time;
* ``live_queries`` — requests/s and latency quantiles for detection queries,
  campaign polls and live metric (``table1``) computations issued *while*
  the crawl is running, i.e. against a store whose indices are being
  extended concurrently;
* ``post_queries`` — the same mix against the finished campaign (the
  steady-state read path);
* ``events`` — the SSE stream's event count and time-to-first-progress;
* ``download`` — throughput of the raw ``detections.jsonl`` artifact fetch.

Every phase also asserts the service's correctness contract — the
downloaded sink is byte-identical to a direct ``ExperimentRunner`` run of
the same configuration, served metric text matches a locally-computed
metric, and the SSE final snapshot equals an ``analyze`` over the finished
sink — so the harness doubles as a smoke test.  CI runs it with ``--smoke``
(tiny campaign, fewer clients) producing ``BENCH_service.smoke.json``.

Run with::

    PYTHONPATH=src python benchmarks/service.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import compute_metric
from repro.crawler.storage import CrawlStorage
from repro.experiments.runner import ExperimentRunner
from repro.service import ServiceClient, running_server
from repro.service.campaigns import campaign_config_from_dict

#: The query mix one reader thread cycles through (name, method-args).
QUERY_MIX = (
    ("poll", lambda client, cid: client.campaign(cid)),
    ("page", lambda client, cid: client.detections(cid, limit=100)),
    ("hb_page", lambda client, cid: client.detections(cid, hb="true", limit=100)),
    ("day_page", lambda client, cid: client.detections(cid, crawl_day=0, limit=100)),
    ("rank_bin", lambda client, cid: client.detections(cid, rank_bin=1, bin_size=100)),
    ("metric", lambda client, cid: client.artifact(cid, "table1")),
)


def _quantiles(samples: list[float]) -> dict:
    if not samples:
        return {"count": 0}
    ordered = sorted(samples)
    return {
        "count": len(samples),
        "mean_ms": round(statistics.fmean(ordered) * 1e3, 3),
        "p50_ms": round(ordered[len(ordered) // 2] * 1e3, 3),
        "p95_ms": round(ordered[int(len(ordered) * 0.95)] * 1e3, 3),
        "max_ms": round(ordered[-1] * 1e3, 3),
    }


class _ReaderPool:
    """Concurrent clients cycling the query mix until told to stop."""

    def __init__(self, base_url: str, campaign_id: str, threads: int) -> None:
        self.base_url = base_url
        self.campaign_id = campaign_id
        self.stop = threading.Event()
        self.latencies: dict[str, list[float]] = {name: [] for name, _ in QUERY_MIX}
        self.errors: list[str] = []
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._loop, name=f"reader-{i}", daemon=True)
            for i in range(threads)
        ]

    def _loop(self) -> None:
        client = ServiceClient(self.base_url)
        local: dict[str, list[float]] = {name: [] for name, _ in QUERY_MIX}
        i = 0
        while not self.stop.is_set():
            name, call = QUERY_MIX[i % len(QUERY_MIX)]
            i += 1
            start = time.perf_counter()
            try:
                call(client, self.campaign_id)
            except Exception as exc:  # noqa: BLE001 - recorded, fails the run later
                # A metric over a campaign that has not flushed its first
                # detection yet is a legitimate 409 (empty dataset), not a
                # service failure — skip the sample and move on.
                status = getattr(exc, "status", None)
                if status == 409:
                    continue
                with self._lock:
                    self.errors.append(f"{name}: {type(exc).__name__}: {exc}")
                return
            local[name].append(time.perf_counter() - start)
        with self._lock:
            for name, samples in local.items():
                self.latencies[name].extend(samples)

    def run_for(self, condition, *, poll: float = 0.02) -> float:
        """Run readers until ``condition()`` is true; return elapsed seconds."""
        start = time.perf_counter()
        for t in self._threads:
            t.start()
        while not condition():
            time.sleep(poll)
        elapsed = time.perf_counter() - start
        self.stop.set()
        for t in self._threads:
            t.join(timeout=30)
        return elapsed

    def report(self, elapsed: float) -> dict:
        total = sum(len(s) for s in self.latencies.values())
        return {
            "threads": len(self._threads),
            "requests": total,
            "requests_per_s": round(total / elapsed, 1) if elapsed else 0.0,
            "latency": {name: _quantiles(s) for name, s in self.latencies.items()},
        }


def run_benchmark(*, smoke: bool) -> dict:
    body = (
        {"sites": 60, "days": 1, "seed": 19, "flush_every": 8}
        if smoke
        else {"sites": 1200, "days": 2, "seed": 19, "workers": 2, "flush_every": 16}
    )
    reader_threads = 2 if smoke else 4
    post_rounds = 2 if smoke else 8
    report: dict = {
        "name": "service",
        "config": {
            "campaign": body,
            "reader_threads": reader_threads,
            "smoke": smoke,
            "python": sys.version.split()[0],
        },
    }

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        with running_server(tmp_path / "campaigns") as server:
            client = ServiceClient(server.base_url)

            # --- live phase: crawl with concurrent readers + one SSE consumer
            submitted = client.submit(body)
            cid = submitted["id"]
            sse: dict = {}

            def consume_events() -> None:
                start = time.perf_counter()
                first = None
                count = 0
                for event, payload in client.events(cid, artifacts=("table1",), interval=0.05):
                    count += 1
                    if event == "progress" and payload["detections"] and first is None:
                        first = time.perf_counter() - start
                    if event == "metrics" and payload.get("final"):
                        sse["final_table1"] = payload["artifacts"]["table1"]
                sse["events"] = count
                sse["first_progress_s"] = round(first, 4) if first is not None else None

            sse_thread = threading.Thread(target=consume_events, daemon=True)
            sse_thread.start()
            pool = _ReaderPool(server.base_url, cid, reader_threads)
            elapsed = pool.run_for(
                lambda: client.campaign(cid)["state"] in ("done", "failed", "cancelled")
            )
            sse_thread.join(timeout=60)
            final = client.campaign(cid)
            assert final["state"] == "done", final
            assert not pool.errors, pool.errors
            detections = final["detections"]["indexed"]
            report["campaign"] = {
                "wall_s": round(elapsed, 3),
                "detections": detections,
                "detections_per_s": round(detections / elapsed, 1),
            }
            report["live_queries"] = pool.report(elapsed)
            report["events"] = sse

            # --- post phase: the same mix against the finished campaign
            post = _ReaderPool(server.base_url, cid, reader_threads)
            target = post_rounds * len(QUERY_MIX) * reader_threads
            post_elapsed = _run_post(post, target)
            assert not post.errors, post.errors
            report["post_queries"] = post.report(post_elapsed)

            # --- download throughput + correctness contract
            start = time.perf_counter()
            served = client.download(cid)
            download_s = time.perf_counter() - start
            report["download"] = {
                "bytes": len(served),
                "mb_per_s": round(len(served) / 1e6 / download_s, 1) if download_s else None,
            }

            reference_path = tmp_path / "reference.jsonl"
            ExperimentRunner(campaign_config_from_dict(body)).run(
                use_cache=False, storage=CrawlStorage(reference_path)
            )
            assert served == reference_path.read_bytes(), "served sink diverged from direct run"
            context = AnalysisContext.offline(CrawlDataset.from_jsonl(reference_path))
            expected = compute_metric("table1", context).text
            assert client.artifact(cid, "table1")["text"] == expected, "served metric diverged"
            assert sse.get("final_table1") == expected, "SSE final snapshot diverged from analyze"
            report["checks"] = {
                "sink_byte_identical": True,
                "metric_text_identical": True,
                "sse_final_snapshot_identical": True,
            }
    return report


def _run_post(pool: _ReaderPool, target_requests: int) -> float:
    """Run a reader pool until it has issued ``target_requests`` in total."""
    start = time.perf_counter()
    for t in pool._threads:
        t.start()
    # Request counts live in thread-local lists until a reader exits, so the
    # pool is simply given a fixed time slice scaled to the target instead of
    # polling shared counters on the hot path.
    while time.perf_counter() - start < max(0.5, target_requests / 2000):
        time.sleep(0.02)
    pool.stop.set()
    for t in pool._threads:
        t.join(timeout=30)
    return time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny workload for CI")
    parser.add_argument("--out", metavar="PATH", default=None, help="report path override")
    args = parser.parse_args(argv)

    report = run_benchmark(smoke=args.smoke)
    default = "BENCH_service.smoke.json" if args.smoke else "BENCH_service.json"
    out = Path(args.out) if args.out else Path(__file__).resolve().parent.parent / default
    out.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=1))
    print(f"\nwrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
