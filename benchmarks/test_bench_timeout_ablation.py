"""Ablation benchmark: wrapper timeout vs. late bids and lost revenue.

DESIGN.md calls for a sweep over the wrapper timeout: shorter timeouts cut the
page's HB latency but turn more bids into late (wasted) bids and lose the
revenue they carried; longer timeouts recover bids at the cost of latency.
This isolates the mechanism behind the paper's late-bid findings (§5.2, §7.3).
"""

import dataclasses

import numpy as np

from repro.browser.context import BrowserContext
from repro.hb.wrappers import build_wrapper
from repro.models import HBFacet
from repro.utils.rng import derive_rng


def _run_with_timeout(publisher, environment, timeout_ms, seed=101):
    adjusted = dataclasses.replace(publisher, timeout_ms=timeout_ms, misconfigured_wrapper=False)
    context = BrowserContext.clean_slate(derive_rng(seed, "timeout-ablation", publisher.domain, timeout_ms))
    outcome = build_wrapper(adjusted, context, environment).run()
    bids = outcome.received_bids
    late = [bid for bid in bids if bid.late]
    return {
        "latency": outcome.total_latency_ms,
        "bids": len(bids),
        "late": len(late),
        "lost_cpm": sum(bid.cpm or 0.0 for bid in late),
    }


def test_bench_timeout_ablation(benchmark, artifacts):
    publishers = [
        publisher
        for publisher in artifacts.population.hb_publishers()
        if publisher.facet in (HBFacet.CLIENT_SIDE, HBFacet.HYBRID) and publisher.n_partners >= 3
    ][:40]
    assert publishers, "the ablation needs multi-partner client/hybrid publishers"
    timeouts = (500.0, 1_500.0, 3_000.0, 6_000.0)

    def sweep():
        per_timeout = {}
        for timeout_ms in timeouts:
            rows = [_run_with_timeout(p, artifacts.environment, timeout_ms) for p in publishers]
            per_timeout[timeout_ms] = {
                "median_latency": float(np.median([row["latency"] for row in rows])),
                "late_share": float(
                    sum(row["late"] for row in rows) / max(1, sum(row["bids"] for row in rows))
                ),
                "lost_cpm": float(np.mean([row["lost_cpm"] for row in rows])),
            }
        return per_timeout

    per_timeout = benchmark(sweep)

    tightest, loosest = per_timeout[timeouts[0]], per_timeout[timeouts[-1]]
    # A tighter timeout caps latency but wastes more bids (and their revenue).
    assert tightest["median_latency"] <= loosest["median_latency"]
    assert tightest["late_share"] >= loosest["late_share"]
    assert tightest["lost_cpm"] >= loosest["lost_cpm"] - 1e-9
    print()
    for timeout_ms, row in per_timeout.items():
        print(f"timeout={timeout_ms:>6.0f} ms  median latency={row['median_latency']:7.1f} ms  "
              f"late share={row['late_share']*100:5.1f}%  lost CPM/page={row['lost_cpm']:.4f}")
