"""Benchmark: the all-figures analysis path over one crawl dataset.

The metric registry computes every dataset-only artefact of the paper over
the shared bench-scale crawl.  Three variants quantify the dataset-index
redesign:

* ``uncached`` — every view is rebuilt on every access, the pre-registry
  behaviour where each figure re-scanned all detections from scratch;
* ``cold`` — indices are invalidated before each round, so the all-figures
  path pays each index build exactly once;
* ``warm`` — indices are already built, the steady state of a long-lived
  analysis process.

Comparing ``uncached`` to ``cold``/``warm`` shows the speedup the cached
indices buy on the all-figures path.
"""

from __future__ import annotations

import pytest

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import available_metrics, compute_metric


class _UncachedDataset(CrawlDataset):
    """A dataset that rebuilds every view on each access (the old behaviour)."""

    def _index(self, key, build):
        return build()


def _dataset_copy(artifacts, cls=CrawlDataset) -> CrawlDataset:
    return cls.from_detections(artifacts.dataset.detections, label="bench")


def _all_figures(context: AnalysisContext) -> int:
    produced = 0
    for name in available_metrics(context):
        assert compute_metric(name, context).text
        produced += 1
    return produced


@pytest.fixture(scope="module")
def offline_names(artifacts):
    return available_metrics(AnalysisContext.offline(artifacts.dataset))


def test_bench_all_figures_uncached(benchmark, artifacts, offline_names):
    context = AnalysisContext.offline(_dataset_copy(artifacts, _UncachedDataset))
    count = benchmark(_all_figures, context)
    assert count == len(offline_names)


def test_bench_all_figures_cold_indices(benchmark, artifacts, offline_names):
    dataset = _dataset_copy(artifacts)
    context = AnalysisContext.offline(dataset)

    def run() -> int:
        dataset.invalidate_indices()
        return _all_figures(context)

    count = benchmark(run)
    assert count == len(offline_names)


def test_bench_all_figures_warm_indices(benchmark, artifacts, offline_names):
    dataset = _dataset_copy(artifacts)
    context = AnalysisContext.offline(dataset)
    _all_figures(context)  # build every index once
    count = benchmark(_all_figures, context)
    assert count == len(offline_names)


def test_all_figures_build_each_index_once(artifacts):
    """The whole all-figures path must be pure cache hits on a second pass."""
    dataset = _dataset_copy(artifacts)
    context = AnalysisContext.offline(dataset)
    _all_figures(context)
    builds_after_first_pass = dataset.index_stats()["builds"]
    assert builds_after_first_pass > 0
    _all_figures(context)
    assert dataset.index_stats()["builds"] == builds_after_first_pass
