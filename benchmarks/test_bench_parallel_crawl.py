"""Benchmark: parallel sharded crawl vs the sequential baseline.

Measures the discovery pass over one slice of the bench population for each
execution backend, and asserts the engine's core guarantee along the way:
every backend and worker count yields the identical detection sequence, so
parallelism is purely an operational knob.
"""

import json

import pytest

from repro.crawler.crawler import CrawlConfig
from repro.crawler.engine import CrawlEngine
from repro.crawler.storage import detection_to_dict
from repro.detector.detector import HBDetector
from repro.detector.partner_list import build_known_partner_list

N_SITES = 150
SEED = 77


def _serialise(detections):
    return json.dumps([detection_to_dict(d) for d in detections])


@pytest.fixture(scope="module")
def publishers(artifacts):
    return list(artifacts.population)[:N_SITES]


@pytest.fixture(scope="module")
def serial_json(artifacts, publishers):
    detector = HBDetector(build_known_partner_list(artifacts.population.registry))
    engine = CrawlEngine(artifacts.environment, detector, CrawlConfig(seed=SEED))
    return _serialise(engine.crawl(publishers).detections)


@pytest.mark.parametrize(
    "backend_name,workers",
    [("serial", 1), ("thread", 4), ("process", 4)],
    ids=["serial-1", "thread-4", "process-4"],
)
def test_bench_parallel_crawl(benchmark, artifacts, publishers, serial_json, backend_name, workers):
    detector = HBDetector(build_known_partner_list(artifacts.population.registry))
    engine = CrawlEngine(
        artifacts.environment,
        detector,
        CrawlConfig(seed=SEED, workers=workers, backend=backend_name),
    )

    result = benchmark(engine.crawl, publishers)

    assert result.pages_visited == N_SITES
    assert 0.0 < result.adoption_rate < 0.5
    assert _serialise(result.detections) == serial_json
