"""Benchmark: Figure 12 — ECDF of total HB latency per website.

Paper: median latency ~600 ms (point 1), ~35% of sites above one second, and
~10% of sites exceeding the common 3-second wrapper timeout (point 2).
"""

from repro.experiments.figures import figure12_latency_ecdf


def test_bench_fig12_latency_ecdf(benchmark, artifacts):
    result = benchmark(figure12_latency_ecdf, artifacts)
    assert 350.0 <= result["median_ms"] <= 950.0
    assert 0.15 <= result["share_above_1s"] <= 0.55
    assert 0.01 <= result["share_above_3s"] <= 0.25
    print()
    print(result["text"])
