"""Benchmark: §1 / §7.2 headline — HB latency vs. the waterfall standard.

Paper: header bidding's median latency can be up to 3x the waterfall's, and
far worse in the tail (up to 15x for 10% of the sites).
"""

from repro.experiments.figures import waterfall_latency_comparison


def test_bench_waterfall_comparison(benchmark, artifacts):
    result = benchmark(waterfall_latency_comparison, artifacts)
    comparison = result["comparison"]
    # HB is slower than the waterfall at the median, by a factor in the
    # "up to 3x" range the paper reports.
    assert comparison.median_ratio > 1.2
    assert comparison.median_ratio < 6.0
    # The tail is worse than the median for HB.
    assert comparison.hb.p95 / comparison.hb.median > 2.0
    print()
    print(result["text"])
