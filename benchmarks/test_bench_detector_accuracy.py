"""Benchmark: §4.1 — HBDetector accuracy against ground truth.

Paper: the detector achieves 100% precision on the libraries it analyses, but
less than 100% recall (sites using unanalysed libraries are missed).  The
simulation can score this exactly because it owns the ground truth.
"""

from repro.experiments.tables import detector_accuracy


def test_bench_detector_accuracy(benchmark, artifacts):
    result = benchmark(detector_accuracy, artifacts)
    metrics = result["metrics"]
    assert metrics["precision"] == 1.0
    assert 0.9 <= metrics["recall"] <= 1.0
    assert metrics["facet_accuracy"] >= 0.85
    assert metrics["false_positives"] == 0
    print()
    print(result["text"])
