"""Benchmark: Figure 4 — HB adoption 2014-2019 (static analysis of archives).

Paper: ~10% of the yearly top-1k sites were early adopters in 2014, with a
steady climb to roughly 20% after the 2016 breakthrough.
"""

from repro.experiments.figures import figure04_adoption_history


def test_bench_fig04_adoption_history(benchmark, historical):
    result = benchmark(figure04_adoption_history, historical)
    rows = {int(row["year"]): row for row in result["rows"]}
    assert set(rows) == {2014, 2015, 2016, 2017, 2018, 2019}
    # Adoption grows over the years and lands in the paper's ballpark.
    assert rows[2014]["adoption_rate"] < rows[2019]["adoption_rate"]
    assert 0.03 <= rows[2014]["adoption_rate"] <= 0.13
    assert 0.10 <= rows[2019]["adoption_rate"] <= 0.25
    # Static analysis keeps high precision but imperfect recall (§4.1).
    assert rows[2019]["precision"] >= 0.85
    assert rows[2019]["recall"] < 1.0
    print()
    print(result["text"])
