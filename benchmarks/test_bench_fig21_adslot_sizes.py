"""Benchmark: Figure 21 — most popular creative sizes per HB facet.

Paper: the 300x250 medium rectangle dominates every facet, followed by the
728x90 leaderboard and the 300x600 half page.
"""

from repro.experiments.figures import figure21_adslot_sizes
from repro.models import HBFacet


def test_bench_fig21_adslot_sizes(benchmark, artifacts):
    result = benchmark(figure21_adslot_sizes, artifacts, top_n=10)
    shares = result["shares"]
    for facet in HBFacet:
        rows = shares.get(facet, [])
        assert rows, f"no slot sizes observed for {facet}"
        labels = [label for label, _ in rows]
        assert labels[0] == "300x250"
        assert "728x90" in labels[:4]
        total = sum(share for _, share in rows)
        assert total <= 1.0 + 1e-9
    print()
    print(result["text"])
