"""Benchmark: Figure 20 — HB latency vs. number of auctioned ad-slots.

Paper: 1-3 auctioned slots correspond to 0.30-0.57 s median latency, 3-5 slots
to 0.57-0.92 s; more slots mean more latency and more variability.
"""

import numpy as np

from repro.experiments.figures import figure20_latency_vs_adslots


def test_bench_fig20_latency_vs_adslots(benchmark, artifacts):
    result = benchmark(figure20_latency_vs_adslots, artifacts)
    rows = result["rows"]
    counts = [count for count, _ in rows]
    medians = {count: stats.median for count, stats in rows}
    assert min(counts) <= 2
    few = [median for count, median in medians.items() if count <= 3]
    many = [median for count, median in medians.items() if count >= 5]
    if many:
        assert float(np.median(many)) > float(np.median(few)) * 0.9
    assert all(median > 0 for median in medians.values())
    print()
    print(result["text"])
