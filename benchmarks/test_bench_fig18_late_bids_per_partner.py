"""Benchmark: Figure 18 — share of late bids per demand partner.

Paper: 21 demand partners are late in at least half of the auctions they take
part in, and a few lose every single bid to lateness.
"""

from repro.experiments.figures import figure18_late_bids_per_partner


def test_bench_fig18_late_bids_per_partner(benchmark, artifacts):
    result = benchmark(figure18_late_bids_per_partner, artifacts)
    rows = result["rows"]
    assert rows, "expected per-partner lateness rows"
    shares = [row.late_share for row in rows]
    assert shares == sorted(shares, reverse=True)
    # Shape: a heavy tail of chronically late partners.  The paper counts 21
    # partners late in >=50% of their auctions; the reproduced magnitudes are
    # lower (worst partners lose roughly 35-65% of their bids, see
    # EXPERIMENTS.md), so the assertions check the heavy-tail shape rather
    # than the paper's exact threshold.
    assert shares[0] >= 0.35
    assert sum(1 for share in shares if share >= 0.30) >= 3
    assert sum(1 for share in shares if share >= 0.15) >= 6
    print()
    print(result["text"])
