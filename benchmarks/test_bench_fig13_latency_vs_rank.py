"""Benchmark: Figure 13 — HB latency vs. website popularity rank.

Paper: the 500 highest-ranked sites show a median HB latency of ~310 ms,
clearly below the ~500 ms median of the remaining sites.
"""

import numpy as np

from repro.experiments.figures import figure13_latency_vs_rank


def test_bench_fig13_latency_vs_rank(benchmark, artifacts):
    result = benchmark(figure13_latency_vs_rank, artifacts)
    rows = result["rows"]
    assert len(rows) >= 3
    assert all(stats.median > 0 for _, stats in rows)

    # The paper's claim — highly ranked sites see lower HB latency — is
    # asserted on the pooled head-vs-tail populations rather than on a single
    # (small, noisy) rank bin.
    head_threshold = artifacts.population.config.head_rank_threshold
    head, tail = [], []
    for detection in artifacts.dataset.hb_detections():
        if detection.total_latency_ms is None or detection.total_latency_ms <= 0:
            continue
        (head if detection.rank <= head_threshold else tail).append(detection.total_latency_ms)
    assert head and tail
    assert float(np.median(head)) < float(np.median(tail))
    print()
    print(result["text"])
