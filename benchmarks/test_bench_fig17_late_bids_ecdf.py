"""Benchmark: Figure 17 — share of late bids per auction (ECDF).

Paper: among auctions that have late bids, the median auction loses about half
of its bid responses to lateness, and 10% of auctions lose 80% or more.
"""

from repro.experiments.figures import figure17_late_bids_ecdf


def test_bench_fig17_late_bids_ecdf(benchmark, artifacts):
    result = benchmark(figure17_late_bids_ecdf, artifacts)
    curve = result["ecdf"]
    assert 25.0 <= result["median_late_share"] <= 85.0
    # A noticeable fraction of late-bid auctions lose most of their bids.
    assert curve.fraction_above(79.9) >= 0.05
    summary = result["summary"]
    assert 0.0 < summary["share_of_auctions_with_late_bids"] < 0.6
    print()
    print(result["text"])
