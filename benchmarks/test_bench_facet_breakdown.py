"""Benchmark: §4.6 — facet breakdown.

Paper: server-side HB covers 48% of HB sites, hybrid 34.7%, client-side 17.3%.
"""

from repro.experiments.figures import facet_breakdown_result
from repro.models import HBFacet


def test_bench_facet_breakdown(benchmark, artifacts):
    result = benchmark(facet_breakdown_result, artifacts)
    breakdown = result["breakdown"]
    assert abs(sum(breakdown.values()) - 1.0) < 1e-9
    # Ordering and rough magnitudes from the paper.
    assert breakdown[HBFacet.SERVER_SIDE] > breakdown[HBFacet.HYBRID] > breakdown[HBFacet.CLIENT_SIDE]
    assert 0.35 <= breakdown[HBFacet.SERVER_SIDE] <= 0.60
    assert 0.25 <= breakdown[HBFacet.HYBRID] <= 0.50
    assert 0.08 <= breakdown[HBFacet.CLIENT_SIDE] <= 0.30
    print()
    print(result["text"])
