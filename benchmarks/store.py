"""Detection store benchmark: columnar binary sink vs the JSONL reference.

Measures the storage paths PR 8 introduced and writes a machine-readable
JSON report (``BENCH_store.json`` at the repo root by default) so future
PRs can track the store trajectory:

* ``write`` — detections/s streamed through each buffered sink
  (``flush_every=64``, the engine default) over a longitudinal-sized
  record stream.  ``columnar_over_jsonl`` is the headline ratio: the
  typed sink must not be slower than formatting JSON text.
* ``open`` — cold open-to-first-answer latency: construct the dataset
  from the file and render the ``table1`` summary metric, per format.
  The JSONL path pays a full parse + object build; the columnar path
  mmaps column views and reduces them with numpy.  ``speedup`` is the
  PR's acceptance number (>=10x at full size).
* ``warm`` — a second metric over the already-open dataset, showing the
  columnar dataset answers summary-shaped questions without ever
  materialising record objects.
* ``size`` — bytes on disk per format and the compression ratio from
  dictionary-encoded strings and fixed-width numerics.

Every timed section asserts the correctness contract first (converted
bytes identical to the JSONL reference, identical metric text from both
backends), so the harness doubles as a smoke test: CI runs it with
``--smoke`` (tiny workload, one iteration) and ``--check-baseline`` to
fail on a >30% regression against the committed report.

Run with::

    PYTHONPATH=src python benchmarks/store.py [--smoke] [--out PATH]
        [--check-baseline] [--max-regression 0.30]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import compute_metric
from repro.crawler.colstore import ColumnarDataset, ColumnarStorage
from repro.crawler.crawler import CrawlConfig
from repro.crawler.engine import CrawlEngine
from repro.crawler.storage import CrawlStorage
from repro.detector.detector import HBDetector
from repro.detector.partner_list import build_known_partner_list
from repro.ecosystem.publishers import PopulationConfig, generate_population
from repro.ecosystem.registry import default_registry
from repro.hb.environment import AuctionEnvironment

SEED = 77
FLUSH_EVERY = 64


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def _longitudinal(detections, days: int):
    """Replicate one crawl's detections across ``days`` re-crawl days —
    the record stream a longitudinal campaign actually writes."""
    return [
        dataclasses.replace(d, crawl_day=d.crawl_day + day)
        for day in range(days)
        for d in detections
    ]


def bench_write(records, tmp_path: Path, repeat: int) -> dict:
    out: dict = {}
    timings: dict = {}
    for label, storage_cls, suffix in (
        ("jsonl", CrawlStorage, "jsonl"),
        ("columnar", ColumnarStorage, "hbc"),
    ):
        path = tmp_path / f"write.{suffix}"
        best = None
        for _ in range(max(1, repeat)):
            sink = storage_cls(path).open_sink(flush_every=FLUSH_EVERY)
            with sink:
                elapsed, _ = _timed(sink.write_many, records)
            if best is None or elapsed < best:
                best = elapsed
        timings[label] = best
        out[label] = {
            "flush_every": FLUSH_EVERY,
            "detections_per_s": round(len(records) / best, 1),
            "flushes": sink.flushes,
        }
    # Correctness before speed: the columnar file must decode to the exact
    # record stream, and converting it must reproduce the JSONL bytes.
    converted = CrawlStorage(tmp_path / "converted.jsonl")
    converted.save(ColumnarStorage(tmp_path / "write.hbc").iter_load())
    assert converted.path.read_bytes() == (tmp_path / "write.jsonl").read_bytes(), (
        "columnar -> jsonl conversion diverged from the direct JSONL sink"
    )
    out["columnar_over_jsonl"] = round(timings["jsonl"] / timings["columnar"], 2)
    return out


def _open_and_answer_jsonl(path: Path) -> str:
    dataset = CrawlDataset.from_path(path)
    return compute_metric("table1", AnalysisContext.offline(dataset)).text


def _open_and_answer_columnar(path: Path) -> str:
    dataset = CrawlDataset.from_path(path)
    text = compute_metric("table1", AnalysisContext.offline(dataset)).text
    assert isinstance(dataset, ColumnarDataset) and dataset._records is None, (
        "columnar cold open materialised record objects"
    )
    return text


def bench_open(tmp_path: Path, repeat: int) -> dict:
    jsonl_path = tmp_path / "write.jsonl"
    columnar_path = tmp_path / "write.hbc"
    jsonl_s, jsonl_text = min(
        (_timed(_open_and_answer_jsonl, jsonl_path) for _ in range(max(1, repeat))),
        key=lambda timed: timed[0],
    )
    columnar_s, columnar_text = min(
        (_timed(_open_and_answer_columnar, columnar_path) for _ in range(max(1, repeat))),
        key=lambda timed: timed[0],
    )
    assert jsonl_text == columnar_text, "table1 diverged between storage backends"

    # Warm path: the dataset is open, answer another summary question.
    jsonl_dataset = CrawlDataset.from_path(jsonl_path)
    columnar_dataset = CrawlDataset.from_path(columnar_path)
    jsonl_warm_s, jsonl_summary = min(
        (_timed(jsonl_dataset.summary) for _ in range(max(1, repeat))),
        key=lambda timed: timed[0],
    )
    columnar_warm_s, columnar_summary = min(
        (_timed(columnar_dataset.summary) for _ in range(max(1, repeat))),
        key=lambda timed: timed[0],
    )
    assert jsonl_summary == columnar_summary, "summary diverged between backends"
    return {
        "jsonl_cold_ms": round(jsonl_s * 1e3, 2),
        "columnar_cold_ms": round(columnar_s * 1e3, 2),
        # The acceptance number: open-to-first-answer, parse vs mmap.
        "cold_speedup": round(jsonl_s / columnar_s, 2),
        "warm": {
            "jsonl_summary_ms": round(jsonl_warm_s * 1e3, 3),
            "columnar_summary_ms": round(columnar_warm_s * 1e3, 3),
        },
    }


def bench_size(tmp_path: Path, n_records: int) -> dict:
    jsonl_bytes = (tmp_path / "write.jsonl").stat().st_size
    columnar_bytes = (tmp_path / "write.hbc").stat().st_size
    return {
        "detections": n_records,
        "jsonl_bytes": jsonl_bytes,
        "columnar_bytes": columnar_bytes,
        "jsonl_over_columnar": round(jsonl_bytes / columnar_bytes, 2),
        "columnar_bytes_per_detection": round(columnar_bytes / n_records, 1),
    }


def _load_baseline(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def check_baseline(report: dict, baseline: dict | None, max_regression: float) -> list[str]:
    """Return failure messages if the store regressed beyond the budget.

    ``write.columnar_over_jsonl`` is workload-size independent (both sinks
    stream the same records), so a ``--smoke`` CI run compares it against
    the committed full-size report.  ``open.cold_speedup`` grows with the
    dataset — at smoke scale the columnar fixed costs (mmap, footer parse,
    numpy reductions) dominate a file that parses in a millisecond anyway —
    so it is only gated when the run's workload matches the baseline's.
    A full-size run additionally enforces the PR's absolute acceptance
    bars: the columnar sink must not write slower than the buffered JSONL
    sink, and the cold open must be >=10x faster than the JSONL parse.
    Absolute throughputs vary with the machine, so they are recorded, not
    gated.
    """
    failures = []
    if not report["config"]["smoke"]:
        if report["write"]["columnar_over_jsonl"] < 1.0:
            failures.append(
                "columnar sink slower than buffered JSONL: "
                f"columnar_over_jsonl={report['write']['columnar_over_jsonl']}"
            )
        if report["open"]["cold_speedup"] < 10.0:
            failures.append(
                "columnar cold open under the 10x acceptance bar: "
                f"cold_speedup={report['open']['cold_speedup']}"
            )
    if baseline is None:
        return failures
    pairs = [("write columnar_over_jsonl", ("write", "columnar_over_jsonl"))]
    same_workload = report["config"]["detections"] == (
        baseline.get("config", {}).get("detections")
    )
    if same_workload:
        pairs.append(("open cold_speedup", ("open", "cold_speedup")))
    for label, keys in pairs:
        base: object = baseline
        now: object = report
        for key in keys:
            base = base.get(key) if isinstance(base, dict) else None
            now = now.get(key) if isinstance(now, dict) else None
        if not isinstance(base, (int, float)) or not isinstance(now, (int, float)):
            continue
        floor = base * (1.0 - max_regression)
        if now < floor:
            failures.append(
                f"{label} regressed: {now} < {floor:.2f} "
                f"(committed baseline {base}, budget -{max_regression:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_store.json", help="report path")
    parser.add_argument("--sites", type=int, default=480, help="sites per crawl")
    parser.add_argument("--days", type=int, default=30,
                        help="re-crawl days the record stream replicates")
    parser.add_argument("--repeat", type=int, default=3, help="timed iterations (best-of)")
    parser.add_argument("--smoke", action="store_true",
                        help="1 iteration over a tiny workload (CI rot check)")
    parser.add_argument("--check-baseline", action="store_true",
                        help="exit 1 if the gated ratios drop more than "
                        "--max-regression below the committed report at --out")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional drop vs the committed baseline "
                        "(default %(default)s)")
    args = parser.parse_args(argv)
    out_path = Path(args.out)
    if args.smoke:
        args.sites, args.days, args.repeat = 60, 3, 1
        # A smoke run must never clobber the committed full-size baseline:
        # it still *reads* the committed report for the ratio gates, but
        # its own results land in a gitignored sibling scratch file.
        if args.out == parser.get_default("out"):
            out_path = out_path.with_suffix(".smoke.json")

    baseline = _load_baseline(Path(args.out))

    registry = default_registry(seed=2019)
    population = generate_population(PopulationConfig(seed=7).scaled(max(args.sites, 60)), registry)
    environment = AuctionEnvironment(registry=registry)
    detector = HBDetector(build_known_partner_list(registry))
    publishers = list(population)[: args.sites]
    with CrawlEngine(environment, detector, CrawlConfig(seed=SEED)) as engine:
        detections = engine.crawl(publishers).detections
    records = _longitudinal(detections, args.days)

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        report = {
            "name": "store",
            "config": {
                "sites": args.sites,
                "days": args.days,
                "detections": len(records),
                "repeat": args.repeat,
                "smoke": args.smoke,
                "python": sys.version.split()[0],
            },
            "write": bench_write(records, tmp_path, args.repeat),
            "open": bench_open(tmp_path, args.repeat),
            "size": bench_size(tmp_path, len(records)),
        }

    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    print(json.dumps(report, indent=2))

    if args.check_baseline:
        failures = check_baseline(report, baseline, args.max_regression)
        for failure in failures:
            print(f"BASELINE REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
