"""Benchmark: §5.4 — HB baseline prices vs. waterfall RTB prices.

Paper: prior waterfall measurements report ~0.19 CPM median for the 300x250
slot with real user profiles, well above the ~0.031 CPM baseline the vanilla
crawler observes in HB; the gap is attributed to the missing user profile,
not to the protocol.
"""

from repro.experiments.figures import waterfall_price_comparison


def test_bench_price_comparison(benchmark, artifacts):
    result = benchmark(waterfall_price_comparison, artifacts)
    comparison = result["comparison"]
    # Real-user waterfall prices are a multiple of the vanilla HB baseline.
    assert comparison.real_user_median_ratio > 2.0
    # With the same vanilla profile, waterfall and HB prices are comparable
    # (same order of magnitude) — the profile, not the protocol, drives prices.
    ratio = comparison.waterfall_vanilla.median / comparison.hb.median
    assert 0.2 < ratio < 8.0
    print()
    print(result["text"])
