"""Benchmark: Figure 15 — HB latency vs. number of demand partners per site.

Paper: sites with one partner see ~268 ms, two partners ~1.1 s, and more than
two partners 1.3-3.0 s median latency; single-partner sites are the majority.
This bench also doubles as the partner-count ablation called out in DESIGN.md.
"""

from repro.experiments.figures import figure15_latency_vs_partner_count


def test_bench_fig15_latency_vs_partner_count(benchmark, artifacts):
    result = benchmark(figure15_latency_vs_partner_count, artifacts)
    rows = {count: (stats, share) for count, stats, share in result["rows"]}
    assert 1 in rows
    single_stats, single_share = rows[1]
    assert single_share > 0.35, "single-partner sites are the majority"
    assert 150.0 <= single_stats.median <= 600.0
    multi_medians = [stats.median for count, (stats, _) in rows.items() if count >= 2]
    assert multi_medians and max(multi_medians) > 1.8 * single_stats.median
    print()
    print(result["text"])
