"""Benchmark: Figure 14 — fastest, top-market-share and slowest partners.

Paper: the fastest partners answer in 41-217 ms (median), the slowest in
646-1290 ms, and the top market-share partners sit in between — quick, but
not the quickest (Criteo being the notable sub-200 ms exception).
"""

import numpy as np

from repro.experiments.figures import figure14_partner_latency


def test_bench_fig14_partner_latency(benchmark, artifacts):
    result = benchmark(figure14_partner_latency, artifacts, top_n=10)
    fastest = [profile.median_ms for profile in result["fastest"]]
    slowest = [profile.median_ms for profile in result["slowest"]]
    top_market = [profile.median_ms for profile in result["top_market"]]
    assert max(fastest) < min(slowest)
    assert 20.0 <= min(fastest) <= 300.0
    # The slowest group's upper bound is wider than the paper's 1,290 ms
    # because chronically late partners are modelled with overload bursts,
    # which drag their observed medians up (see EXPERIMENTS.md).
    assert 450.0 <= max(slowest) <= 9_000.0
    # Top market-share partners are quick but not the very fastest group.
    assert np.median(top_market) > np.median(fastest)
    assert np.median(top_market) < np.median(slowest)
    print()
    print(result["text"])
