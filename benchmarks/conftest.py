"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper from one shared
crawl of the bench-scale simulated Web (3,000 sites, two daily re-crawls).
The crawl itself runs once per session; each benchmark then measures the
analysis that produces its artefact and asserts the qualitative shape the
paper reports.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig.bench_scale()


@pytest.fixture(scope="session")
def artifacts(bench_config):
    """The shared bench-scale crawl (generated once per session)."""
    return ExperimentRunner(bench_config).run()


@pytest.fixture(scope="session")
def historical(bench_config):
    """The Figure 4 historical adoption study at bench scale."""
    return ExperimentRunner(bench_config).run_historical()
