"""Benchmark: Figure 10 — most frequent demand-partner combinations.

Paper: DFP alone covers ~48% of HB sites; Criteo and Yieldlab follow as
single partners (2.37% and 1.68%), and the popular pairs/triples all include
DFP (DFP appears in 51% of the multi-partner groups).
"""

from repro.experiments.figures import figure10_partner_combinations


def test_bench_fig10_partner_combinations(benchmark, artifacts):
    result = benchmark(figure10_partner_combinations, artifacts, top_n=15)
    rows = result["rows"]
    assert rows, "there must be at least one combination"
    top_combo, top_share = rows[0]
    assert top_combo == ("DFP",)
    assert 0.30 <= top_share <= 0.60
    # Multi-partner combinations frequently include DFP.
    multi = [combo for combo, _ in rows if len(combo) > 1]
    if multi:
        with_dfp = sum(1 for combo in multi if "DFP" in combo)
        assert with_dfp / len(multi) >= 0.4
    print()
    print(result["text"])
