"""Benchmark: Figure 24 — bid prices vs. the bidding partner's popularity.

Paper: the most popular demand partners bid low and consistently; the less
popular ones bid higher and with more variability, hoping to win the few
impressions they see.
"""

import numpy as np

from repro.experiments.figures import figure24_price_vs_popularity


def test_bench_fig24_price_vs_popularity(benchmark, artifacts):
    result = benchmark(figure24_price_vs_popularity, artifacts, bin_size=10)
    rows = result["rows"]
    assert len(rows) >= 3
    medians = [stats.median for _, stats in rows]
    spreads = [stats.spread for _, stats in rows]
    # The most popular bin bids lower than the typical long-tail bin ...
    assert medians[0] < float(np.median(medians[1:])) + 1e-9
    # ... and with less spread.
    assert spreads[0] < float(np.max(spreads[1:])) + 1e-9
    print()
    print(result["text"])
