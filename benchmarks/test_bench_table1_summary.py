"""Benchmark: Table 1 — crawl summary.

Paper: 35,000 sites crawled, 4,998 with HB (14.28%), 798,629 auctions,
241,392 bids, 84 demand partners over 5 weeks.  The bench-scale crawl keeps
the proportions (adoption rate, auctions per HB site per day) while running on
a smaller population.
"""

from repro.experiments.tables import table1_summary


def test_bench_table1_summary(benchmark, artifacts):
    result = benchmark(table1_summary, artifacts)
    summary = result["summary"]
    assert summary["websites_crawled"] == artifacts.config.total_sites
    # Adoption rate close to the paper's 14.28%.
    assert 0.10 <= summary["adoption_rate"] <= 0.20
    # Several auctions per HB site per crawl day, as in the paper (~4.7).
    auctions_per_site_day = summary["auctions_detected"] / max(
        summary["websites_with_hb"] * summary["crawl_days"], 1
    )
    assert 1.5 <= auctions_per_site_day <= 12.0
    # Bids were observed but not every auction draws one for a vanilla profile.
    assert 0 < summary["bids_detected"]
    assert summary["competing_demand_partners"] >= 40
    print()
    print(result["text"])
