"""Benchmark: §3.2 — HB adoption by Alexa-rank tier.

Paper: 20-23% of the top 5k sites, 12-17% of the 5k-15k range and 10-12% of
the rest use HB, for 14.28% overall.
"""

from repro.experiments.tables import adoption_by_rank


def test_bench_adoption_by_rank(benchmark, artifacts):
    result = benchmark(adoption_by_rank, artifacts)
    tiers = {tier.tier_label: tier.adoption_rate for tier in result["tiers"]}
    assert 0.10 <= result["overall"] <= 0.20
    # The head of the ranking adopts HB more than the tail.
    assert tiers["top 5k"] > tiers["15k+"]
    assert 0.15 <= tiers["top 5k"] <= 0.30
    assert 0.07 <= tiers["15k+"] <= 0.17
    print()
    print(result["text"])
