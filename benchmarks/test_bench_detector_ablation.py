"""Ablation benchmark: detection channels and partner-list coverage.

DESIGN.md calls for an ablation showing why the paper combines the DOM-event
and web-request channels and avoids static analysis live:

* static analysis on the live pages loses recall (renamed wrappers, gpt-only
  server-side sites) and picks up lookalike script names;
* shrinking the curated partner list lowers recall but never precision.
"""

import pytest

from repro.detector.detector import HBDetector
from repro.detector.partner_list import build_known_partner_list
from repro.detector.static_analysis import StaticAnalyzer


def _score(pairs):
    tp = sum(1 for actual, detected in pairs if actual and detected)
    fp = sum(1 for actual, detected in pairs if not actual and detected)
    fn = sum(1 for actual, detected in pairs if actual and not detected)
    precision = tp / (tp + fp) if (tp + fp) else 1.0
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    return precision, recall


@pytest.fixture(scope="module")
def page_sample(artifacts):
    """Ground truth + page loads for a slice of the bench population."""
    from repro.browser.engine import BrowserEngine

    engine = BrowserEngine(artifacts.environment, seed=artifacts.config.seed)
    publishers = list(artifacts.population)[:400]
    return [(publisher, engine.load(publisher)) for publisher in publishers]


def test_bench_detector_ablation(benchmark, artifacts, page_sample):
    full_detector = HBDetector(build_known_partner_list(artifacts.population.registry))
    narrow_detector = HBDetector(
        build_known_partner_list(artifacts.population.registry, coverage=0.3, seed=1)
    )
    static = StaticAnalyzer()

    def run_ablation():
        dynamic_full = [(p.uses_hb, full_detector.inspect_page(r).hb_detected) for p, r in page_sample]
        dynamic_narrow = [(p.uses_hb, narrow_detector.inspect_page(r).hb_detected) for p, r in page_sample]
        static_pairs = [(p.uses_hb, static.analyze(p.domain, r.page_html).hb_detected)
                        for p, r in page_sample]
        return dynamic_full, dynamic_narrow, static_pairs

    dynamic_full, dynamic_narrow, static_pairs = benchmark(run_ablation)

    full_precision, full_recall = _score(dynamic_full)
    narrow_precision, narrow_recall = _score(dynamic_narrow)
    static_precision, static_recall = _score(static_pairs)

    # The combined dynamic detector keeps perfect precision and high recall.
    assert full_precision == 1.0 and full_recall >= 0.9
    # A stale partner list costs recall, never precision.
    assert narrow_precision == 1.0
    assert narrow_recall <= full_recall
    # Static analysis live loses recall compared to the dynamic detector.
    assert static_recall < full_recall
    print()
    print(f"dynamic (full list):   precision={full_precision:.3f} recall={full_recall:.3f}")
    print(f"dynamic (30% list):    precision={narrow_precision:.3f} recall={narrow_recall:.3f}")
    print(f"static analysis:       precision={static_precision:.3f} recall={static_recall:.3f}")
