"""Benchmark: crawl-pipeline throughput.

Not a paper artefact, but the operational quantity that determines how long a
full 35k-site campaign takes: pages crawled (loaded + detected) per second.
"""

from repro.crawler.crawler import CrawlConfig, Crawler
from repro.detector.detector import HBDetector
from repro.detector.partner_list import build_known_partner_list


def test_bench_crawl_pipeline(benchmark, artifacts):
    detector = HBDetector(build_known_partner_list(artifacts.population.registry))
    crawler = Crawler(artifacts.environment, detector, CrawlConfig(seed=77))
    publishers = list(artifacts.population)[:150]

    result = benchmark(crawler.crawl, publishers)

    assert result.pages_visited == len(publishers)
    assert 0.0 < result.adoption_rate < 0.5
    assert all(detection.domain for detection in result.detections)
