"""Benchmark: Figure 9 — number of demand partners per HB website (ECDF).

Paper: more than 50% of publishers expose a single demand partner, ~20% use
five or more and ~5% use ten or more.
"""

from repro.experiments.figures import figure09_partners_per_site


def test_bench_fig09_partners_per_site(benchmark, artifacts):
    result = benchmark(figure09_partners_per_site, artifacts)
    assert 0.40 <= result["share_one_partner"] <= 0.65
    assert 0.10 <= result["share_five_or_more"] <= 0.35
    assert 0.01 <= result["share_ten_or_more"] <= 0.12
    assert result["ecdf"].values[-1] <= 25
    print()
    print(result["text"])
