"""Hot-path benchmark harness: fast-path simulation, worker reuse, indices, sink.

Measures the paths PR 3 and PR 5 optimised and writes a machine-readable
JSON report (``BENCH_crawl_hotpath.json`` at the repo root by default) so
future PRs can track the perf trajectory:

* ``crawl`` — pages/s per backend.  ``serial`` reports the slow reference
  path (``fast_path=False``), the scalar per-page fast path
  (``batch_sim=False``, the PR 5 design), and the columnar batch path
  (the default) cold and warm — ``columnar_pages_per_s`` is the steady
  state a longitudinal campaign pays per day and ``columnar_over_serial``
  is its speedup over the scalar warm loop it superseded, measured in the
  same run so the ratio is machine-independent; pool backends report cold
  vs warm plus
  ``process.over_serial`` (process warm / serial warm) and
  ``process.worker_pages_per_s`` (throughput inside the workers, separating
  the simulation hot path from the single-core IPC tax).
* ``worker_ship`` — bytes crossing the process boundary: the one-time
  shared-memory payload and site-list blocks versus the old
  per-shard-per-crawl pickling.
* ``index`` — detections/s for a cold full re-analysis vs an incremental
  ``extend()`` + re-access of every index, with the rebuild counts proving
  the warm path never rebuilds.
* ``sink`` — detections/s through an unbuffered (``flush_every=1``) vs a
  buffered sink, and end-to-end pages/s of a parallel crawl streaming to
  each; the produced files are asserted byte-identical.
* ``match_host`` — partner-list lookups/s cold vs memoised.

Every timed section also asserts the optimisation's correctness contract
(fast path byte-identical to the slow reference path, byte-identical
detections/files across backends, incremental == rebuilt), so the harness
doubles as a smoke test: CI runs it with ``--smoke`` (tiny workload, one
iteration) to keep it from rotting, and with ``--check-baseline`` to fail on
a >30% throughput regression against the committed report.

Every run also appends a timestamped entry to ``BENCH_trajectory.json``
comparing itself against the committed baseline, so the history of the hot
path survives each report overwrite.

Run with::

    PYTHONPATH=src python benchmarks/hotpath.py [--smoke] [--out PATH]
        [--check-baseline] [--max-regression 0.30]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pickle
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.analysis.dataset import CrawlDataset
from repro.crawler.crawler import CrawlConfig
from repro.crawler.engine import CrawlEngine
from repro.crawler.storage import CrawlStorage, detection_to_dict
from repro.detector.detector import HBDetector
from repro.detector.partner_list import build_known_partner_list
from repro.ecosystem.publishers import PopulationConfig, generate_population
from repro.ecosystem.registry import default_registry
from repro.hb.environment import AuctionEnvironment

SEED = 77
WORKERS = 4


def _serialise(detections):
    return json.dumps([detection_to_dict(d) for d in detections])


def _touch_indices(dataset: CrawlDataset) -> None:
    """Access every registered index (two rank-bin parameters included)."""
    dataset.hb_detections()
    dataset.sites()
    dataset.hb_sites()
    dataset.auctions()
    dataset.bids()
    dataset.priced_bids()
    dataset.by_facet()
    dataset.auctions_by_facet()
    dataset.bids_by_partner()
    dataset.partner_site_counts()
    dataset.partner_popularity_ranking()
    dataset.partner_latency_samples()
    dataset.site_latencies()
    dataset.hb_latency_values()
    dataset.hb_latencies_by_rank_bin(10)
    dataset.hb_latencies_by_rank_bin(50)
    dataset.crawl_days()
    dataset.summary()


def bench_crawl(environment, detector, publishers, repeat: int) -> dict:
    n = len(publishers)
    results: dict = {}

    # Slow reference path: every per-page input re-derived (pre-PR-5 design).
    with CrawlEngine(environment, detector, CrawlConfig(seed=SEED, fast_path=False)) as engine:
        slow_result = engine.crawl(publishers)
        slow_s = min(
            [_timed(engine.crawl, publishers) for _ in range(max(1, repeat))]
        )
    reference_json = _serialise(slow_result.detections)

    # Scalar fast path (the PR 5 design): precompiled site profiles and
    # per-worker scratch buffers, one page at a time.  Kept as the columnar
    # path's same-machine yardstick.
    scalar_config = CrawlConfig(seed=SEED, batch_sim=False)
    with CrawlEngine(environment, detector, scalar_config) as engine:
        scalar_result = engine.crawl(publishers)
        assert _serialise(scalar_result.detections) == reference_json, "scalar path diverged"
        scalar_warm_s = min(
            [_timed(engine.crawl, publishers) for _ in range(max(1, repeat))]
        )

    # Columnar batch path (the default): whole shards seeded and stepped as
    # numpy arrays, ad pages fused onto one reusable generator.
    with CrawlEngine(environment, detector, CrawlConfig(seed=SEED)) as engine:
        start = time.perf_counter()
        cold_result = engine.crawl(publishers)
        cold_s = time.perf_counter() - start
        assert _serialise(cold_result.detections) == reference_json, "columnar path diverged"
        serial_warm_s = min(
            [_timed(engine.crawl, publishers) for _ in range(max(1, repeat))]
        )
    results["serial"] = {
        # Steady-state throughput: what each day of a longitudinal campaign
        # pays once the profile table is compiled.  The default serial path
        # IS the columnar path, so the two keys agree by construction;
        # ``pages_per_s`` stays for baseline continuity, the explicit name
        # is what the CI gate and the trajectory track.
        "pages_per_s": round(n / serial_warm_s, 1),
        "columnar_pages_per_s": round(n / serial_warm_s, 1),
        "cold_pages_per_s": round(n / cold_s, 1),
        "scalar_pages_per_s": round(n / scalar_warm_s, 1),
        "slow_path_pages_per_s": round(n / slow_s, 1),
        "fast_over_slow": round(slow_s / serial_warm_s, 2),
        # Columnar vs the scalar warm loop, measured back-to-back on the
        # same machine — the machine-independent speedup of this PR.
        "columnar_over_serial": round(scalar_warm_s / serial_warm_s, 2),
    }

    ship_counts = {}
    for backend in ("thread", "process"):
        config = CrawlConfig(seed=SEED, workers=WORKERS, backend=backend)
        with CrawlEngine(environment, detector, config) as engine:
            start = time.perf_counter()
            cold_result = engine.crawl(publishers)
            cold_s = time.perf_counter() - start
            assert _serialise(cold_result.detections) == reference_json, backend
            warm_s = min(
                [_timed(engine.crawl, publishers) for _ in range(max(1, repeat))]
            )
            if backend == "process":
                ship_counts = {
                    "shared_site_tasks": engine.backend.shared_site_tasks,
                    "fallback_tasks": engine.backend.fallback_tasks,
                }
        results[backend] = {
            "cold_pages_per_s": round(n / cold_s, 1),
            "warm_pages_per_s": round(n / warm_s, 1),
            "warm_over_cold": round(cold_s / warm_s, 2),
        }

    # Process-vs-serial is the regression guard the old report lacked: the
    # ratio is recorded so a slowdown cannot slip in silently.  On a
    # single-CPU host the process backend cannot exceed serial (the workers
    # and the parent share one core), so the effective parallelism is
    # recorded alongside; worker_pages_per_s isolates the in-worker hot path
    # from that scheduling tax.
    effective_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    results["process"]["over_serial"] = round(
        results["process"]["warm_pages_per_s"] / results["serial"]["pages_per_s"], 2
    )
    results["process"]["worker_pages_per_s"] = _bench_in_worker_throughput(
        environment, detector, publishers, repeat
    )
    results["process"]["effective_cpus"] = effective_cpus
    results["process"]["cpu_bound_note"] = (
        "single-CPU host: process workers and parent share one core, so "
        "over_serial < 1 is a hardware ceiling, not a software regression"
        if effective_cpus == 1
        else "multi-core host"
    )

    results["worker_ship"] = _bench_worker_ship(
        environment, detector, publishers, repeat, ship_counts
    )
    return results


def _bench_in_worker_throughput(environment, detector, publishers, repeat: int) -> float:
    """Pages/s of the simulation hot path *inside* process workers.

    Measured in CPU time (``time.process_time``), so it is undistorted by
    workers time-slicing shared cores: it answers "how fast does the worker
    hot path itself run", which is the number that regressed pre-PR-5
    (per-page object churn).  The gap between this and ``warm_pages_per_s``
    is dispatch/result IPC plus any core sharing.
    """
    import repro.crawler.engine as ce

    config = CrawlConfig(seed=SEED, workers=WORKERS, backend="process")
    plan = ce.CrawlPlan.build(
        publishers, workers=WORKERS, seed=SEED, oversubscribe=config.shard_oversubscribe
    )
    canonical = [p for shard in plan.shards for p in shard.publishers]
    payload = ce.SharedPayload((environment, detector, config))
    sites_block = ce.SharedPayload(canonical)
    n = len(publishers)
    try:
        from concurrent.futures import ProcessPoolExecutor

        # One worker on purpose: every shard lands on the same process, so
        # after the first pass its profile table is fully warm and the CPU
        # time measures the steady-state hot path, not compile noise from
        # shards hopping between workers.
        with ProcessPoolExecutor(
            max_workers=1,
            initializer=ce._init_process_worker,
            initargs=(payload.name, payload.size),
        ) as pool:
            best = None
            for _ in range(1 + max(1, repeat)):
                futures = [
                    pool.submit(
                        _timed_shared_shard,
                        sites_block.name,
                        sites_block.size,
                        shard.index,
                        shard.start,
                        len(shard.publishers),
                        shard.shard_seed,
                    )
                    for shard in plan.shards
                ]
                in_worker = sum(future.result() for future in futures)
                if best is None or in_worker < best:
                    best = in_worker
    finally:
        sites_block.release()
        payload.release()
    return round(n / best, 1)


def _timed_shared_shard(sites_name, sites_size, index, start, length, shard_seed):
    import repro.crawler.engine as ce

    begin = time.process_time()
    ce._run_shard_from_shared_sites(sites_name, sites_size, index, start, length, shard_seed, 0)
    return time.process_time() - begin


def _bench_worker_ship(environment, detector, publishers, repeat: int,
                       ship_counts: dict) -> dict:
    """Bytes crossing the process boundary, new scheme vs the old ones.

    ``ship_counts`` holds the *observed* task counters of the process
    engine's backend over the cold + warm crawls above: every submitted
    shard task either referenced the shared site list (zero publisher bytes)
    or fell back to pickling its publishers.  The counters are asserted
    here, not assumed, so a silent fall-off of the zero-copy path fails the
    harness instead of going unnoticed.
    """
    payload_bytes = len(pickle.dumps((environment, detector), protocol=pickle.HIGHEST_PROTOCOL))
    site_list_bytes = len(pickle.dumps(list(publishers), protocol=pickle.HIGHEST_PROTOCOL))
    crawls = 1 + max(1, repeat)
    assert ship_counts.get("shared_site_tasks", 0) > 0, "no shard task used the shared site list"
    assert ship_counts.get("fallback_tasks", 1) == 0, (
        f"{ship_counts.get('fallback_tasks')} shard tasks re-pickled their publishers"
    )
    return {
        # One shared-memory block for the environment/detector/config, one
        # per distinct site list — regardless of worker count or crawl count.
        "payload_bytes": payload_bytes,
        "site_list_bytes": site_list_bytes,
        "shm_ships_per_engine": 2,
        "ships_pr3_per_engine": WORKERS,  # payload pickled per worker (initargs)
        "ships_pr1_per_engine": WORKERS * crawls,  # payload per shard per crawl
        **ship_counts,
        "site_bytes_per_task": 0 if ship_counts.get("fallback_tasks") == 0 else site_list_bytes,
        "crawls_measured": crawls,
    }


def _timed(fn, *args, **kwargs) -> float:
    start = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - start


def bench_index(detections, reps: int, repeat: int) -> dict:
    # Replicate the crawl into a longitudinal-sized dataset: same sites
    # re-visited on later crawl days, which is exactly the shape extend()
    # sees when tailing a daily re-crawl.
    def day_shift(day):
        return [dataclasses.replace(d, crawl_day=d.crawl_day + day) for d in detections]

    base = [d for day in range(reps) for d in day_shift(day)]
    delta = day_shift(reps)
    n, m = len(base), len(delta)

    cold_s = []
    builds_per_pass = 0
    for _ in range(max(1, repeat)):
        cold = CrawlDataset.from_detections(base + delta)
        cold_s.append(_timed(_touch_indices, cold))
        builds_per_pass = cold.index_stats()["builds"]
    cold_best = min(cold_s)

    warm = CrawlDataset.from_detections(base)
    _touch_indices(warm)
    builds_before = warm.index_stats()["builds"]
    incr_s = _timed(lambda: (warm.extend(delta), _touch_indices(warm)))
    rebuilds = warm.index_stats()["builds"] - builds_before

    reference = CrawlDataset.from_detections(base + delta)
    assert warm.summary() == reference.summary()
    assert warm.partner_site_counts() == reference.partner_site_counts()
    assert warm.hb_latency_values() == reference.hb_latency_values()
    assert rebuilds == 0, f"extend() rebuilt {rebuilds} indices"

    return {
        "dataset_detections": n + m,
        "cold": {
            "detections_per_s": round((n + m) / cold_best, 1),
            "builds_per_pass": builds_per_pass,
        },
        "incremental": {
            "delta_detections": m,
            "detections_per_s": round(m / incr_s, 1),
            "rebuilds_after_extend": rebuilds,
        },
        # What a live watcher pays per refresh: absorbing the delta into warm
        # indices vs re-analysing the whole grown dataset from scratch.  This
        # is the O(delta)-vs-O(n) ratio and grows with the dataset.
        "refresh_speedup": round(cold_best / incr_s, 2),
    }


def bench_sink(environment, detector, publishers, detections, reps: int) -> dict:
    many = detections * reps
    out: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        timings = {}
        for label, flush_every in (("unbuffered", 1), ("buffered", 64)):
            path = tmp_path / f"{label}.jsonl"
            sink = CrawlStorage(path).open_sink(flush_every=flush_every)
            with sink:
                elapsed = _timed(sink.write_many, many)
            timings[label] = elapsed
            out[label] = {
                "flush_every": flush_every,
                "detections_per_s": round(len(many) / elapsed, 1),
                "flushes": sink.flushes,
            }
        assert (tmp_path / "unbuffered.jsonl").read_bytes() == (
            tmp_path / "buffered.jsonl"
        ).read_bytes()
        out["speedup"] = round(timings["unbuffered"] / timings["buffered"], 2)

        # The parallel-crawl benchmark streaming to a sink.  Page-load
        # simulation dominates wall clock on this path, so the variants are
        # compared by the time the crawl actually spends inside the sink
        # (accumulated around every write()/flush() call) — that is the
        # persistence cost of the crawl, measured exactly instead of being
        # drowned in scheduler jitter.  Best-of across interleaved attempts
        # on one warm pool.
        class TimingSink:
            def __init__(self, inner):
                self.inner = inner
                self.spent_s = 0.0

            def write(self, detection):
                start = time.perf_counter()
                self.inner.write(detection)
                self.spent_s += time.perf_counter() - start

            def flush(self):
                start = time.perf_counter()
                self.inner.flush()
                self.spent_s += time.perf_counter() - start

        variants = {"unbuffered": 1, "buffered": 64}
        sink_best: dict = {label: None for label in variants}
        crawl_best: dict = {label: None for label in variants}
        config = CrawlConfig(seed=SEED, workers=WORKERS, backend="thread")
        with CrawlEngine(environment, detector, config) as engine:
            engine.crawl(publishers)  # warm the pool; measure steady state
            for _ in range(max(2, reps // 3)):
                for label, flush_every in variants.items():
                    path = tmp_path / f"crawl-{label}.jsonl"
                    inner = CrawlStorage(path).open_sink(flush_every=flush_every)
                    timing = TimingSink(inner)
                    with inner:
                        run_s = _timed(engine.crawl, publishers, sink=timing)
                        timing.flush()
                    if sink_best[label] is None or timing.spent_s < sink_best[label]:
                        sink_best[label] = timing.spent_s
                    if crawl_best[label] is None or run_s < crawl_best[label]:
                        crawl_best[label] = run_s
        assert (tmp_path / "crawl-unbuffered.jsonl").read_bytes() == (
            tmp_path / "crawl-buffered.jsonl"
        ).read_bytes()
        n = len(publishers)
        out["parallel_crawl"] = {
            "pages": n,
            "unbuffered_pages_per_s": round(n / crawl_best["unbuffered"], 1),
            "buffered_pages_per_s": round(n / crawl_best["buffered"], 1),
            "sink_time_ms": {
                label: round(spent * 1e3, 2) for label, spent in sink_best.items()
            },
            # Crawl persistence cost, buffered vs unbuffered.
            "sink_speedup": round(sink_best["unbuffered"] / sink_best["buffered"], 2),
        }
    return out


def bench_match_host(detector, repeat: int) -> dict:
    known = detector.known_partners
    hosts = [f"sub{i % 7}.{domain}" for i, domain in enumerate(known.domains)]
    hosts += [f"cdn{i}.unrelated-{i % 13}.example" for i in range(len(hosts))]
    loops = 40

    def run():
        for _ in range(loops):
            for host in hosts:
                known.match_host(host)

    # Cold: every lookup through the suffix walk (fresh caches each pass).
    cold_list = build_known_partner_list(default_registry(seed=2019))
    cold_hosts = hosts

    def run_cold():
        fresh = build_known_partner_list(default_registry(seed=2019))
        for host in cold_hosts:
            fresh.match_host(host)

    build_s = min(_timed(build_known_partner_list, default_registry(seed=2019)) for _ in range(3))
    cold_s = min(_timed(run_cold) for _ in range(max(1, repeat))) - build_s
    cold_s = max(cold_s, 1e-9)
    warm_s = min(_timed(run) for _ in range(max(1, repeat)))
    assert cold_list.match_host(hosts[0]) == known.match_host(hosts[0])
    return {
        "hosts": len(hosts),
        "uncached_lookups_per_s": round(len(hosts) / cold_s, 1),
        "cached_lookups_per_s": round(len(hosts) * loops / warm_s, 1),
        "cache": dict(known.match_cache_info()._asdict()),
    }


def _load_baseline(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def append_trajectory(report: dict, baseline: dict | None, path: Path) -> dict:
    """Append a timestamped comparison entry to the benchmark history.

    The committed report is overwritten on every run; the trajectory file
    accumulates, so regressions (and wins) stay visible across PRs.
    """
    try:
        history = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(history, list):
            history = []
    except (OSError, ValueError):
        history = []

    serial = report["crawl"]["serial"]["pages_per_s"]
    process_warm = report["crawl"]["process"]["warm_pages_per_s"]
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": report["config"]["smoke"],
        "sites": report["config"]["sites"],
        "workers": report["config"]["workers"],
        "serial_pages_per_s": serial,
        "columnar_pages_per_s": report["crawl"]["serial"]["columnar_pages_per_s"],
        "scalar_pages_per_s": report["crawl"]["serial"]["scalar_pages_per_s"],
        "columnar_over_serial": report["crawl"]["serial"]["columnar_over_serial"],
        "process_warm_pages_per_s": process_warm,
        "process_over_serial": report["crawl"]["process"]["over_serial"],
        "refresh_speedup": report["index"]["refresh_speedup"],
    }
    if baseline is not None:
        base_serial = baseline.get("crawl", {}).get("serial", {}).get("pages_per_s")
        if base_serial:
            entry["baseline_serial_pages_per_s"] = base_serial
            entry["vs_baseline_serial"] = round(serial / base_serial, 2)
        base_process = (
            baseline.get("crawl", {}).get("process", {}).get("warm_pages_per_s")
        )
        if base_process:
            entry["vs_baseline_process_warm"] = round(process_warm / base_process, 2)
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return entry


def check_baseline(report: dict, baseline: dict | None, max_regression: float) -> list[str]:
    """Return failure messages if throughput regressed beyond the budget.

    Only the serial steady-state number is a hard gate: it is workload-size
    independent, so a ``--smoke`` CI run can be compared against the
    committed full-size report.  Pool numbers vary with machine shape and
    workload size; they are recorded (and trended in the trajectory file)
    rather than hard-gated.  Known limitation: the committed baseline is an
    absolute throughput from whatever machine last ran the full benchmark,
    so a much slower runner can trip the floor without a code change —
    widen ``--max-regression`` or re-record the baseline on the gating
    hardware if that happens.
    """
    failures = []
    process = report["crawl"]["process"]
    if (
        not report["config"]["smoke"]
        and process["effective_cpus"] > 1
        and process["over_serial"] <= 1.0
    ):
        # The PR 5 acceptance bar: a full-size run on hardware that can
        # actually run workers in parallel must show the process backend
        # beating serial.  Smoke workloads are dispatch-overhead-dominated
        # (60 sites across 16 tasks) and single-CPU hosts time-slice the
        # workers with the parent, so neither can be gated on the ratio —
        # it is recorded in the report and the trajectory either way.
        failures.append(
            f"process warm did not beat serial on a {process['effective_cpus']}-CPU "
            f"host (over_serial={process['over_serial']})"
        )
    if baseline is None:
        return failures
    pairs = (
        ("serial pages_per_s", ("crawl", "serial", "pages_per_s")),
        ("serial columnar_pages_per_s", ("crawl", "serial", "columnar_pages_per_s")),
    )
    for label, keys in pairs:
        base: object = baseline
        now: object = report
        for key in keys:
            base = base.get(key) if isinstance(base, dict) else None
            now = now.get(key) if isinstance(now, dict) else None
        if not isinstance(base, (int, float)) or not isinstance(now, (int, float)):
            continue
        floor = base * (1.0 - max_regression)
        if now < floor:
            failures.append(
                f"{label} regressed: {now} < {floor:.1f} "
                f"(committed baseline {base}, budget -{max_regression:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_crawl_hotpath.json", help="report path")
    parser.add_argument("--sites", type=int, default=480, help="sites per crawl")
    parser.add_argument("--repeat", type=int, default=3, help="timed iterations (best-of)")
    parser.add_argument("--smoke", action="store_true",
                        help="1 iteration over a tiny workload (CI rot check)")
    parser.add_argument("--trajectory", default="BENCH_trajectory.json",
                        help="benchmark history file (appended, never overwritten)")
    parser.add_argument("--check-baseline", action="store_true",
                        help="exit 1 if pages_per_s drops more than --max-regression "
                        "below the committed report at --out")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional drop vs the committed baseline "
                        "(default %(default)s)")
    args = parser.parse_args(argv)
    out_path = Path(args.out)
    trajectory_path = Path(args.trajectory)
    if args.smoke:
        args.sites, args.repeat = 60, 1
        # A smoke run must never clobber the committed full-size baseline
        # (or pollute the committed history) when the paths were left at
        # their defaults: the baseline is still *read* from the committed
        # report, but the smoke results land in sibling scratch files.
        if args.out == parser.get_default("out"):
            out_path = out_path.with_suffix(".smoke.json")
        if args.trajectory == parser.get_default("trajectory"):
            trajectory_path = trajectory_path.with_suffix(".smoke.json")

    baseline = _load_baseline(Path(args.out))

    registry = default_registry(seed=2019)
    population = generate_population(PopulationConfig(seed=7).scaled(max(args.sites, 60)), registry)
    environment = AuctionEnvironment(registry=registry)
    detector = HBDetector(build_known_partner_list(registry))
    publishers = list(population)[: args.sites]

    crawl = bench_crawl(environment, detector, publishers, args.repeat)
    with CrawlEngine(environment, detector, CrawlConfig(seed=SEED)) as engine:
        detections = engine.crawl(publishers).detections

    report = {
        "name": "crawl_hotpath",
        "config": {
            "sites": args.sites,
            "workers": WORKERS,
            "repeat": args.repeat,
            "smoke": args.smoke,
            "python": sys.version.split()[0],
        },
        "crawl": crawl,
        "index": bench_index(detections, reps=3 if args.smoke else 30, repeat=args.repeat),
        "sink": bench_sink(environment, detector, publishers, detections,
                           reps=2 if args.smoke else 20),
        "match_host": bench_match_host(detector, args.repeat),
    }

    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    entry = append_trajectory(report, baseline, trajectory_path)
    print(f"wrote {out_path}")
    print(f"appended to {trajectory_path}: {json.dumps(entry)}")
    print(json.dumps(report, indent=2))

    if args.check_baseline:
        failures = check_baseline(report, baseline, args.max_regression)
        for failure in failures:
            print(f"BASELINE REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
