"""Hot-path benchmark harness: worker reuse, incremental indices, buffered sink.

Measures the three paths PR 3 optimised and writes a machine-readable JSON
report (``BENCH_crawl_hotpath.json`` at the repo root by default) so future
PRs can track the perf trajectory:

* ``crawl`` — pages/s per backend, including the process/thread pools cold
  (first crawl, pool spin-up + per-worker context build included) vs warm
  (reusing the live pool), plus how many environment/detector payload ships
  the per-worker initializer saves over the old per-shard scheme.
* ``index`` — detections/s for a cold full re-analysis vs an incremental
  ``extend()`` + re-access of every index, with the rebuild counts proving
  the warm path never rebuilds.
* ``sink`` — detections/s through an unbuffered (``flush_every=1``) vs a
  buffered sink, and end-to-end pages/s of a parallel crawl streaming to
  each; the produced files are asserted byte-identical.
* ``match_host`` — partner-list lookups/s cold vs memoised.

Every timed section also asserts the optimisation's correctness contract
(byte-identical detections/files, incremental == rebuilt), so the harness
doubles as a smoke test: CI runs it with ``--smoke`` (tiny workload, one
iteration) to keep it from rotting.

Run with::

    PYTHONPATH=src python benchmarks/hotpath.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pickle
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.dataset import CrawlDataset
from repro.crawler.crawler import CrawlConfig
from repro.crawler.engine import CrawlEngine
from repro.crawler.storage import CrawlStorage, detection_to_dict
from repro.detector.detector import HBDetector
from repro.detector.partner_list import build_known_partner_list
from repro.ecosystem.publishers import PopulationConfig, generate_population
from repro.ecosystem.registry import default_registry
from repro.hb.environment import AuctionEnvironment

SEED = 77
WORKERS = 4


def _serialise(detections):
    return json.dumps([detection_to_dict(d) for d in detections])


def _touch_indices(dataset: CrawlDataset) -> None:
    """Access every registered index (two rank-bin parameters included)."""
    dataset.hb_detections()
    dataset.sites()
    dataset.hb_sites()
    dataset.auctions()
    dataset.bids()
    dataset.priced_bids()
    dataset.by_facet()
    dataset.auctions_by_facet()
    dataset.bids_by_partner()
    dataset.partner_site_counts()
    dataset.partner_popularity_ranking()
    dataset.partner_latency_samples()
    dataset.site_latencies()
    dataset.hb_latency_values()
    dataset.hb_latencies_by_rank_bin(10)
    dataset.hb_latencies_by_rank_bin(50)
    dataset.crawl_days()
    dataset.summary()


def bench_crawl(environment, detector, publishers, repeat: int) -> dict:
    n = len(publishers)
    results: dict = {}

    with CrawlEngine(environment, detector, CrawlConfig(seed=SEED)) as engine:
        start = time.perf_counter()
        serial_result = engine.crawl(publishers)
        serial_s = time.perf_counter() - start
    serial_json = _serialise(serial_result.detections)
    results["serial"] = {"pages_per_s": round(n / serial_s, 1)}

    for backend in ("thread", "process"):
        config = CrawlConfig(seed=SEED, workers=WORKERS, backend=backend)
        with CrawlEngine(environment, detector, config) as engine:
            start = time.perf_counter()
            cold_result = engine.crawl(publishers)
            cold_s = time.perf_counter() - start
            assert _serialise(cold_result.detections) == serial_json, backend
            warm_s = min(
                _timed(engine.crawl, publishers) for _ in range(max(1, repeat))
            )
        results[backend] = {
            "cold_pages_per_s": round(n / cold_s, 1),
            "warm_pages_per_s": round(n / warm_s, 1),
            "warm_over_cold": round(cold_s / warm_s, 2),
        }

    # The payload the old design pickled per submitted shard now ships once
    # per worker process, for the engine's whole lifetime.
    payload_bytes = len(pickle.dumps((environment, detector)))
    crawls = 1 + max(1, repeat)
    results["worker_ship"] = {
        "payload_bytes": payload_bytes,
        "ships_now_per_engine": WORKERS,
        "ships_before_per_engine": WORKERS * crawls,  # one per shard per crawl
        "crawls_measured": crawls,
    }
    return results


def _timed(fn, *args, **kwargs) -> float:
    start = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - start


def bench_index(detections, reps: int, repeat: int) -> dict:
    # Replicate the crawl into a longitudinal-sized dataset: same sites
    # re-visited on later crawl days, which is exactly the shape extend()
    # sees when tailing a daily re-crawl.
    def day_shift(day):
        return [dataclasses.replace(d, crawl_day=d.crawl_day + day) for d in detections]

    base = [d for day in range(reps) for d in day_shift(day)]
    delta = day_shift(reps)
    n, m = len(base), len(delta)

    cold_s = []
    builds_per_pass = 0
    for _ in range(max(1, repeat)):
        cold = CrawlDataset.from_detections(base + delta)
        cold_s.append(_timed(_touch_indices, cold))
        builds_per_pass = cold.index_stats()["builds"]
    cold_best = min(cold_s)

    warm = CrawlDataset.from_detections(base)
    _touch_indices(warm)
    builds_before = warm.index_stats()["builds"]
    incr_s = _timed(lambda: (warm.extend(delta), _touch_indices(warm)))
    rebuilds = warm.index_stats()["builds"] - builds_before

    reference = CrawlDataset.from_detections(base + delta)
    assert warm.summary() == reference.summary()
    assert warm.partner_site_counts() == reference.partner_site_counts()
    assert warm.hb_latency_values() == reference.hb_latency_values()
    assert rebuilds == 0, f"extend() rebuilt {rebuilds} indices"

    return {
        "dataset_detections": n + m,
        "cold": {
            "detections_per_s": round((n + m) / cold_best, 1),
            "builds_per_pass": builds_per_pass,
        },
        "incremental": {
            "delta_detections": m,
            "detections_per_s": round(m / incr_s, 1),
            "rebuilds_after_extend": rebuilds,
        },
        # What a live watcher pays per refresh: absorbing the delta into warm
        # indices vs re-analysing the whole grown dataset from scratch.  This
        # is the O(delta)-vs-O(n) ratio and grows with the dataset.
        "refresh_speedup": round(cold_best / incr_s, 2),
    }


def bench_sink(environment, detector, publishers, detections, reps: int) -> dict:
    many = detections * reps
    out: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        timings = {}
        for label, flush_every in (("unbuffered", 1), ("buffered", 64)):
            path = tmp_path / f"{label}.jsonl"
            sink = CrawlStorage(path).open_sink(flush_every=flush_every)
            with sink:
                elapsed = _timed(sink.write_many, many)
            timings[label] = elapsed
            out[label] = {
                "flush_every": flush_every,
                "detections_per_s": round(len(many) / elapsed, 1),
                "flushes": sink.flushes,
            }
        assert (tmp_path / "unbuffered.jsonl").read_bytes() == (
            tmp_path / "buffered.jsonl"
        ).read_bytes()
        out["speedup"] = round(timings["unbuffered"] / timings["buffered"], 2)

        # The parallel-crawl benchmark streaming to a sink.  Page-load
        # simulation dominates wall clock on this path, so the variants are
        # compared by the time the crawl actually spends inside the sink
        # (accumulated around every write()/flush() call) — that is the
        # persistence cost of the crawl, measured exactly instead of being
        # drowned in scheduler jitter.  Best-of across interleaved attempts
        # on one warm pool.
        class TimingSink:
            def __init__(self, inner):
                self.inner = inner
                self.spent_s = 0.0

            def write(self, detection):
                start = time.perf_counter()
                self.inner.write(detection)
                self.spent_s += time.perf_counter() - start

            def flush(self):
                start = time.perf_counter()
                self.inner.flush()
                self.spent_s += time.perf_counter() - start

        variants = {"unbuffered": 1, "buffered": 64}
        sink_best: dict = {label: None for label in variants}
        crawl_best: dict = {label: None for label in variants}
        config = CrawlConfig(seed=SEED, workers=WORKERS, backend="thread")
        with CrawlEngine(environment, detector, config) as engine:
            engine.crawl(publishers)  # warm the pool; measure steady state
            for _ in range(max(2, reps // 3)):
                for label, flush_every in variants.items():
                    path = tmp_path / f"crawl-{label}.jsonl"
                    inner = CrawlStorage(path).open_sink(flush_every=flush_every)
                    timing = TimingSink(inner)
                    with inner:
                        run_s = _timed(engine.crawl, publishers, sink=timing)
                        timing.flush()
                    if sink_best[label] is None or timing.spent_s < sink_best[label]:
                        sink_best[label] = timing.spent_s
                    if crawl_best[label] is None or run_s < crawl_best[label]:
                        crawl_best[label] = run_s
        assert (tmp_path / "crawl-unbuffered.jsonl").read_bytes() == (
            tmp_path / "crawl-buffered.jsonl"
        ).read_bytes()
        n = len(publishers)
        out["parallel_crawl"] = {
            "pages": n,
            "unbuffered_pages_per_s": round(n / crawl_best["unbuffered"], 1),
            "buffered_pages_per_s": round(n / crawl_best["buffered"], 1),
            "sink_time_ms": {
                label: round(spent * 1e3, 2) for label, spent in sink_best.items()
            },
            # Crawl persistence cost, buffered vs unbuffered.
            "sink_speedup": round(sink_best["unbuffered"] / sink_best["buffered"], 2),
        }
    return out


def bench_match_host(detector, repeat: int) -> dict:
    known = detector.known_partners
    hosts = [f"sub{i % 7}.{domain}" for i, domain in enumerate(known.domains)]
    hosts += [f"cdn{i}.unrelated-{i % 13}.example" for i in range(len(hosts))]
    loops = 40

    def run():
        for _ in range(loops):
            for host in hosts:
                known.match_host(host)

    # Cold: every lookup through the suffix walk (fresh caches each pass).
    cold_list = build_known_partner_list(default_registry(seed=2019))
    cold_hosts = hosts

    def run_cold():
        fresh = build_known_partner_list(default_registry(seed=2019))
        for host in cold_hosts:
            fresh.match_host(host)

    build_s = min(_timed(build_known_partner_list, default_registry(seed=2019)) for _ in range(3))
    cold_s = min(_timed(run_cold) for _ in range(max(1, repeat))) - build_s
    cold_s = max(cold_s, 1e-9)
    warm_s = min(_timed(run) for _ in range(max(1, repeat)))
    assert cold_list.match_host(hosts[0]) == known.match_host(hosts[0])
    return {
        "hosts": len(hosts),
        "uncached_lookups_per_s": round(len(hosts) / cold_s, 1),
        "cached_lookups_per_s": round(len(hosts) * loops / warm_s, 1),
        "cache": dict(known.match_cache_info()._asdict()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_crawl_hotpath.json", help="report path")
    parser.add_argument("--sites", type=int, default=240, help="sites per crawl")
    parser.add_argument("--repeat", type=int, default=3, help="timed iterations (best-of)")
    parser.add_argument("--smoke", action="store_true",
                        help="1 iteration over a tiny workload (CI rot check)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.sites, args.repeat = 60, 1

    registry = default_registry(seed=2019)
    population = generate_population(PopulationConfig(seed=7).scaled(max(args.sites, 60)), registry)
    environment = AuctionEnvironment(registry=registry)
    detector = HBDetector(build_known_partner_list(registry))
    publishers = list(population)[: args.sites]

    crawl = bench_crawl(environment, detector, publishers, args.repeat)
    with CrawlEngine(environment, detector, CrawlConfig(seed=SEED)) as engine:
        detections = engine.crawl(publishers).detections

    report = {
        "name": "crawl_hotpath",
        "config": {
            "sites": args.sites,
            "workers": WORKERS,
            "repeat": args.repeat,
            "smoke": args.smoke,
            "python": sys.version.split()[0],
        },
        "crawl": crawl,
        "index": bench_index(detections, reps=3 if args.smoke else 30, repeat=args.repeat),
        "sink": bench_sink(environment, detector, publishers, detections,
                           reps=2 if args.smoke else 20),
        "match_host": bench_match_host(detector, args.repeat),
    }

    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
