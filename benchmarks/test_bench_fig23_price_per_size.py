"""Benchmark: Figure 23 — bid prices per creative size.

Paper: median prices range from 0.00084 CPM (300x50) to 0.096 CPM (120x600),
with the popular 300x250 medium rectangle at ~0.031 CPM.
"""

from repro.experiments.figures import figure23_price_per_size


def test_bench_fig23_price_per_size(benchmark, artifacts):
    result = benchmark(figure23_price_per_size, artifacts)
    rows = dict(result["rows"])
    assert "300x250" in rows
    reference = rows["300x250"].median
    assert 0.003 <= reference <= 0.3
    if "120x600" in rows:
        assert rows["120x600"].median > reference
    if "300x50" in rows:
        assert rows["300x50"].median < reference
    print()
    print(result["text"])
