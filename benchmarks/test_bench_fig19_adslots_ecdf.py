"""Benchmark: Figure 19 — auctioned ad-slots per website, per facet (ECDF).

Paper: the median site auctions 2-6 slots depending on the facet (hybrid
auctioning the most), 90% of sites stay below 5-11 slots and ~3% request more
than 20 (device-duplicate inventory).
"""

from repro.experiments.figures import figure19_adslots_ecdf
from repro.models import HBFacet


def test_bench_fig19_adslots_ecdf(benchmark, artifacts):
    result = benchmark(figure19_adslots_ecdf, artifacts)
    medians = result["medians"]
    curves = result["ecdfs"]
    for facet, median in medians.items():
        assert 1.0 <= median <= 8.0, facet
    assert medians[HBFacet.HYBRID] >= medians[HBFacet.CLIENT_SIDE]
    for facet, curve in curves.items():
        assert curve.quantile(0.9) <= 30.0
    # A small fraction of sites auctions an inflated, device-duplicated inventory.
    any_inflated = any(curve.fraction_above(15.0) > 0.0 for curve in curves.values())
    assert any_inflated
    print()
    print(result["text"])
