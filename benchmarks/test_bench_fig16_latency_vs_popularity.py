"""Benchmark: Figure 16 — partner latency variability vs. popularity rank.

Paper: the most popular demand partners keep their latency variability small
(up to ~200 ms), while the long tail swings by 500-1,000 ms.
"""

import numpy as np

from repro.experiments.figures import figure16_latency_vs_popularity


def test_bench_fig16_latency_vs_popularity(benchmark, artifacts):
    result = benchmark(figure16_latency_vs_popularity, artifacts, bin_size=10)
    rows = result["rows"]
    assert len(rows) >= 3
    spreads = [stats.spread for _, stats in rows]
    # The most popular bin is less variable than the typical long-tail bin.
    assert spreads[0] < float(np.median(spreads[1:])) * 1.5
    assert all(stats.median > 0 for _, stats in rows)
    print()
    print(result["text"])
