"""Benchmark: Figure 11 — top demand partners per HB facet by share of bids.

Paper: big exchanges/SSPs (Rubicon, AppNexus, Index, OpenX, Pubmatic, ...)
hold the highest bid shares in every facet.
"""

from repro.experiments.figures import figure11_partners_per_facet
from repro.models import HBFacet


def test_bench_fig11_partners_per_facet(benchmark, artifacts):
    result = benchmark(figure11_partners_per_facet, artifacts, top_n=10)
    per_facet = result["per_facet"]
    big_players = {"AppNexus", "Rubicon", "Index", "OpenX", "Pubmatic", "Criteo", "Amazon", "DFP"}
    for facet in HBFacet:
        rows = per_facet.get(facet, [])
        assert rows, f"no bids observed for facet {facet}"
        top_names = {name for name, _ in rows[:5]}
        assert top_names & big_players, f"expected big players among {facet} top bidders"
        shares = [share for _, share in rows]
        assert shares == sorted(shares, reverse=True)
    print()
    print(result["text"])
