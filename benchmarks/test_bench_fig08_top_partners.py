"""Benchmark: Figure 8 — top demand partners by share of HB websites.

Paper: Google's DFP appears on ~80% of HB websites; the rest of the top list
is AppNexus, Rubicon, Criteo, Index, Amazon, OpenX, Pubmatic, AOL, Sovrn and
Smart — the same companies that dominate the waterfall standard.
"""

from repro.experiments.figures import figure08_top_partners


def test_bench_fig08_top_partners(benchmark, artifacts):
    result = benchmark(figure08_top_partners, artifacts, top_n=11)
    rows = result["rows"]
    assert rows[0].partner == "DFP"
    assert 0.65 <= rows[0].share_of_hb_sites <= 0.92
    top_names = {row.partner for row in rows}
    # The waterfall incumbents dominate the HB top list too.
    assert {"AppNexus", "Rubicon", "Criteo"} <= top_names
    print()
    print(result["text"])
