"""Header-bidding protocol implementations and the waterfall baseline.

This package models the *publisher side* of programmatic ad buying:

* the wrapper libraries (Prebid.js-style, gpt.js-style, pubfood-style) that
  run in the page header and emit the DOM events HBDetector keys on,
* the three HB deployment facets — client-side, server-side and hybrid,
* the publisher ad-server interaction (key-value push, winner selection), and
* the traditional waterfall / RTB standard used as the comparison baseline.
"""

from repro.hb.events import HBEventName, HB_EVENT_NAMES, HBParam
from repro.hb.auction import (
    BidOutcome,
    SlotAuctionOutcome,
    HeaderBiddingOutcome,
)
from repro.hb.wrappers import HBWrapper, build_wrapper
from repro.hb.prebid import PrebidWrapper
from repro.hb.gpt import GptWrapper
from repro.hb.pubfood import PubfoodWrapper
from repro.hb.runner import run_header_bidding
from repro.hb.waterfall import WaterfallAdNetwork, WaterfallOutcome, run_waterfall

__all__ = [
    "HBEventName",
    "HB_EVENT_NAMES",
    "HBParam",
    "BidOutcome",
    "SlotAuctionOutcome",
    "HeaderBiddingOutcome",
    "HBWrapper",
    "build_wrapper",
    "PrebidWrapper",
    "GptWrapper",
    "PubfoodWrapper",
    "run_header_bidding",
    "WaterfallAdNetwork",
    "WaterfallOutcome",
    "run_waterfall",
]
