"""Bidder adapters: how the wrapper talks to each demand partner.

In Prebid.js, every demand partner ships an *adapter* that knows how to turn
the wrapper's generic bid request into the partner's own endpoint format.  The
simulation models the observable consequence of that design: the URL and
parameters of the outgoing bid request, which is one of the two signals
HBDetector matches on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.ecosystem.partners import DemandPartner
from repro.models import AdSlot

__all__ = ["BidRequestSpec", "build_bid_request", "build_notification_request"]


@dataclass(frozen=True)
class BidRequestSpec:
    """A fully specified outgoing bid request for one partner."""

    url: str
    method: str
    params: Mapping[str, str]


def _slot_params(slots: Sequence[AdSlot]) -> dict[str, str]:
    """Flatten the auctioned slots into request parameters."""
    return {
        "ad_units": ",".join(slot.code for slot in slots),
        "sizes": "|".join(",".join(slot.accepted_labels) for slot in slots),
        "slot_count": str(len(slots)),
    }


def build_bid_request(
    partner: DemandPartner,
    slots: Sequence[AdSlot],
    *,
    page_url: str,
    auction_id: str,
    timeout_ms: float,
) -> BidRequestSpec:
    """Build the outgoing bid request the wrapper sends to one partner.

    The request is an HTTP POST to the partner's bid endpoint; the parameters
    mirror what a Prebid adapter would serialise (bidder code, referer, the ad
    units and their sizes, the wrapper timeout) — they deliberately do *not*
    carry the ``hb_*`` targeting keys, which only appear on the ad-server call
    and in responses.
    """
    params = {
        "bidder": partner.bidder_code,
        "referer": page_url,
        "auction_id": auction_id,
        "tmax": str(int(timeout_ms)),
        **_slot_params(slots),
    }
    return BidRequestSpec(url=partner.bid_endpoint(), method="POST", params=params)


def build_notification_request(
    partner: DemandPartner,
    *,
    slot_code: str,
    cpm: float,
    auction_id: str,
) -> BidRequestSpec:
    """Build the winner-notification callback (§2.1 step 4).

    Fired after the creative rendered; it tells the winning partner which
    impression it bought and at what price.
    """
    params = {
        "hb_bidder": partner.bidder_code,
        "hb_cpm": f"{cpm:.5f}",
        "hb_adid": f"{auction_id}-{slot_code}",
        "event": "win",
    }
    return BidRequestSpec(
        url=f"https://{partner.primary_domain}/hb/win",
        method="GET",
        params=params,
    )
