"""Client-side header bidding execution (§4.3 of the paper).

In the client-side facet, the user's browser does everything: it sends one bid
request per configured demand partner, collects the responses, pushes the
surviving bids to the publisher's own ad server as ``hb_*`` key-values, learns
the winner and renders the creative.  Every step leaves an observable trace —
DOM events from the wrapper and web requests to the partners and the ad
server — which is what makes this facet fully transparent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, TYPE_CHECKING

import numpy as np

from repro.ecosystem.partners import DemandPartner, PartnerResponse
from repro.hb.adapters import build_bid_request, build_notification_request
from repro.hb.auction import BidOutcome, HeaderBiddingOutcome, SlotAuctionOutcome
from repro.hb.events import HBParam, price_bucket
from repro.models import AdSlot, HBFacet, SaleChannel
from repro.utils.rng import fast_uniform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ecosystem.profiles import PartnerProfile
    from repro.hb.wrappers import HBWrapper

__all__ = ["run_client_side", "PartnerReply", "dispatch_bid_requests", "push_to_ad_server"]


@dataclass(slots=True)
class PartnerReply:
    """Bookkeeping for one partner's reply during a client-side auction."""

    partner: DemandPartner
    dispatched_at_ms: float
    responded_at_ms: float
    responses: dict[str, PartnerResponse]  # slot code -> response
    late: bool = False


def dispatch_bid_requests(
    wrapper: "HBWrapper",
    partners: Sequence[DemandPartner],
    slots: Sequence[AdSlot],
    auction_id: str,
    *,
    facet: HBFacet,
    partner_profiles: "Sequence[PartnerProfile] | None" = None,
    request_templates: Sequence[tuple[str, Mapping[str, str]]] | None = None,
) -> list[PartnerReply]:
    """Send one bid request per partner and sample every reply.

    JavaScript in the browser is single threaded, so even "parallel" bid
    requests leave the machine one after another; the per-request dispatch
    delay grows mildly with the number of auctioned slots, which is one of the
    mechanisms behind Figure 15 (latency grows with the number of partners).

    ``partner_profiles`` / ``request_templates`` (aligned with ``partners``)
    supply the fast path: precompiled response samplers and static bid-request
    fields replace the per-page multiplier and adapter derivations, with the
    RNG consumed identically.
    """
    context = wrapper.context
    environment = wrapper.environment
    publisher = wrapper.publisher
    rng = context.rng
    replies: list[PartnerReply] = []
    queue_bias = 4.0 * len(slots)
    latency_scale = publisher.latency_scale

    dispatch_cursor = context.clock.now()
    for index, partner in enumerate(partners):
        # Better-provisioned (highly ranked) sites also serialise their ad
        # calls faster, hence the same latency scale applies to the queueing.
        queue_delay = (fast_uniform(rng, 15.0, 45.0) + queue_bias) * latency_scale
        dispatch_cursor += queue_delay
        if request_templates is not None:
            url, template = request_templates[index]
            params: dict[str, object] = dict(template)
            params["auction_id"] = auction_id
            method = "POST"
        else:
            spec = build_bid_request(
                partner,
                slots,
                page_url=publisher.url,
                auction_id=auction_id,
                timeout_ms=publisher.timeout_ms,
            )
            url, params, method = spec.url, spec.params, spec.method
        context.requests.record_outgoing(
            url,
            method=method,
            params=params,
            initiator=publisher.url,
            timestamp_ms=dispatch_cursor,
        )
        wrapper.emit_bid_requested(auction_id, partner.bidder_code)

        # One HTTP exchange per partner: the partner prices every slot in the
        # same response, so the reply time is a single latency draw (the first
        # slot's), not the maximum over per-slot draws.
        profile = partner_profiles[index] if partner_profiles is not None else None
        responses: dict[str, PartnerResponse] = {}
        response_latency: float | None = None
        for slot_index, slot in enumerate(slots):
            if profile is not None:
                response = profile.respond(rng, slot_index, slot.code, slot.primary_size)
            else:
                response = environment.partner_response(
                    rng, partner, slot, facet, latency_scale=latency_scale
                )
            responses[slot.code] = response
            if response_latency is None:
                response_latency = response.latency_ms
        replies.append(
            PartnerReply(
                partner=partner,
                dispatched_at_ms=dispatch_cursor,
                responded_at_ms=dispatch_cursor + (response_latency or 0.0),
                responses=responses,
            )
        )
    return replies


def _ad_server_call_time(
    wrapper: "HBWrapper",
    replies: Sequence[PartnerReply],
    auction_start_ms: float,
) -> float:
    """When the wrapper stops waiting and calls the ad server.

    A correctly configured wrapper waits until every partner answered or the
    wrapper timeout expires.  A misconfigured wrapper (a real and common
    failure mode the paper calls out) fires the ad-server request almost
    immediately, turning most responses into late bids.
    """
    publisher = wrapper.publisher
    rng = wrapper.context.rng
    if publisher.misconfigured_wrapper:
        return auction_start_ms + float(rng.uniform(100.0, 400.0))
    deadline = auction_start_ms + publisher.timeout_ms
    slowest_reply = max((reply.responded_at_ms for reply in replies), default=auction_start_ms)
    processing = float(rng.uniform(5.0, 25.0))
    return min(deadline, slowest_reply) + processing


def push_to_ad_server(
    wrapper: "HBWrapper",
    slots: Sequence[AdSlot],
    on_time_bids: Mapping[str, dict[str, PartnerResponse]],
    auction_id: str,
    call_time_ms: float,
    *,
    ad_server_host: str,
    facet: HBFacet,
) -> float:
    """Send the key-value push to the ad server; return the response time.

    ``on_time_bids`` maps slot code to ``{bidder code: response}`` for the
    bids that made it before the call.
    """
    context = wrapper.context
    publisher = wrapper.publisher
    environment = wrapper.environment
    profile = wrapper.profile
    push_url = (
        profile.ad_server_push_url
        if profile is not None and profile.ad_server_push_url is not None
        else f"https://{ad_server_host}/gampad/ads"
    )

    params: dict[str, object] = {"auction_id": auction_id, "slots": len(slots)}
    for slot_code, bids in on_time_bids.items():
        if not bids:
            continue
        best_code = max(bids, key=lambda code: bids[code].bid_cpm or 0.0)
        best = bids[best_code]
        params[f"{HBParam.BIDDER.value}_{slot_code}"] = best_code
        params[f"{HBParam.PRICE_BUCKET.value}_{slot_code}"] = price_bucket(best.bid_cpm or 0.0)
        params[f"{HBParam.SIZE.value}_{slot_code}"] = best.size.label
    context.requests.record_outgoing(
        push_url,
        method="GET",
        params=params,
        initiator=publisher.url,
        timestamp_ms=call_time_ms,
    )
    if profile is not None:
        latency = profile.ad_server_latency(context.rng)
    else:
        latency = environment.ad_server_latency(
            context.rng, latency_scale=publisher.latency_scale
        )
    response_time = call_time_ms + latency
    context.requests.record_incoming(
        push_url,
        params={"auction_id": auction_id, "status": "filled"},
        initiator=publisher.url,
        timestamp_ms=response_time,
    )
    return response_time


def _decide_winners(
    wrapper: "HBWrapper",
    slots: Sequence[AdSlot],
    on_time: Mapping[str, dict[str, PartnerResponse]],
) -> dict[str, tuple[str | None, float]]:
    """Pick the winning bidder and clearing price per slot.

    The publisher's own ad server simply takes the highest header bid that
    clears the slot floor; slots with no usable bid fall back to remnant
    inventory at a negligible price.
    """
    winners: dict[str, tuple[str | None, float]] = {}
    for slot in slots:
        bids = on_time.get(slot.code, {})
        priced = {code: resp for code, resp in bids.items() if resp.bid_cpm is not None}
        if not priced:
            winners[slot.code] = (None, 0.0)
            continue
        best_code = max(priced, key=lambda code: priced[code].bid_cpm or 0.0)
        best_cpm = priced[best_code].bid_cpm or 0.0
        if best_cpm < slot.floor_cpm:
            winners[slot.code] = (None, 0.0)
        else:
            winners[slot.code] = (best_code, best_cpm)
    return winners


def run_client_side(wrapper: "HBWrapper") -> HeaderBiddingOutcome:
    """Execute one client-side header-bidding page load."""
    context = wrapper.context
    publisher = wrapper.publisher
    profile = wrapper.profile
    rng = context.rng
    facet = HBFacet.CLIENT_SIDE

    auction_id = context.ids.next("auction")
    auction_start = context.clock.now()
    wrapper.emit_auction_init(auction_id)

    slots = publisher.auctioned_slots
    replies = dispatch_bid_requests(
        wrapper,
        publisher.partners,
        slots,
        auction_id,
        facet=facet,
        partner_profiles=profile.partner_profiles if profile is not None else None,
        request_templates=profile.bid_request_templates if profile is not None else None,
    )
    ad_server_call = _ad_server_call_time(wrapper, replies, auction_start)

    # Classify replies and surface the on-time ones as bidResponse events and
    # incoming web requests; late replies still arrive (and are logged) later.
    on_time: dict[str, dict[str, PartnerResponse]] = {slot.code: {} for slot in slots}
    timed_out_bidders: list[str] = []
    for reply in replies:
        reply.late = reply.responded_at_ms > ad_server_call
        endpoint = reply.partner.bid_endpoint()
        response_params: dict[str, object] = {"bidder": reply.partner.bidder_code}
        for slot_code, response in reply.responses.items():
            if response.bid_cpm is None:
                continue
            response_params[f"{HBParam.CPM.value}_{slot_code}"] = f"{response.bid_cpm:.5f}"
            response_params[f"{HBParam.SIZE.value}_{slot_code}"] = response.size.label
        context.requests.record_incoming(
            endpoint,
            params=response_params,
            initiator=publisher.url,
            timestamp_ms=reply.responded_at_ms,
        )
        if reply.late:
            timed_out_bidders.append(reply.partner.bidder_code)
            continue
        for slot_code, response in reply.responses.items():
            if response.bid_cpm is None:
                continue
            on_time[slot_code][reply.partner.bidder_code] = response
            wrapper.emit_bid_response(
                auction_id,
                bidder_code=reply.partner.bidder_code,
                slot_code=slot_code,
                cpm=response.bid_cpm,
                size_label=response.size.label,
                latency_ms=reply.responded_at_ms - reply.dispatched_at_ms,
            )

    wrapper.emit_bid_timeout(auction_id, timed_out_bidders)
    n_on_time_bids = sum(len(bids) for bids in on_time.values())
    context.clock.advance_to(ad_server_call)
    wrapper.emit_auction_end(auction_id, n_bids=n_on_time_bids,
                             latency_ms=ad_server_call - auction_start)

    ad_server_response = push_to_ad_server(
        wrapper, slots, on_time, auction_id, ad_server_call,
        ad_server_host=publisher.own_ad_server_host, facet=facet,
    )
    context.clock.advance_to(ad_server_response)

    winners = _decide_winners(wrapper, slots, on_time)
    if profile is not None and profile.bidders_by_code is not None:
        bidders_by_code = profile.bidders_by_code
    else:
        bidders_by_code = {partner.bidder_code: partner for partner in publisher.partners}

    slot_outcomes: list[SlotAuctionOutcome] = []
    for slot in slots:
        winner_code, clearing_cpm = winners[slot.code]
        bids: list[BidOutcome] = []
        for reply in replies:
            response = reply.responses[slot.code]
            bids.append(
                BidOutcome(
                    partner_name=reply.partner.name,
                    bidder_code=reply.partner.bidder_code,
                    slot_code=slot.code,
                    size=response.size,
                    cpm=response.bid_cpm,
                    requested_at_ms=reply.dispatched_at_ms,
                    responded_at_ms=reply.responded_at_ms,
                    late=reply.late,
                    won=(winner_code == reply.partner.bidder_code and response.bid_cpm is not None),
                )
            )
        channel = SaleChannel.HEADER_BIDDING if winner_code else SaleChannel.FALLBACK
        winner_name = None
        if winner_code is not None:
            winner_name = bidders_by_code[winner_code].name
        slot_outcomes.append(
            SlotAuctionOutcome(
                slot=slot,
                bids=tuple(bids),
                winning_channel=channel,
                winner=winner_name,
                clearing_cpm=clearing_cpm,
                auction_start_ms=auction_start,
                ad_server_called_at_ms=ad_server_call,
                ad_server_responded_at_ms=ad_server_response,
            )
        )

    _render_and_notify(wrapper, slot_outcomes, winners, auction_id)

    return HeaderBiddingOutcome(
        domain=publisher.domain,
        facet=facet,
        slot_outcomes=tuple(slot_outcomes),
        wrapper_timeout_ms=publisher.timeout_ms,
        misconfigured_wrapper=publisher.misconfigured_wrapper,
    )


def _render_and_notify(
    wrapper: "HBWrapper",
    slot_outcomes: Sequence[SlotAuctionOutcome],
    winners: Mapping[str, tuple[str | None, float]],
    auction_id: str,
) -> None:
    """Emit render events and the winner-notification callbacks."""
    context = wrapper.context
    publisher = wrapper.publisher
    profile = wrapper.profile
    rng = context.rng
    if profile is not None and profile.bidders_by_code is not None:
        bidders_by_code: Mapping[str, DemandPartner] = profile.bidders_by_code
        display_codes: frozenset[str] | set[str] = profile.display_codes
    else:
        bidders_by_code = {partner.bidder_code: partner for partner in publisher.partners}
        display_codes = {slot.code for slot in publisher.slots}

    for outcome in slot_outcomes:
        if outcome.slot.code not in display_codes:
            continue  # device-duplicate slots are auctioned but never rendered
        render_delay = fast_uniform(rng, 30.0, 150.0)
        context.clock.advance(render_delay)
        winner_code, cpm = winners.get(outcome.slot.code, (None, 0.0))
        if winner_code is not None and rng.random() < 0.985:
            wrapper.emit_bid_won(
                auction_id,
                bidder_code=winner_code,
                slot_code=outcome.slot.code,
                cpm=cpm,
                size_label=outcome.slot.primary_size.label,
            )
            wrapper.emit_slot_render_ended(
                slot_code=outcome.slot.code,
                size_label=outcome.slot.primary_size.label,
                is_empty=False,
                campaign=winner_code,
            )
            spec = build_notification_request(
                bidders_by_code[winner_code],
                slot_code=outcome.slot.code,
                cpm=cpm,
                auction_id=auction_id,
            )
            context.requests.record_outgoing(
                spec.url, method=spec.method, params=spec.params, initiator=publisher.url
            )
        elif winner_code is not None:
            wrapper.emit_ad_render_failed(slot_code=outcome.slot.code, reason="creative error")
        else:
            wrapper.emit_slot_render_ended(
                slot_code=outcome.slot.code,
                size_label=outcome.slot.primary_size.label,
                is_empty=True,
            )
