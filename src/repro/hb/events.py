"""Event vocabulary and HB-specific parameter names.

The names below mirror the public contract of the wrapper libraries the paper
reverse-engineered (§3.1): the Prebid.js auction lifecycle events, the gpt.js
slot events, and the ``hb_*`` key-value parameters the wrapper attaches to the
ad-server call so that line items can target header bids.  All HB partners
participating through a given wrapper must use these names as-is, which is
exactly what makes reliable detection possible.
"""

from __future__ import annotations

import enum

__all__ = ["HBEventName", "HB_EVENT_NAMES", "HBParam", "HB_PARAM_NAMES", "RTB_NOTIFICATION_PARAMS"]


class HBEventName(str, enum.Enum):
    """DOM events emitted by header-bidding wrapper libraries."""

    AUCTION_INIT = "auctionInit"
    REQUEST_BIDS = "requestBids"
    BID_REQUESTED = "bidRequested"
    BID_RESPONSE = "bidResponse"
    BID_TIMEOUT = "bidTimeout"
    AUCTION_END = "auctionEnd"
    BID_WON = "bidWon"
    SLOT_RENDER_ENDED = "slotRenderEnded"
    AD_RENDER_FAILED = "adRenderFailed"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Every event name a wrapper may emit, as plain strings (detector-facing).
HB_EVENT_NAMES: tuple[str, ...] = tuple(event.value for event in HBEventName)


class HBParam(str, enum.Enum):
    """HB-specific key-value parameter names.

    These are the targeting keys Prebid-style wrappers set on the ad-server
    request and that server-side responses echo back; the RTB protocol does
    not use them, which lets the detector separate HB traffic from waterfall
    notifications.
    """

    BIDDER = "hb_bidder"
    PRICE_BUCKET = "hb_pb"
    SIZE = "hb_size"
    AD_ID = "hb_adid"
    CPM = "hb_cpm"
    CURRENCY = "hb_currency"
    FORMAT = "hb_format"
    SOURCE = "hb_source"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: All HB parameter names as plain strings.
HB_PARAM_NAMES: tuple[str, ...] = tuple(param.value for param in HBParam)

#: Parameter names typically seen on waterfall/RTB win-notification URLs.
#: They are DSP-specific in reality; the simulation uses this representative
#: set, and the point is that they are *disjoint* from :data:`HB_PARAM_NAMES`.
RTB_NOTIFICATION_PARAMS: tuple[str, ...] = (
    "price",
    "winbid",
    "auction_id",
    "imp_id",
    "crid",
    "adunit",
)


def price_bucket(cpm: float, *, increment: float = 0.01, cap: float = 20.0) -> str:
    """Quantise a CPM into the wrapper's price-bucket string (e.g. ``"0.53"``).

    Prebid-style wrappers round bids down to a configured granularity before
    exposing them as targeting values, capping very high bids.
    """
    if cpm < 0:
        raise ValueError("CPM cannot be negative")
    if increment <= 0:
        raise ValueError("price bucket increment must be positive")
    bucketed = min(cpm, cap)
    steps = int(bucketed / increment)
    return f"{steps * increment:.2f}"
