"""gpt.js-style wrapper (Google Publisher Tag).

The Google Publisher Tag is primarily the *ad-server* tag rather than a
header-bidding wrapper, which is why server-side deployments that lean on DFP
expose so little on the client: the library fires slot-level render events
(``slotRenderEnded``), but not the fine-grained auction lifecycle.  HBDetector
therefore has to rely on the HB parameters embedded in the responses to
recognise server-side HB on gpt-only pages.
"""

from __future__ import annotations

from repro.hb.wrappers import HBWrapper
from repro.models import WrapperKind

__all__ = ["GptWrapper"]


class GptWrapper(HBWrapper):
    """The gpt.js wrapper model."""

    kind = WrapperKind.GPT
    library_name = "gpt.js"
    emits_auction_lifecycle = False
