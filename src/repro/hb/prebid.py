"""Prebid.js-style wrapper.

Prebid.js is the open-source wrapper behind roughly two thirds of client-side
header-bidding deployments.  Its observable behaviour, which this class
models, is the richest of the three libraries: it fires the full auction
lifecycle (``auctionInit`` → ``requestBids`` → ``bidRequested`` →
``bidResponse`` → ``auctionEnd`` → ``bidWon``) and exposes bid metadata (CPM,
price bucket, creative size, time to respond) in the event payloads.
"""

from __future__ import annotations

from repro.hb.wrappers import HBWrapper
from repro.models import WrapperKind

__all__ = ["PrebidWrapper"]


class PrebidWrapper(HBWrapper):
    """The Prebid.js wrapper model."""

    kind = WrapperKind.PREBID
    library_name = "prebid.js"
    emits_auction_lifecycle = True
