"""Entry point for running a publisher's header bidding during a page load.

This is the seam between the browser engine and the HB protocol package: the
engine hands over the publisher, the browser context and the auction
environment; the runner instantiates the right wrapper and executes the
publisher's facet, returning the ground-truth outcome.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ecosystem.publishers import Publisher
from repro.hb.auction import HeaderBiddingOutcome
from repro.hb.environment import AuctionEnvironment
from repro.hb.wrappers import build_wrapper, wrapper_class_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.browser.context import BrowserContext
    from repro.ecosystem.profiles import SiteProfile

__all__ = ["run_header_bidding", "wrapper_traits"]


def run_header_bidding(
    publisher: Publisher,
    context: "BrowserContext",
    environment: AuctionEnvironment,
    *,
    profile: "SiteProfile | None" = None,
) -> HeaderBiddingOutcome | None:
    """Run header bidding for one page load.

    Returns ``None`` when the publisher does not deploy HB at all, so that the
    browser engine can use the same call site for every page.  ``profile``
    carries the site's precompiled simulation inputs (fast path); without it
    the facet executors re-derive everything per page.
    """
    if not publisher.uses_hb:
        return None
    wrapper = build_wrapper(publisher, context, environment, profile=profile)
    return wrapper.run()


def wrapper_traits(publisher: Publisher) -> tuple[str, bool]:
    """``(library_name, emits_auction_lifecycle)`` for the publisher's wrapper.

    The columnar batch simulator needs exactly these two class-level
    observables to reproduce the wrapper's DOM-event footprint without
    instantiating one; routing the lookup through here keeps the dispatch
    table in :mod:`repro.hb.wrappers` the single source of truth.
    """
    cls = wrapper_class_for(publisher.wrapper)
    return cls.library_name, cls.emits_auction_lifecycle
