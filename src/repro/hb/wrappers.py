"""Wrapper base class and factory.

A *wrapper* is the JavaScript library embedded in the page header that drives
the header-bidding auction (Prebid.js for most publishers).  The simulation
models the wrapper as the component that (i) decides which lifecycle events
are emitted on the DOM bus and with which payloads, and (ii) delegates the
actual auction mechanics to the facet executors in
:mod:`repro.hb.client_side`, :mod:`repro.hb.server_side` and
:mod:`repro.hb.hybrid`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.ecosystem.publishers import Publisher
from repro.errors import ConfigurationError
from repro.hb.auction import HeaderBiddingOutcome
from repro.hb.environment import AuctionEnvironment
from repro.hb.events import HBEventName, price_bucket
from repro.models import HBFacet, WrapperKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.browser.context import BrowserContext
    from repro.ecosystem.profiles import SiteProfile

__all__ = ["HBWrapper", "build_wrapper", "wrapper_class_for"]


class HBWrapper:
    """Base class for the wrapper libraries.

    Subclasses override :attr:`kind`, :attr:`emits_auction_lifecycle` and
    :attr:`library_name` to model the observable differences between the
    libraries the paper analysed.  The auction mechanics themselves are shared
    and live in the facet executors.
    """

    #: Which library family this wrapper belongs to.
    kind: WrapperKind = WrapperKind.CUSTOM
    #: Script name reported in event payloads (used by static analysis too).
    library_name: str = "hb-wrapper.js"
    #: Whether the library fires the fine-grained auction lifecycle events
    #: (auctionInit / bidRequested / bidResponse) in addition to the coarse
    #: ones (auctionEnd / bidWon / slotRenderEnded) every wrapper fires.
    emits_auction_lifecycle: bool = True

    def __init__(self, publisher: Publisher, context: "BrowserContext",
                 environment: AuctionEnvironment,
                 profile: "SiteProfile | None" = None) -> None:
        if not publisher.uses_hb:
            raise ConfigurationError(
                f"cannot attach an HB wrapper to non-HB publisher {publisher.domain}"
            )
        self.publisher = publisher
        self.context = context
        self.environment = environment
        #: Precompiled site inputs; ``None`` selects the per-page derivations.
        self.profile = profile

    # -- event emission helpers ------------------------------------------------
    def _base_payload(self, **extra: object) -> dict[str, object]:
        payload: dict[str, object] = {"library": self.library_name}
        payload.update(extra)
        return payload

    def emit(self, event: HBEventName, **payload: object) -> None:
        self.context.dom.emit(event.value, self._base_payload(**payload))

    def emit_auction_init(self, auction_id: str) -> None:
        if self.emits_auction_lifecycle:
            self.emit(HBEventName.AUCTION_INIT, auctionId=auction_id,
                      adUnitCodes=[slot.code for slot in self.publisher.auctioned_slots],
                      timeout=self.publisher.timeout_ms)
            self.emit(HBEventName.REQUEST_BIDS, auctionId=auction_id)

    def emit_bid_requested(self, auction_id: str, bidder_code: str) -> None:
        if self.emits_auction_lifecycle:
            self.emit(HBEventName.BID_REQUESTED, auctionId=auction_id, bidder=bidder_code)

    def emit_bid_response(self, auction_id: str, *, bidder_code: str, slot_code: str,
                          cpm: float, size_label: str, latency_ms: float) -> None:
        if self.emits_auction_lifecycle:
            self.emit(
                HBEventName.BID_RESPONSE,
                auctionId=auction_id,
                bidder=bidder_code,
                adUnitCode=slot_code,
                cpm=round(cpm, 5),
                hb_pb=price_bucket(cpm),
                size=size_label,
                timeToRespond=round(latency_ms, 1),
                currency="USD",
            )

    def emit_bid_timeout(self, auction_id: str, bidder_codes: list[str]) -> None:
        if self.emits_auction_lifecycle and bidder_codes:
            self.emit(HBEventName.BID_TIMEOUT, auctionId=auction_id, bidders=bidder_codes)

    def emit_auction_end(self, auction_id: str, *, n_bids: int, latency_ms: float) -> None:
        self.emit(HBEventName.AUCTION_END, auctionId=auction_id, bidsReceived=n_bids,
                  auctionDuration=round(latency_ms, 1))

    def emit_bid_won(self, auction_id: str, *, bidder_code: str, slot_code: str,
                     cpm: float, size_label: str) -> None:
        self.emit(
            HBEventName.BID_WON,
            auctionId=auction_id,
            bidder=bidder_code,
            adUnitCode=slot_code,
            cpm=round(cpm, 5),
            hb_pb=price_bucket(cpm),
            size=size_label,
            currency="USD",
        )

    def emit_slot_render_ended(self, *, slot_code: str, size_label: str, is_empty: bool,
                               campaign: str | None = None) -> None:
        self.emit(
            HBEventName.SLOT_RENDER_ENDED,
            adUnitCode=slot_code,
            slotId=slot_code,
            size=size_label,
            isEmpty=is_empty,
            campaign=campaign or "",
        )

    def emit_ad_render_failed(self, *, slot_code: str, reason: str) -> None:
        self.emit(HBEventName.AD_RENDER_FAILED, adUnitCode=slot_code, reason=reason)

    # -- execution ---------------------------------------------------------------
    def run(self) -> HeaderBiddingOutcome:
        """Run the publisher's header-bidding auction for this page load."""
        from repro.hb import client_side, hybrid, server_side

        facet = self.publisher.facet
        if facet is HBFacet.CLIENT_SIDE:
            return client_side.run_client_side(self)
        if facet is HBFacet.SERVER_SIDE:
            return server_side.run_server_side(self)
        if facet is HBFacet.HYBRID:
            return hybrid.run_hybrid(self)
        raise ConfigurationError(f"unknown HB facet: {facet!r}")


#: Wrapper class per library kind, resolved once (the concrete classes live in
#: modules that import this one, hence the lazy first-call fill).
_WRAPPER_CLASSES: dict[WrapperKind, type[HBWrapper]] = {}


def wrapper_class_for(kind: WrapperKind) -> type[HBWrapper]:
    """The wrapper class modelling the given library family.

    Exposed separately from :func:`build_wrapper` so code that only needs the
    class-level observables (``library_name``, ``emits_auction_lifecycle``)
    — e.g. the columnar batch simulator — can read them without
    instantiating a wrapper against a live browser context.
    """
    if not _WRAPPER_CLASSES:
        from repro.hb.gpt import GptWrapper
        from repro.hb.prebid import PrebidWrapper
        from repro.hb.pubfood import PubfoodWrapper

        _WRAPPER_CLASSES.update({
            WrapperKind.PREBID: PrebidWrapper,
            WrapperKind.GPT: GptWrapper,
            WrapperKind.PUBFOOD: PubfoodWrapper,
            WrapperKind.CUSTOM: HBWrapper,
        })
    return _WRAPPER_CLASSES.get(kind, HBWrapper)


def build_wrapper(publisher: Publisher, context: "BrowserContext",
                  environment: AuctionEnvironment,
                  profile: "SiteProfile | None" = None) -> HBWrapper:
    """Instantiate the wrapper class matching the publisher's configuration."""
    cls = wrapper_class_for(publisher.wrapper)
    return cls(publisher, context, environment, profile)
