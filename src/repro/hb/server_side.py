"""Server-side header bidding execution (§4.4 of the paper).

In the server-side facet the browser sends a *single* request to one
aggregation endpoint (most often DoubleClick for Publishers), which runs the
whole auction among its affiliated partners in its backend and returns only
the winning impressions.  The client therefore observes very little: one
outgoing request, one response per slot — but the responses do carry the
``hb_*`` parameters, which is how HBDetector recognises this facet despite its
opacity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ecosystem.partners import DemandPartner
from repro.hb.auction import BidOutcome, HeaderBiddingOutcome, SlotAuctionOutcome
from repro.hb.events import HBParam, price_bucket
from repro.models import HBFacet, SaleChannel
from repro.utils.rng import fast_uniform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hb.wrappers import HBWrapper

__all__ = ["run_server_side"]


def run_server_side(wrapper: "HBWrapper") -> HeaderBiddingOutcome:
    """Execute one server-side header-bidding page load."""
    context = wrapper.context
    publisher = wrapper.publisher
    environment = wrapper.environment
    profile = wrapper.profile
    rng = context.rng
    facet = HBFacet.SERVER_SIDE

    aggregator = publisher.partners[0]
    auction_id = context.ids.next("auction")
    auction_start = context.clock.now()
    slots = publisher.auctioned_slots

    # One outgoing request carrying every auctioned slot.
    if profile is not None and profile.server_request_params is not None:
        request_url = profile.server_request_url
        request_params: dict[str, object] = dict(profile.server_request_params)
        request_params["correlator"] = auction_id
    else:
        request_url = f"https://{aggregator.primary_domain}/gampad/ads"
        request_params = {
            "iu": f"/{publisher.domain}/front",
            "prev_iu_szs": "|".join(",".join(slot.accepted_labels) for slot in slots),
            "slot_count": str(len(slots)),
            "correlator": auction_id,
        }
    context.requests.record_outgoing(
        request_url,
        method="GET",
        params=request_params,
        initiator=publisher.url,
        timestamp_ms=auction_start,
    )

    # The aggregator's backend consults its affiliated partners; the browser
    # only experiences the total round-trip latency of that single request.
    if profile is not None and profile.aggregator_latency is not None:
        round_trip = profile.aggregator_latency.sample(rng)
        round_trip += profile.aggregator_internal.sample(rng)  # type: ignore[union-attr]
        internal_bidders: list = profile.sample_internal_bidders(rng)
    else:
        round_trip = aggregator.latency.sample(rng, scale=publisher.latency_scale)
        round_trip += aggregator.latency.sample(rng, scale=publisher.latency_scale * 0.35)
        internal_bidders = environment.sample_internal_bidders(rng, exclude=(aggregator,))
    response_time = auction_start + round_trip
    context.clock.advance_to(response_time)

    slot_outcomes: list[SlotAuctionOutcome] = []
    for slot_index, slot in enumerate(slots):
        internal_bids: list[tuple[DemandPartner, float | None]] = []
        for bidder in internal_bidders:
            if profile is not None:
                response = bidder.respond(rng, slot_index, slot.code, slot.primary_size)
                internal_bids.append((bidder.partner, response.bid_cpm))
            else:
                response = environment.partner_response(
                    rng, bidder, slot, facet, latency_scale=publisher.latency_scale
                )
                internal_bids.append((bidder, response.bid_cpm))
        priced = [(partner, cpm) for partner, cpm in internal_bids if cpm is not None]
        winner: DemandPartner | None = None
        clearing_cpm = 0.0
        if priced:
            winner, clearing_cpm = max(priced, key=lambda pair: pair[1])

        response_params: dict[str, object] = {"correlator": auction_id, "slot": slot.code}
        if winner is not None:
            response_params[HBParam.BIDDER.value] = winner.bidder_code
            response_params[HBParam.PRICE_BUCKET.value] = price_bucket(clearing_cpm)
            response_params[HBParam.SIZE.value] = slot.primary_size.label
            response_params[HBParam.SOURCE.value] = "s2s"
        context.requests.record_incoming(
            request_url,
            params=response_params,
            initiator=publisher.url,
            timestamp_ms=response_time,
        )

        # Ground truth: only bids the aggregator reported back are observable,
        # and none of them can be late (the backend enforces its own deadline).
        bids = tuple(
            BidOutcome(
                partner_name=partner.name,
                bidder_code=partner.bidder_code,
                slot_code=slot.code,
                size=slot.primary_size,
                cpm=cpm,
                requested_at_ms=auction_start,
                responded_at_ms=response_time,
                late=False,
                won=(winner is not None and partner.name == winner.name),
            )
            for partner, cpm in priced
        )
        slot_outcomes.append(
            SlotAuctionOutcome(
                slot=slot,
                bids=bids,
                winning_channel=SaleChannel.HEADER_BIDDING if winner else SaleChannel.FALLBACK,
                winner=winner.name if winner else None,
                clearing_cpm=clearing_cpm,
                auction_start_ms=auction_start,
                ad_server_called_at_ms=auction_start,
                ad_server_responded_at_ms=response_time,
            )
        )

    # Render phase: only the displayable slots produce render events.
    if profile is not None:
        display_codes: frozenset[str] | set[str] = profile.display_codes
    else:
        display_codes = {slot.code for slot in publisher.slots}
    for outcome in slot_outcomes:
        if outcome.slot.code not in display_codes:
            continue
        context.clock.advance(fast_uniform(rng, 20.0, 120.0))
        wrapper.emit_slot_render_ended(
            slot_code=outcome.slot.code,
            size_label=outcome.slot.primary_size.label,
            is_empty=outcome.winner is None,
            campaign=outcome.winner or "",
        )

    return HeaderBiddingOutcome(
        domain=publisher.domain,
        facet=facet,
        slot_outcomes=tuple(slot_outcomes),
        wrapper_timeout_ms=publisher.timeout_ms,
        misconfigured_wrapper=False,
    )
