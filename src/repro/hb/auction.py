"""Ground-truth auction outcome records.

The HB wrappers produce two kinds of artefacts for every page load:

1. the *observable* stream of DOM events and web requests that HBDetector is
   allowed to use, and
2. the *ground truth* outcome records defined here, which the simulation keeps
   so that detection accuracy can be validated and so that analysis results
   can be cross-checked against what really happened.

HBDetector must never read these records; only validation and calibration
tests do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import AuctionError
from repro.models import AdSlot, AdSlotSize, HBFacet, SaleChannel

__all__ = ["BidOutcome", "SlotAuctionOutcome", "HeaderBiddingOutcome"]


@dataclass(frozen=True, slots=True)
class BidOutcome:
    """One partner's answer to one slot's bid request (ground truth)."""

    partner_name: str
    bidder_code: str
    slot_code: str
    size: AdSlotSize
    cpm: float | None
    requested_at_ms: float
    responded_at_ms: float
    late: bool
    won: bool = False
    currency: str = "USD"

    def __post_init__(self) -> None:
        if self.responded_at_ms < self.requested_at_ms:
            raise AuctionError("a bid cannot be answered before it was requested")
        if self.cpm is not None and self.cpm < 0:
            raise AuctionError("bid CPM cannot be negative")
        if self.won and self.cpm is None:
            raise AuctionError("a no-bid cannot win an auction")

    @property
    def latency_ms(self) -> float:
        return self.responded_at_ms - self.requested_at_ms

    @property
    def is_bid(self) -> bool:
        """True when the partner returned an actual price (not a no-bid)."""
        return self.cpm is not None


@dataclass(frozen=True, slots=True)
class SlotAuctionOutcome:
    """The complete ground truth for one auctioned ad slot."""

    slot: AdSlot
    bids: tuple[BidOutcome, ...]
    winning_channel: SaleChannel
    winner: str | None
    clearing_cpm: float
    auction_start_ms: float
    ad_server_called_at_ms: float
    ad_server_responded_at_ms: float
    rendered: bool = True

    def __post_init__(self) -> None:
        if self.ad_server_called_at_ms < self.auction_start_ms:
            raise AuctionError("the ad server cannot be called before the auction starts")
        if self.ad_server_responded_at_ms < self.ad_server_called_at_ms:
            raise AuctionError("the ad server cannot respond before it is called")

    @property
    def total_latency_ms(self) -> float:
        """Time from the first bid request until the ad server responded."""
        return self.ad_server_responded_at_ms - self.auction_start_ms

    @property
    def received_bids(self) -> tuple[BidOutcome, ...]:
        return tuple(bid for bid in self.bids if bid.is_bid)

    @property
    def late_bids(self) -> tuple[BidOutcome, ...]:
        return tuple(bid for bid in self.bids if bid.is_bid and bid.late)

    @property
    def on_time_bids(self) -> tuple[BidOutcome, ...]:
        return tuple(bid for bid in self.bids if bid.is_bid and not bid.late)

    @property
    def participating_partners(self) -> tuple[str, ...]:
        seen: list[str] = []
        for bid in self.bids:
            if bid.partner_name not in seen:
                seen.append(bid.partner_name)
        return tuple(seen)


@dataclass(frozen=True, slots=True)
class HeaderBiddingOutcome:
    """Ground truth for every auction run during one page load."""

    domain: str
    facet: HBFacet
    slot_outcomes: tuple[SlotAuctionOutcome, ...]
    wrapper_timeout_ms: float
    misconfigured_wrapper: bool = False

    def __post_init__(self) -> None:
        if not self.slot_outcomes:
            raise AuctionError("a header bidding outcome needs at least one slot auction")
        if self.wrapper_timeout_ms <= 0:
            raise AuctionError("wrapper timeout must be positive")

    @property
    def n_auctions(self) -> int:
        return len(self.slot_outcomes)

    @property
    def all_bids(self) -> tuple[BidOutcome, ...]:
        return tuple(bid for outcome in self.slot_outcomes for bid in outcome.bids)

    @property
    def received_bids(self) -> tuple[BidOutcome, ...]:
        return tuple(bid for bid in self.all_bids if bid.is_bid)

    @property
    def total_latency_ms(self) -> float:
        """Page-level HB latency: first bid request to last ad-server response."""
        start = min(outcome.auction_start_ms for outcome in self.slot_outcomes)
        end = max(outcome.ad_server_responded_at_ms for outcome in self.slot_outcomes)
        return end - start

    @property
    def participating_partners(self) -> tuple[str, ...]:
        seen: list[str] = []
        for outcome in self.slot_outcomes:
            for name in outcome.participating_partners:
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def bids_by_partner(self) -> dict[str, list[BidOutcome]]:
        """Group received bids by partner name."""
        grouped: dict[str, list[BidOutcome]] = {}
        for bid in self.received_bids:
            grouped.setdefault(bid.partner_name, []).append(bid)
        return grouped


def merge_outcomes(outcomes: Iterable[HeaderBiddingOutcome]) -> dict[str, int]:
    """Aggregate simple counters over many page-level outcomes.

    Convenience used by calibration tests and the experiment runner to report
    how many auctions / bids / late bids a simulated crawl produced.
    """
    n_auctions = 0
    n_bids = 0
    n_late = 0
    for outcome in outcomes:
        n_auctions += outcome.n_auctions
        n_bids += len(outcome.received_bids)
        n_late += sum(1 for bid in outcome.received_bids if bid.late)
    return {"auctions": n_auctions, "bids": n_bids, "late_bids": n_late}
