"""Hybrid header bidding execution (§4.5 of the paper).

The hybrid facet combines the two others: the browser collects bids from the
publisher's configured partners exactly like client-side HB, pushes them to a
DFP-style ad server, and that ad server *also* runs its own internal auction
among its affiliated partners before choosing the overall winner.  The client
therefore observes the full client-side activity plus an ad-server response
that may name a winner which never appeared among the client-side bidders.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ecosystem.partners import DemandPartner, PartnerResponse
from repro.hb.auction import BidOutcome, HeaderBiddingOutcome, SlotAuctionOutcome
from repro.hb.client_side import (
    _ad_server_call_time,
    _render_and_notify,
    dispatch_bid_requests,
    push_to_ad_server,
)
from repro.hb.events import HBParam, price_bucket
from repro.models import HBFacet, SaleChannel
from repro.utils.rng import fast_uniform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hb.wrappers import HBWrapper

__all__ = ["run_hybrid"]


def run_hybrid(wrapper: "HBWrapper") -> HeaderBiddingOutcome:
    """Execute one hybrid header-bidding page load."""
    context = wrapper.context
    publisher = wrapper.publisher
    environment = wrapper.environment
    profile = wrapper.profile
    rng = context.rng
    facet = HBFacet.HYBRID

    ad_server = publisher.ad_server
    assert ad_server is not None, "hybrid publishers always have a partner-operated ad server"

    auction_id = context.ids.next("auction")
    auction_start = context.clock.now()
    wrapper.emit_auction_init(auction_id)

    slots = publisher.auctioned_slots
    client_partners = tuple(p for p in publisher.partners if p is not ad_server) or publisher.partners
    replies = dispatch_bid_requests(
        wrapper,
        client_partners,
        slots,
        auction_id,
        facet=facet,
        partner_profiles=profile.client_partner_profiles if profile is not None else None,
        request_templates=profile.bid_request_templates if profile is not None else None,
    )
    ad_server_call = _ad_server_call_time(wrapper, replies, auction_start)

    on_time: dict[str, dict[str, PartnerResponse]] = {slot.code: {} for slot in slots}
    timed_out: list[str] = []
    for reply in replies:
        reply.late = reply.responded_at_ms > ad_server_call
        response_params: dict[str, object] = {"bidder": reply.partner.bidder_code}
        for slot_code, response in reply.responses.items():
            if response.bid_cpm is None:
                continue
            response_params[f"{HBParam.CPM.value}_{slot_code}"] = f"{response.bid_cpm:.5f}"
            response_params[f"{HBParam.SIZE.value}_{slot_code}"] = response.size.label
        context.requests.record_incoming(
            reply.partner.bid_endpoint(),
            params=response_params,
            initiator=publisher.url,
            timestamp_ms=reply.responded_at_ms,
        )
        if reply.late:
            timed_out.append(reply.partner.bidder_code)
            continue
        for slot_code, response in reply.responses.items():
            if response.bid_cpm is None:
                continue
            on_time[slot_code][reply.partner.bidder_code] = response
            wrapper.emit_bid_response(
                auction_id,
                bidder_code=reply.partner.bidder_code,
                slot_code=slot_code,
                cpm=response.bid_cpm,
                size_label=response.size.label,
                latency_ms=reply.responded_at_ms - reply.dispatched_at_ms,
            )

    wrapper.emit_bid_timeout(auction_id, timed_out)
    n_on_time = sum(len(bids) for bids in on_time.values())
    context.clock.advance_to(ad_server_call)
    wrapper.emit_auction_end(auction_id, n_bids=n_on_time,
                             latency_ms=ad_server_call - auction_start)

    # Push the client-side bids to the partner-operated ad server.  The ad
    # server's answer takes longer than a plain DFP round trip because it runs
    # its own internal auction among affiliated partners first.
    base_response = push_to_ad_server(
        wrapper, slots, on_time, auction_id, ad_server_call,
        ad_server_host=ad_server.primary_domain, facet=facet,
    )
    if profile is not None and profile.hybrid_internal_delay is not None:
        internal_delay = profile.hybrid_internal_delay.sample(rng)
    else:
        internal_delay = ad_server.latency.sample(rng, scale=publisher.latency_scale * 0.5)
    ad_server_response = base_response + internal_delay
    context.clock.advance_to(ad_server_response)

    if profile is not None:
        internal_bidders: list = profile.sample_internal_bidders(rng)
        bidders_by_code = profile.client_bidders_by_code or {}
        render_url = profile.hybrid_render_url
    else:
        internal_bidders = environment.sample_internal_bidders(
            rng, exclude=(ad_server, *client_partners)
        )
        bidders_by_code = {partner.bidder_code: partner for partner in client_partners}
        render_url = f"https://{ad_server.primary_domain}/gampad/render"

    slot_outcomes: list[SlotAuctionOutcome] = []
    winners_for_render: dict[str, tuple[str | None, float]] = {}
    for slot_index, slot in enumerate(slots):
        # The ad server compares the best client-side bid with the best bid
        # from its internal auction.
        client_bids = on_time.get(slot.code, {})
        best_client_code: str | None = None
        best_client_cpm = 0.0
        for code, response in client_bids.items():
            if response.bid_cpm is not None and response.bid_cpm > best_client_cpm:
                best_client_code, best_client_cpm = code, response.bid_cpm

        internal_results: list[tuple[DemandPartner, float | None]] = []
        for bidder in internal_bidders:
            if profile is not None:
                response = bidder.respond(rng, slot_index, slot.code, slot.primary_size)
                internal_results.append((bidder.partner, response.bid_cpm))
            else:
                response = environment.partner_response(
                    rng, bidder, slot, facet, latency_scale=publisher.latency_scale
                )
                internal_results.append((bidder, response.bid_cpm))
        internal_priced = [(p, cpm) for p, cpm in internal_results if cpm is not None]
        best_internal: tuple[DemandPartner, float] | None = None
        if internal_priced:
            best_internal = max(internal_priced, key=lambda pair: pair[1])

        winner_name: str | None = None
        winner_code: str | None = None
        clearing_cpm = 0.0
        if best_client_code is not None and (best_internal is None or best_client_cpm >= best_internal[1]):
            winner_code = best_client_code
            winner_name = bidders_by_code[best_client_code].name
            clearing_cpm = best_client_cpm
        elif best_internal is not None:
            winner_name = best_internal[0].name
            winner_code = best_internal[0].bidder_code
            clearing_cpm = best_internal[1]

        # The ad-server response names the winner with HB parameters, which is
        # what lets the detector attribute hybrid wins to partners that never
        # appeared client-side.
        response_params: dict[str, object] = {"correlator": auction_id, "slot": slot.code}
        if winner_code is not None:
            response_params[HBParam.BIDDER.value] = winner_code
            response_params[HBParam.PRICE_BUCKET.value] = price_bucket(clearing_cpm)
            response_params[HBParam.SIZE.value] = slot.primary_size.label
            response_params[HBParam.SOURCE.value] = "hybrid"
        context.requests.record_incoming(
            render_url,
            params=response_params,
            initiator=publisher.url,
            timestamp_ms=ad_server_response,
        )

        bids: list[BidOutcome] = []
        for reply in replies:
            response = reply.responses[slot.code]
            bids.append(
                BidOutcome(
                    partner_name=reply.partner.name,
                    bidder_code=reply.partner.bidder_code,
                    slot_code=slot.code,
                    size=response.size,
                    cpm=response.bid_cpm,
                    requested_at_ms=reply.dispatched_at_ms,
                    responded_at_ms=reply.responded_at_ms,
                    late=reply.late,
                    won=(winner_code == reply.partner.bidder_code and response.bid_cpm is not None),
                )
            )
        for partner, cpm in internal_priced:
            bids.append(
                BidOutcome(
                    partner_name=partner.name,
                    bidder_code=partner.bidder_code,
                    slot_code=slot.code,
                    size=slot.primary_size,
                    cpm=cpm,
                    requested_at_ms=ad_server_call,
                    responded_at_ms=ad_server_response,
                    late=False,
                    won=(winner_name == partner.name),
                )
            )

        winners_for_render[slot.code] = (winner_code, clearing_cpm)
        slot_outcomes.append(
            SlotAuctionOutcome(
                slot=slot,
                bids=tuple(bids),
                winning_channel=SaleChannel.HEADER_BIDDING if winner_name else SaleChannel.FALLBACK,
                winner=winner_name,
                clearing_cpm=clearing_cpm,
                auction_start_ms=auction_start,
                ad_server_called_at_ms=ad_server_call,
                ad_server_responded_at_ms=ad_server_response,
            )
        )

    # Render: reuse the client-side render/notify logic for slots won by
    # client-visible bidders; internally won slots only fire render events.
    client_winner_map = {
        code: value for code, value in winners_for_render.items() if value[0] in bidders_by_code
    }
    _render_and_notify(wrapper, slot_outcomes, client_winner_map, auction_id)
    if profile is not None:
        display_codes: frozenset[str] | set[str] = profile.display_codes
    else:
        display_codes = {slot.code for slot in publisher.slots}
    for outcome in slot_outcomes:
        code = outcome.slot.code
        if code in display_codes and code not in client_winner_map:
            context.clock.advance(fast_uniform(rng, 20.0, 100.0))
            wrapper.emit_slot_render_ended(
                slot_code=code,
                size_label=outcome.slot.primary_size.label,
                is_empty=outcome.winner is None,
                campaign=outcome.winner or "",
            )

    return HeaderBiddingOutcome(
        domain=publisher.domain,
        facet=facet,
        slot_outcomes=tuple(slot_outcomes),
        wrapper_timeout_ms=publisher.timeout_ms,
        misconfigured_wrapper=publisher.misconfigured_wrapper,
    )
