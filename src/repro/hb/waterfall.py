"""Waterfall / RTB baseline (the "chasing waterfalls" the paper's title retires).

In the traditional waterfall standard, the publisher's ad server works through
a *prioritised* list of ad networks: it asks network #1 for a bid, and only if
that network passes (no bid, or below the floor) does it move on to network
#2, and so on, finally falling back to remnant inventory.  Priorities are set
from historical average prices, not real-time competition, which is exactly
the inefficiency header bidding was invented to remove.

The implementation below is used for the paper's comparison claims:

* latency — the waterfall usually stops after the first one or two passes, so
  its median latency is roughly a third of header bidding's (§1, §7.2);
* prices — for real-user profiles RTB clearing prices are substantially higher
  than the vanilla-profile HB bids the crawler observes (§5.4).

From the browser, waterfall activity is only visible as win-notification URLs
whose parameter names are DSP-specific and carry none of the ``hb_*`` keys —
which is why HBDetector can cleanly ignore it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.ecosystem.partners import DemandPartner
from repro.ecosystem.registry import PartnerRegistry
from repro.errors import AuctionError
from repro.hb.environment import AuctionEnvironment
from repro.ecosystem.profiles import (
    AD_SERVER_PATH_SCALE,
    WATERFALL_MAX_LEVELS,
    WATERFALL_SLOT_SIZE_LABELS,
    sample_without_replacement,
    waterfall_fill_probability,
    waterfall_head_size,
)
from repro.models import AdSlot, AdSlotSize, SaleChannel, STANDARD_SIZES
from repro.utils.rng import fast_uniform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.browser.context import BrowserContext
    from repro.ecosystem.profiles import SiteWaterfall, WaterfallPartnerProfile

__all__ = ["WaterfallAdNetwork", "WaterfallPassResult", "WaterfallOutcome", "run_waterfall",
           "build_waterfall_chain", "build_waterfall_chain_fast", "AD_SERVER_PATH_SCALE"]

#: Waterfall passes run over the ad server's server-to-server connections to
#: the ad networks (persistent, well-peered links), which are noticeably
#: faster than the browser-to-bidder HTTP requests header bidding issues from
#: the client.  The factor itself is defined in
#: :mod:`repro.ecosystem.profiles` (which precompiles with it) and
#: re-exported here unchanged.


@dataclass(frozen=True, slots=True)
class WaterfallAdNetwork:
    """One level of the waterfall: an ad network with a priority and a floor."""

    partner: DemandPartner
    priority: int
    floor_cpm: float = 0.05

    def __post_init__(self) -> None:
        if self.priority < 1:
            raise AuctionError("waterfall priorities are 1-based")
        if self.floor_cpm < 0:
            raise AuctionError("floor CPM cannot be negative")


@dataclass(frozen=True, slots=True)
class WaterfallPassResult:
    """What happened when one waterfall level was tried."""

    network: WaterfallAdNetwork
    latency_ms: float
    cpm: float | None
    accepted: bool


@dataclass(frozen=True, slots=True)
class WaterfallOutcome:
    """Ground truth of one waterfall-mediated ad-slot sale."""

    slot: AdSlot
    passes: tuple[WaterfallPassResult, ...]
    winner: str | None
    clearing_cpm: float
    total_latency_ms: float
    channel: SaleChannel

    @property
    def n_passes(self) -> int:
        return len(self.passes)


def build_waterfall_chain(
    registry: PartnerRegistry,
    rng: np.random.Generator,
    *,
    max_levels: int = WATERFALL_MAX_LEVELS,
) -> tuple[WaterfallAdNetwork, ...]:
    """Construct a prioritised chain of ad networks for one publisher.

    Priorities follow historical average prices, which in practice means the
    big, popular networks sit at the top of the chain.
    """
    if max_levels < 1:
        raise AuctionError("a waterfall needs at least one level")
    partners = sorted(registry.partners, key=lambda p: p.popularity_weight, reverse=True)
    n_levels = int(rng.integers(1, max_levels + 1))
    head = partners[: waterfall_head_size(n_levels)]
    weights = np.asarray([p.popularity_weight for p in head], dtype=float)
    weights = weights / weights.sum()
    chosen_idx = rng.choice(len(head), size=min(n_levels, len(head)), replace=False, p=weights)
    chosen = [head[int(i)] for i in np.atleast_1d(chosen_idx)]
    # Highest historical prices (≈ popularity) get the highest priority.
    chosen.sort(key=lambda p: p.popularity_weight, reverse=True)
    return tuple(
        WaterfallAdNetwork(partner=partner, priority=level, floor_cpm=float(rng.uniform(0.02, 0.12)))
        for level, partner in enumerate(chosen, start=1)
    )


def build_waterfall_chain_fast(
    site_wf: "SiteWaterfall",
    rng: np.random.Generator,
) -> tuple[WaterfallAdNetwork, ...]:
    """Chain construction over precompiled candidate tables.

    Draws from the RNG exactly like :func:`build_waterfall_chain` (level
    count, weighted choice, per-level floor) but reads the sorted candidate
    pool and its normalised weights from the site's
    :class:`~repro.ecosystem.profiles.SiteWaterfall` instead of re-sorting
    the registry and re-normalising the weights per page.
    """
    n_levels = int(rng.integers(1, site_wf.max_levels + 1))
    head, probabilities, cdf = site_wf.heads[n_levels - 1]
    chosen_idx = sample_without_replacement(
        rng, probabilities, cdf, min(n_levels, len(head))
    )
    chosen = [head[int(i)] for i in chosen_idx]
    chosen.sort(key=lambda p: p.popularity_weight, reverse=True)
    return tuple(
        WaterfallAdNetwork(partner=partner, priority=level, floor_cpm=fast_uniform(rng, 0.02, 0.12))
        for level, partner in enumerate(chosen, start=1)
    )


def _rtb_price(environment: AuctionEnvironment, rng: np.random.Generator,
               partner: DemandPartner, size: AdSlotSize, *, real_user: bool) -> float | None:
    """Sample the clearing price of one network's internal RTB auction.

    Waterfall priorities are assigned from historical fill and price data, so
    the networks at the top of the chain fill most requests — which is exactly
    why the waterfall usually terminates after a single round trip and stays
    fast compared to header bidding.
    """
    fill_probability = waterfall_fill_probability(partner.bidding.bid_probability)
    if rng.random() > fill_probability:
        return None
    multiplier = environment.pricing.size_multiplier(size)
    # Prior measurements of the waterfall standard report ~1 CPM average and a
    # ~0.19 CPM median for 300x250 with real user profiles; vanilla profiles
    # price like the HB baseline.
    profile_multiplier = 6.0 if real_user else environment.pricing.vanilla_profile_multiplier
    return partner.bidding.sample_cpm(rng, size, size_multiplier=multiplier,
                                      facet_multiplier=profile_multiplier)


def run_waterfall(
    slot: AdSlot,
    chain: Sequence[WaterfallAdNetwork],
    environment: AuctionEnvironment,
    rng: np.random.Generator,
    *,
    context: "BrowserContext | None" = None,
    page_url: str = "",
    latency_scale: float = 1.0,
    real_user: bool = False,
    compiled: "Mapping[str, WaterfallPartnerProfile] | None" = None,
) -> WaterfallOutcome:
    """Run the waterfall for one ad slot.

    When a browser ``context`` is supplied, the win notification is recorded in
    the web-request log (with RTB-style parameters), exactly the residue a
    passive observer can see of waterfall activity.

    ``compiled`` maps partner names to precompiled
    :class:`~repro.ecosystem.profiles.WaterfallPartnerProfile` samplers (the
    fast path); networks found there skip the per-pass latency-scale and
    price-multiplier derivations while consuming the RNG identically.
    """
    if not chain:
        raise AuctionError("cannot run a waterfall without any ad network")
    passes: list[WaterfallPassResult] = []
    total_latency = 0.0
    winner: str | None = None
    clearing = 0.0
    channel = SaleChannel.FALLBACK

    for network in sorted(chain, key=lambda n: n.priority):
        # One ad-server-mediated round trip per level; the network's own RTB
        # auction happens within that round trip, over server-to-server links.
        profile = compiled.get(network.partner.name) if compiled is not None else None
        if profile is not None:
            latency = profile.latency.sample(rng)
            # Same draws as _rtb_price: fill check first, then the price.
            if rng.random() > profile.fill_probability:
                cpm = None
            else:
                mu = None if real_user else profile.cpm_mu_by_label.get(slot.primary_size.label)
                if mu is not None:
                    drawn = float(rng.lognormal(mean=mu, sigma=profile.cpm_sigma))
                    cpm = round(max(drawn, 0.0001), 5)
                else:  # unprofiled size / real-user pricing: derive per pass
                    cpm = network.partner.bidding.sample_cpm(
                        rng,
                        slot.primary_size,
                        size_multiplier=environment.pricing.size_multiplier(slot.primary_size),
                        facet_multiplier=(
                            6.0 if real_user else environment.pricing.vanilla_profile_multiplier
                        ),
                    )
        else:
            latency = network.partner.latency.sample(rng, scale=latency_scale * AD_SERVER_PATH_SCALE)
            cpm = _rtb_price(environment, rng, network.partner, slot.primary_size, real_user=real_user)
        total_latency += latency
        accepted = cpm is not None and cpm >= network.floor_cpm
        passes.append(WaterfallPassResult(network=network, latency_ms=latency, cpm=cpm,
                                          accepted=accepted))
        if accepted:
            winner = network.partner.name
            clearing = float(cpm)  # type: ignore[arg-type]
            channel = SaleChannel.RTB_WATERFALL
            break

    if winner is None:
        # Remnant fallback (e.g. AdSense) fills at a low price after one more,
        # fast, round trip.
        total_latency += fast_uniform(rng, 40.0, 120.0)
        winner = "backfill"
        clearing = fast_uniform(rng, 0.005, 0.02)
        channel = SaleChannel.FALLBACK

    if context is not None and channel is SaleChannel.RTB_WATERFALL:
        winning_pass = passes[-1]
        context.requests.record_outgoing(
            f"https://{winning_pass.network.partner.primary_domain}/rtb/win",
            method="GET",
            params={
                "price": f"{clearing:.5f}",
                "auction_id": context.ids.next("rtb"),
                "imp_id": slot.code,
                "crid": f"creative-{abs(hash(slot.code)) % 10_000}",
            },
            initiator=page_url,
            timestamp_ms=context.clock.now() + total_latency,
        )

    return WaterfallOutcome(
        slot=slot,
        passes=tuple(passes),
        winner=winner,
        clearing_cpm=clearing,
        total_latency_ms=total_latency,
        channel=channel,
    )


#: Sizes a non-HB ad slot draws from (hoisted: rebuilt per page previously).
_DEFAULT_SLOT_SIZES: tuple[AdSlotSize, ...] = tuple(
    size for size in STANDARD_SIZES if size.label in WATERFALL_SLOT_SIZE_LABELS
)


def default_waterfall_slot(rng: np.random.Generator, code: str = "waterfall-slot-0") -> AdSlot:
    """A representative slot for pages that serve ads without header bidding."""
    primary = _DEFAULT_SLOT_SIZES[int(rng.integers(0, len(_DEFAULT_SLOT_SIZES)))]
    return AdSlot(code=code, primary_size=primary)
