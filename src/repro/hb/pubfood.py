"""pubfood.js-style wrapper.

Pubfood is one of the smaller open-source wrappers the paper analysed.  It
follows the same conceptual lifecycle as Prebid.js and exposes comparable
auction metadata, so for detection purposes it behaves like a lifecycle-rich
wrapper; only the library name differs in the payloads and the script tag.
"""

from __future__ import annotations

from repro.hb.wrappers import HBWrapper
from repro.models import WrapperKind

__all__ = ["PubfoodWrapper"]


class PubfoodWrapper(HBWrapper):
    """The pubfood.js wrapper model."""

    kind = WrapperKind.PUBFOOD
    library_name = "pubfood.js"
    emits_auction_lifecycle = True
