"""Auction environment: the demand side as seen from one page load.

The wrappers and facet executors need a consistent view of the surrounding
ecosystem — which partners exist, how popular each one is (prices depend on
it), the structural pricing model and the ad-server latency parameters.  The
:class:`AuctionEnvironment` bundles that view so the protocol code does not
reach into global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ecosystem.bidding import PricingModel
from repro.ecosystem.partners import DemandPartner, PartnerResponse
from repro.ecosystem.registry import PartnerRegistry, default_registry
from repro.errors import ConfigurationError
from repro.models import AdSlot, AdSlotSize, HBFacet

__all__ = ["AuctionEnvironment"]


@dataclass
class AuctionEnvironment:
    """Everything the demand side contributes to an auction.

    Parameters
    ----------
    registry:
        The partner universe.
    pricing:
        Structural price multipliers (size / facet / popularity / profile).
    vanilla_profile:
        ``True`` for the paper's clean-slate crawler (no cookies, no history);
        bids are attenuated accordingly.
    ad_server_latency_median_ms / ad_server_latency_sigma:
        Latency of the publisher-ad-server round trip as observed from the
        browser, excluding any internal auction the operator runs.
    internal_auction_pool:
        How many affiliated partners a server-side aggregator or hybrid ad
        server consults internally, expressed as an inclusive (low, high)
        range.
    """

    registry: PartnerRegistry = field(default_factory=default_registry)
    pricing: PricingModel = field(default_factory=PricingModel)
    vanilla_profile: bool = True
    ad_server_latency_median_ms: float = 90.0
    ad_server_latency_sigma: float = 0.40
    internal_auction_pool: tuple[int, int] = (3, 8)

    def __post_init__(self) -> None:
        if self.ad_server_latency_median_ms <= 0:
            raise ConfigurationError("ad server latency median must be positive")
        low, high = self.internal_auction_pool
        if low < 1 or high < low:
            raise ConfigurationError("internal auction pool range must be >= 1 and ordered")
        ordered = sorted(self.registry.partners, key=lambda p: p.popularity_weight, reverse=True)
        self._popularity_rank = {partner.name: rank for rank, partner in enumerate(ordered, start=1)}

    # -- popularity ----------------------------------------------------------
    @property
    def total_partners(self) -> int:
        return len(self.registry)

    def popularity_rank(self, partner: DemandPartner) -> int:
        """1-based popularity rank of a partner (1 = most popular)."""
        return self._popularity_rank.get(partner.name, self.total_partners)

    # -- pricing -------------------------------------------------------------
    def price_multiplier(self, partner: DemandPartner, size: AdSlotSize, facet: HBFacet) -> float:
        return self.pricing.combined_multiplier(
            size,
            facet,
            popularity_rank=self.popularity_rank(partner),
            total_partners=self.total_partners,
            vanilla_profile=self.vanilla_profile,
        )

    # -- partner behaviour ----------------------------------------------------
    def partner_response(
        self,
        rng: np.random.Generator,
        partner: DemandPartner,
        slot: AdSlot,
        facet: HBFacet,
        *,
        latency_scale: float = 1.0,
    ) -> PartnerResponse:
        """Ask one partner for one slot, applying the structural multipliers."""
        return partner.respond(
            rng,
            slot.code,
            slot.primary_size,
            latency_scale=latency_scale,
            size_multiplier=self.pricing.size_multiplier(slot.primary_size),
            facet_multiplier=(
                self.pricing.facet_multiplier(facet)
                * (self.pricing.vanilla_profile_multiplier if self.vanilla_profile else 1.0)
                * _popularity_multiplier(self.popularity_rank(partner), self.total_partners)
            ),
        )

    def sample_internal_bidders(
        self,
        rng: np.random.Generator,
        *,
        exclude: tuple[DemandPartner, ...] = (),
    ) -> list[DemandPartner]:
        """Pick the affiliated partners a server-side aggregator consults."""
        low, high = self.internal_auction_pool
        count = int(rng.integers(low, high + 1))
        candidates = [p for p in self.registry.partners if p not in exclude]
        if not candidates:
            return []
        weights = np.asarray([p.popularity_weight for p in candidates], dtype=float)
        weights = weights / weights.sum()
        count = min(count, len(candidates))
        chosen = rng.choice(len(candidates), size=count, replace=False, p=weights)
        return [candidates[int(i)] for i in np.atleast_1d(chosen)]

    def ad_server_latency(self, rng: np.random.Generator, *, latency_scale: float = 1.0) -> float:
        """One ad-server round trip in milliseconds."""
        mu = float(np.log(self.ad_server_latency_median_ms * latency_scale))
        return max(10.0, float(rng.lognormal(mean=mu, sigma=self.ad_server_latency_sigma)))


def _popularity_multiplier(rank: int, total: int) -> float:
    """Price attenuation by popularity (delegates to the pricing module)."""
    from repro.ecosystem.bidding import popularity_price_multiplier

    return popularity_price_multiplier(rank, total)
