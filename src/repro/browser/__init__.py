"""Simulated browser substrate.

The browser is the vantage point of the whole study: HBDetector only ever sees
what a browser extension can see — DOM events and web requests.  This package
provides a deterministic, instrumentable stand-in for Chrome: a simulated
clock, a DOM event bus, a web-request log, a page model and the page-load
engine that executes header-bidding wrappers.
"""

from repro.browser.clock import SimulatedClock
from repro.browser.dom import DomEventBus
from repro.browser.webrequest import WebRequestLog
from repro.browser.page import Page, build_page
from repro.browser.context import BrowserContext
from repro.browser.engine import BrowserEngine, PageLoadResult

__all__ = [
    "SimulatedClock",
    "DomEventBus",
    "WebRequestLog",
    "Page",
    "build_page",
    "BrowserContext",
    "BrowserEngine",
    "PageLoadResult",
]
