"""Web-request log.

The second observation channel of HBDetector is the browser's web-request
interface (``chrome.webRequest`` in the real extension): every outgoing
request and incoming response a page triggers, with URL, method and
parameters, but without the ability to modify them.  The log below records
both directions with simulated timestamps.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.browser.clock import SimulatedClock
from repro.models import RequestDirection, WebRequest
from repro.utils.urls import build_url, parse_query

__all__ = ["WebRequestLog"]


class WebRequestLog:
    """Ordered, append-only record of page network activity."""

    __slots__ = ("_clock", "_requests")

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._requests: list[WebRequest] = []

    # -- recording -------------------------------------------------------------
    def record_outgoing(self, url: str, *, method: str = "GET",
                        params: Mapping[str, object] | None = None,
                        initiator: str = "", timestamp_ms: float | None = None) -> WebRequest:
        """Record a request leaving the browser.

        ``params`` holds POST body fields for bid requests; query-string
        parameters are parsed out of the URL automatically so the detector can
        treat both uniformly.
        """
        # Most simulated URLs carry no query string; skip the urlsplit walk
        # entirely for those (parse_query returns {} for them anyway).
        merged: dict[str, str] = parse_query(url) if "?" in url else {}
        if params:
            merged.update({key: str(value) for key, value in params.items()})
        request = WebRequest(
            url=url,
            method=method.upper(),
            direction=RequestDirection.OUTGOING,
            timestamp_ms=self._clock.now() if timestamp_ms is None else timestamp_ms,
            initiator=initiator,
            params=merged,
        )
        self._requests.append(request)
        return request

    def record_incoming(self, url: str, *, params: Mapping[str, object] | None = None,
                        status_code: int = 200, initiator: str = "",
                        timestamp_ms: float | None = None) -> WebRequest:
        """Record a response (or server push) arriving at the browser."""
        merged: dict[str, str] = parse_query(url) if "?" in url else {}
        if params:
            merged.update({key: str(value) for key, value in params.items()})
        request = WebRequest(
            url=url,
            method="RESPONSE",
            direction=RequestDirection.INCOMING,
            timestamp_ms=self._clock.now() if timestamp_ms is None else timestamp_ms,
            initiator=initiator,
            params=merged,
            status_code=status_code,
        )
        self._requests.append(request)
        return request

    def record_fetch(self, host: str, path: str, *, params: Mapping[str, object] | None = None,
                     method: str = "GET", initiator: str = "") -> WebRequest:
        """Convenience wrapper building the URL and recording it as outgoing."""
        return self.record_outgoing(build_url(host, path, params), method=method,
                                    initiator=initiator)

    # -- inspection -------------------------------------------------------------
    @property
    def requests(self) -> tuple[WebRequest, ...]:
        return tuple(self._requests)

    def outgoing(self) -> tuple[WebRequest, ...]:
        return tuple(r for r in self._requests if r.direction is RequestDirection.OUTGOING)

    def incoming(self) -> tuple[WebRequest, ...]:
        return tuple(r for r in self._requests if r.direction is RequestDirection.INCOMING)

    def to_hosts(self, domains: Iterable[str]) -> tuple[WebRequest, ...]:
        """Requests whose host matches any of the given domains."""
        domains = tuple(domains)
        return tuple(r for r in self._requests if r.matches_host(domains))

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[WebRequest]:
        return iter(self._requests)

    def clear(self) -> None:
        self._requests.clear()
