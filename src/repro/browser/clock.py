"""Simulated monotonic clock.

All timestamps in the simulation are milliseconds since navigation start of
the current page load.  Components never read wall-clock time; they advance
and query a shared :class:`SimulatedClock`, which keeps every run perfectly
reproducible and lets tests assert exact timings.
"""

from __future__ import annotations

__all__ = ["SimulatedClock"]


class SimulatedClock:
    """A monotonically non-decreasing millisecond clock."""

    __slots__ = ("_now_ms",)

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError("clock cannot start before zero")
        self._now_ms = float(start_ms)

    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Move time forward by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ValueError("the simulated clock cannot move backwards")
        self._now_ms += float(delta_ms)
        return self._now_ms

    def advance_to(self, timestamp_ms: float) -> float:
        """Move time forward to an absolute timestamp (no-op if in the past)."""
        if timestamp_ms > self._now_ms:
            self._now_ms = float(timestamp_ms)
        return self._now_ms

    def reset(self, start_ms: float = 0.0) -> None:
        """Reset the clock for a fresh navigation."""
        if start_ms < 0:
            raise ValueError("clock cannot reset before zero")
        self._now_ms = float(start_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedClock(now={self._now_ms:.1f}ms)"
