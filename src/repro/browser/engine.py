"""Page-load engine.

The engine is the simulated Chrome instance: given a publisher it fetches the
page, loads the header (which is where HB wrappers execute, before anything
else), runs the header-bidding auction or background waterfall activity, loads
the rest of the content and reports everything an extension-level observer
could have seen, bundled into a :class:`PageLoadResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.browser.context import BrowserContext
from repro.browser.page import Page, build_page
from repro.ecosystem.publishers import Publisher
from repro.errors import PageLoadTimeout
from repro.hb.auction import HeaderBiddingOutcome
from repro.hb.environment import AuctionEnvironment
from repro.hb.runner import run_header_bidding
from repro.hb.waterfall import (
    WaterfallOutcome,
    build_waterfall_chain,
    build_waterfall_chain_fast,
    default_waterfall_slot,
    run_waterfall,
)
from repro.models import DomEvent, PageTimings, WebRequest
from repro.utils.rng import derive_rng, fast_uniform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ecosystem.profiles import SiteProfile, SiteProfileTable

__all__ = ["PageLoadResult", "BrowserEngine"]


@dataclass(frozen=True, slots=True)
class PageLoadResult:
    """Everything observable (and the hidden ground truth) of one page load.

    ``dom_events`` and ``web_requests`` are the only fields HBDetector is
    allowed to read; ``hb_ground_truth`` and ``waterfall_ground_truth`` exist
    so that detection accuracy and analysis results can be validated.
    """

    url: str
    domain: str
    rank: int
    timings: PageTimings
    dom_events: tuple[DomEvent, ...]
    web_requests: tuple[WebRequest, ...]
    page_html: str
    hb_ground_truth: HeaderBiddingOutcome | None = None
    waterfall_ground_truth: tuple[WaterfallOutcome, ...] = ()
    timed_out: bool = False

    @property
    def page_load_ms(self) -> float:
        return self.timings.page_load_ms


class BrowserEngine:
    """Loads pages of the simulated Web with a clean state per navigation.

    Parameters
    ----------
    environment:
        The demand-side view used by the HB wrappers and the waterfall.
    seed:
        Base seed; every (domain, visit_index) pair derives its own stream.
    page_load_timeout_ms:
        The crawler's upper bound on a page load (the paper uses 60 s); pages
        exceeding it are reported with ``timed_out=True``.
    non_hb_ad_probability:
        Probability that a page without header bidding still serves ads
        through the traditional waterfall, producing background ad traffic.
    """

    def __init__(
        self,
        environment: AuctionEnvironment,
        *,
        seed: int = 2019,
        page_load_timeout_ms: float = 60_000.0,
        extra_dwell_ms: float = 5_000.0,
        non_hb_ad_probability: float = 0.55,
        profiles: "SiteProfileTable | None" = None,
    ) -> None:
        if page_load_timeout_ms <= 0:
            raise ValueError("page load timeout must be positive")
        if profiles is not None and profiles.seed != seed:
            raise ValueError(
                f"profile table was compiled for seed {profiles.seed}, engine uses {seed}"
            )
        self.environment = environment
        self.seed = seed
        self.page_load_timeout_ms = page_load_timeout_ms
        self.extra_dwell_ms = extra_dwell_ms
        self.non_hb_ad_probability = non_hb_ad_probability
        #: Precompiled per-site simulation inputs; ``None`` selects the slow
        #: reference path that re-derives everything per page.
        self.profiles = profiles
        # Per-engine scratch context, reused across page loads on the fast
        # path (reset per navigation); the slow path allocates per load.
        # Consequence: a profile-equipped engine serialises its loads — one
        # engine per worker thread (which is how the crawl backends use it),
        # never one engine shared by concurrent load() callers.
        self._scratch: BrowserContext | None = None

    # -- helpers ----------------------------------------------------------------
    def _load_baseline_resources(
        self, context: BrowserContext, page: Page, profile: "SiteProfile | None" = None
    ) -> None:
        """Record the page's ordinary (non-ad) resource fetches."""
        rng = context.rng
        requests = context.requests
        clock = context.clock
        if profile is not None:
            for url in profile.resource_urls:
                requests.record_outgoing(url, initiator=page.url)
                clock.advance(fast_uniform(rng, 5.0, 40.0))
        else:
            for host, path in page.baseline_resources:
                requests.record_fetch(host, path, initiator=page.url)
                clock.advance(float(rng.uniform(5.0, 40.0)))
        for script_url in page.header_script_urls:
            requests.record_outgoing(script_url, initiator=page.url)
            clock.advance(fast_uniform(rng, 3.0, 20.0))

    def _run_background_waterfall(
        self,
        context: BrowserContext,
        publisher: Publisher,
        profile: "SiteProfile | None" = None,
    ) -> tuple[WaterfallOutcome, ...]:
        """Ad activity on non-HB pages: the traditional waterfall, if any."""
        rng = context.rng
        if rng.random() > self.non_hb_ad_probability:
            return ()
        outcomes = []
        n_slots = int(rng.integers(1, 4))
        site_wf = profile.waterfall if profile is not None else None
        if site_wf is not None:
            chain = build_waterfall_chain_fast(site_wf, rng)
        else:
            chain = build_waterfall_chain(self.environment.registry, rng)
        for index in range(n_slots):
            slot = default_waterfall_slot(rng, code=f"wf-{publisher.domain}-{index}")
            outcome = run_waterfall(
                slot,
                chain,
                self.environment,
                rng,
                context=context,
                page_url=publisher.url,
                latency_scale=publisher.latency_scale,
                compiled=site_wf.profiles if site_wf is not None else None,
            )
            outcomes.append(outcome)
            context.clock.advance(outcome.total_latency_ms * 0.25)
        return tuple(outcomes)

    # -- main entry point ---------------------------------------------------------
    def load(self, publisher: Publisher, *, visit_index: int = 0) -> PageLoadResult:
        """Load one publisher page with a clean-slate browser instance."""
        rng = derive_rng(self.seed, "visit", publisher.domain, visit_index)
        profile: "SiteProfile | None" = None
        if self.profiles is not None:
            profile = self.profiles.profile_for(publisher)
            if self._scratch is None:
                self._scratch = BrowserContext.clean_slate(rng)
            context = self._scratch.fresh_navigation(rng)
            page = profile.page
        else:
            context = BrowserContext.clean_slate(rng)
            page = build_page(publisher, seed=self.seed)

        navigation_start = context.clock.now()
        context.requests.record_outgoing(page.url, initiator="")
        context.clock.advance(page.html_fetch_ms)
        header_parsed = context.clock.now()

        hb_outcome: HeaderBiddingOutcome | None = None
        waterfall_outcomes: tuple[WaterfallOutcome, ...] = ()
        if publisher.uses_hb:
            hb_outcome = run_header_bidding(publisher, context, self.environment, profile=profile)
        else:
            waterfall_outcomes = self._run_background_waterfall(context, publisher, profile)

        self._load_baseline_resources(context, page, profile)
        context.clock.advance(page.content_load_ms)
        dom_content_loaded = header_parsed + page.content_load_ms * 0.6
        load_event = context.clock.now()
        context.clock.advance(self.extra_dwell_ms)

        timed_out = load_event - navigation_start > self.page_load_timeout_ms
        timings = PageTimings(
            navigation_start_ms=navigation_start,
            header_parsed_ms=header_parsed,
            dom_content_loaded_ms=max(header_parsed, min(dom_content_loaded, load_event)),
            load_event_ms=load_event,
        )
        return PageLoadResult(
            url=page.url,
            domain=publisher.domain,
            rank=publisher.rank,
            timings=timings,
            dom_events=context.dom.events,
            web_requests=context.requests.requests,
            page_html=page.html,
            hb_ground_truth=hb_outcome,
            waterfall_ground_truth=waterfall_outcomes,
            timed_out=timed_out,
        )
