"""Page model: the HTML document the browser renders for one publisher.

Only the parts of a page that matter for header-bidding detection are
modelled: the header script tags (which wrapper library, which partner tags),
the ad-slot container elements, and enough non-ad content that page-load time
is dominated by ordinary resources, as on the real Web.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.ecosystem.publishers import Publisher
from repro.models import WrapperKind
from repro.utils.rng import derive_rng

__all__ = ["Page", "build_page", "WRAPPER_SCRIPT_URLS"]


#: Canonical CDN URLs for the wrapper libraries (what a <script src> points at).
WRAPPER_SCRIPT_URLS: dict[WrapperKind, str] = {
    WrapperKind.PREBID: "https://cdn.jsdelivr.net/npm/prebid.js@2.44/dist/prebid.js",
    WrapperKind.GPT: "https://www.googletagservices.com/tag/js/gpt.js",
    WrapperKind.PUBFOOD: "https://cdn.example/pubfood/pubfood.min.js",
    WrapperKind.CUSTOM: "https://static.example/js/hb-wrapper.min.js",
}

#: Ordinary third-party resources that non-advertising pages also load; they
#: give the detector realistic background traffic to ignore.
_BASELINE_RESOURCES: tuple[tuple[str, str], ...] = (
    ("www.google-analytics.com", "/analytics.js"),
    ("cdn.jsdelivr.net", "/npm/jquery@3/dist/jquery.min.js"),
    ("fonts.googleapis.com", "/css2"),
    ("cdn.example", "/site/main.css"),
    ("cdn.example", "/site/app.js"),
    ("images.example", "/hero.jpg"),
)


@dataclass(frozen=True, slots=True)
class Page:
    """A renderable page for one publisher."""

    publisher: Publisher
    html: str
    header_script_urls: tuple[str, ...]
    baseline_resources: tuple[tuple[str, str], ...]
    #: Time to fetch and parse the main HTML document, in milliseconds.
    html_fetch_ms: float
    #: Time spent loading non-ad resources after the header, in milliseconds.
    content_load_ms: float

    @property
    def url(self) -> str:
        return self.publisher.url

    @property
    def domain(self) -> str:
        return self.publisher.domain


def _render_html(publisher: Publisher, header_scripts: Sequence[str]) -> str:
    script_tags = "\n    ".join(f'<script async src="{src}"></script>' for src in header_scripts)
    slot_divs = "\n    ".join(
        f'<div id="{slot.code}" class="ad-slot" data-sizes="{",".join(slot.accepted_labels)}"></div>'
        for slot in publisher.slots
    )
    return (
        "<!DOCTYPE html>\n"
        "<html lang=\"en\">\n"
        "  <head>\n"
        f"    <title>{publisher.domain}</title>\n"
        f"    {script_tags}\n"
        "  </head>\n"
        "  <body>\n"
        f"    {slot_divs}\n"
        "    <main id=\"content\">Front page content.</main>\n"
        "  </body>\n"
        "</html>\n"
    )


def build_page(publisher: Publisher, *, seed: int = 2019) -> Page:
    """Construct the page served by a publisher, with realistic load costs.

    The HTML fetch and content load times are drawn from log-normal models so
    that overall page-load time sits in the multi-second range reported by
    industry measurements, independently of (and additively to) any HB delay.
    """
    rng = derive_rng(seed, "page", publisher.domain)

    header_scripts: list[str] = []
    if publisher.uses_hb:
        assert publisher.wrapper is not None
        header_scripts.append(WRAPPER_SCRIPT_URLS[publisher.wrapper])
        # Partner-specific adapter or tag scripts also commonly sit in the head.
        for partner in publisher.partners[:3]:
            header_scripts.append(f"https://{partner.primary_domain}/tag/adapter.js")
    elif rng.random() < 0.35:
        # Non-HB pages often still carry ordinary ad or analytics tags.
        header_scripts.append("https://pagead2.googlesyndication.com/pagead/js/adsbygoogle.js")

    html_fetch_ms = float(np.clip(rng.lognormal(mean=np.log(220), sigma=0.45), 60, 3_000))
    content_load_ms = float(np.clip(rng.lognormal(mean=np.log(2_400), sigma=0.55), 400, 30_000))

    n_resources = int(rng.integers(3, len(_BASELINE_RESOURCES) + 1))
    resources = _BASELINE_RESOURCES[:n_resources]

    return Page(
        publisher=publisher,
        html=_render_html(publisher, header_scripts),
        header_script_urls=tuple(header_scripts),
        baseline_resources=resources,
        html_fetch_ms=html_fetch_ms,
        content_load_ms=content_load_ms,
    )
