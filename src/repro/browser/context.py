"""Browser context: the per-navigation bundle of clock, buses and identifiers.

A fresh context corresponds to the paper's "clean slate instance" — no state
carries over between page visits (no cookies, no history, no profile), which
is how the crawler keeps every measurement independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.browser.clock import SimulatedClock
from repro.browser.dom import DomEventBus
from repro.browser.webrequest import WebRequestLog
from repro.utils.ids import IdFactory

__all__ = ["BrowserContext"]


@dataclass(slots=True)
class BrowserContext:
    """Everything a page load needs to record its observable behaviour."""

    rng: np.random.Generator
    clock: SimulatedClock = field(default_factory=SimulatedClock)
    dom: DomEventBus = field(init=False)
    requests: WebRequestLog = field(init=False)
    ids: IdFactory = field(default_factory=IdFactory)

    def __post_init__(self) -> None:
        self.dom = DomEventBus(self.clock)
        self.requests = WebRequestLog(self.clock)

    @classmethod
    def clean_slate(cls, rng: np.random.Generator) -> "BrowserContext":
        """A brand new context with zeroed clock and empty logs."""
        return cls(rng=rng)

    def reset(self) -> None:
        """Wipe all recorded state, as if a new browser instance was started."""
        self.clock.reset()
        self.dom.clear()
        self.requests.clear()
        self.ids.reset()

    def fresh_navigation(self, rng: np.random.Generator) -> "BrowserContext":
        """Reuse this context for a brand new clean-slate page load.

        Observationally identical to :meth:`clean_slate` — clock at zero,
        empty logs, no listeners, fresh id counters — but without
        re-allocating the context, clock, buses and id factory.  This is the
        fast path's per-worker scratch buffer: the underlying event/request
        lists are cleared, not re-created, so steady-state page loads churn
        no per-page infrastructure objects.
        """
        self.rng = rng
        self.clock.reset()
        self.dom.reset()
        self.requests.clear()
        self.ids.reset()
        return self
