"""DOM event bus.

Header-bidding wrappers announce the progress of their auctions through DOM
events (``auctionInit``, ``bidResponse``, ``auctionEnd``, ``bidWon``,
``slotRenderEnded``, ...).  The bus below is the simulated counterpart of the
document's event target: wrappers *emit* events, and observers — the content
script HBDetector injects — *subscribe* to them without being able to alter
the page.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.browser.clock import SimulatedClock
from repro.models import DomEvent

__all__ = ["DomEventBus"]

Listener = Callable[[DomEvent], None]


class DomEventBus:
    """Ordered log of DOM events with passive subscription support."""

    __slots__ = ("_clock", "_events", "_listeners", "_wildcard_listeners")

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._events: list[DomEvent] = []
        self._listeners: dict[str, list[Listener]] = {}
        self._wildcard_listeners: list[Listener] = []

    # -- emission ------------------------------------------------------------
    def emit(self, name: str, payload: Mapping[str, object] | None = None,
             *, timestamp_ms: float | None = None) -> DomEvent:
        """Fire an event at the current simulated time (or an explicit one)."""
        event = DomEvent(
            name=name,
            timestamp_ms=self._clock.now() if timestamp_ms is None else timestamp_ms,
            payload=dict(payload or {}),
        )
        self._events.append(event)
        for listener in self._listeners.get(name, []):
            listener(event)
        for listener in self._wildcard_listeners:
            listener(event)
        return event

    # -- subscription ---------------------------------------------------------
    def add_listener(self, name: str, listener: Listener) -> None:
        """Subscribe to a specific event name (mirrors ``addEventListener``)."""
        self._listeners.setdefault(name, []).append(listener)

    def add_wildcard_listener(self, listener: Listener) -> None:
        """Subscribe to every event regardless of its name."""
        self._wildcard_listeners.append(listener)

    def remove_listener(self, name: str, listener: Listener) -> None:
        listeners = self._listeners.get(name, [])
        if listener in listeners:
            listeners.remove(listener)

    # -- inspection ------------------------------------------------------------
    @property
    def events(self) -> tuple[DomEvent, ...]:
        """All events emitted so far, in emission order."""
        return tuple(self._events)

    def events_named(self, *names: str) -> tuple[DomEvent, ...]:
        wanted = set(names)
        return tuple(event for event in self._events if event.name in wanted)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[DomEvent]:
        return iter(self._events)

    def clear(self) -> None:
        """Drop recorded events (a fresh navigation in the same tab)."""
        self._events.clear()

    def reset(self) -> None:
        """Forget events *and* listeners, as if a new browser was started."""
        self._events.clear()
        self._listeners.clear()
        self._wildcard_listeners.clear()
