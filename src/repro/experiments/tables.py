"""One entry point per paper table and per headline text result.

The paper has a single numbered table (Table 1, the crawl summary) plus
several headline numbers quoted in the text (§3.2 adoption by rank tier,
§4.1 detector accuracy).  Each gets a function here so the benchmark harness
can regenerate and print it.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis import adoption
from repro.analysis.reporting import format_summary, format_table
from repro.experiments.runner import ExperimentArtifacts

__all__ = ["table1_summary", "adoption_by_rank", "detector_accuracy"]


def table1_summary(artifacts: ExperimentArtifacts) -> dict:
    """Table 1: summary of the data collected by the crawl."""
    summary = artifacts.dataset.summary()
    rows = [
        ("# of websites crawled", summary["websites_crawled"]),
        ("# of websites with HB", summary["websites_with_hb"]),
        ("# of auctions detected", summary["auctions_detected"]),
        ("# of bids detected", summary["bids_detected"]),
        ("# of competing Demand Partners", summary["competing_demand_partners"]),
        ("# crawl days", summary["crawl_days"]),
        ("HB adoption rate", f"{summary['adoption_rate'] * 100:.2f}%"),
    ]
    text = format_table(["data", "volume"], rows, title="Table 1 — Crawl summary")
    return {"summary": summary, "text": text}


def adoption_by_rank(artifacts: ExperimentArtifacts) -> dict:
    """§3.2: adoption rate per rank tier (top 5k / 5k-15k / rest)."""
    tiers = adoption.adoption_by_rank_tier(artifacts.dataset)
    overall = adoption.adoption_summary(artifacts.dataset)["overall"]
    text = format_table(
        ["rank tier", "sites", "HB sites", "adoption"],
        [
            (tier.tier_label, tier.sites, tier.hb_sites, f"{tier.adoption_rate * 100:.1f}%")
            for tier in tiers
        ]
        + [("overall", int(sum(t.sites for t in tiers)), int(sum(t.hb_sites for t in tiers)),
            f"{overall * 100:.1f}%")],
        title="HB adoption by rank tier",
    )
    return {"tiers": tiers, "overall": overall, "text": text}


def detector_accuracy(artifacts: ExperimentArtifacts) -> dict:
    """§4.1: HBDetector precision/recall against the simulation's ground truth.

    The paper argues for 100% precision and high (but not perfect) recall; the
    reproduction can measure both exactly because it owns the ground truth.
    """
    population = artifacts.population
    truth = {publisher.domain: publisher.uses_hb for publisher in population}
    facet_truth = {publisher.domain: publisher.facet for publisher in population}

    tp = fp = fn = tn = 0
    facet_correct = 0
    facet_total = 0
    for detection in artifacts.dataset.sites():
        actual = truth.get(detection.domain, False)
        if detection.hb_detected and actual:
            tp += 1
            facet_total += 1
            if detection.facet == facet_truth.get(detection.domain):
                facet_correct += 1
        elif detection.hb_detected and not actual:
            fp += 1
        elif not detection.hb_detected and actual:
            fn += 1
        else:
            tn += 1
    precision = tp / (tp + fp) if (tp + fp) else 1.0
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    facet_accuracy = facet_correct / facet_total if facet_total else 1.0
    metrics = {
        "true_positives": tp,
        "false_positives": fp,
        "false_negatives": fn,
        "true_negatives": tn,
        "precision": precision,
        "recall": recall,
        "facet_accuracy": facet_accuracy,
    }
    text = format_summary(
        {
            **{key: value for key, value in metrics.items() if isinstance(value, int)},
            "precision": f"{precision * 100:.2f}%",
            "recall": f"{recall * 100:.2f}%",
            "facet_accuracy": f"{facet_accuracy * 100:.2f}%",
        },
        title="HBDetector accuracy vs. ground truth",
    )
    return {"metrics": metrics, "text": text}
