"""One entry point per paper table — thin bindings over the metric registry.

The paper has a single numbered table (Table 1, the crawl summary) plus
several headline results quoted in the text (§3.2 adoption by rank tier,
§4.1 detector accuracy).  Each resolves through
:mod:`repro.analysis.registry`; the computations live with the analysis
modules that register them.
"""

from __future__ import annotations

from repro.analysis.context import AnalysisContext
from repro.analysis.registry import compute_metric
from repro.experiments.runner import ExperimentArtifacts

__all__ = ["table1_summary", "adoption_by_rank", "detector_accuracy"]


def table1_summary(artifacts: ExperimentArtifacts) -> dict:
    """Table 1: summary of the data collected by the crawl."""
    return compute_metric("table1", AnalysisContext.from_artifacts(artifacts)).as_dict()


def adoption_by_rank(artifacts: ExperimentArtifacts) -> dict:
    """§3.2: adoption rate per rank tier (top 5k / 5k-15k / rest)."""
    return compute_metric("adoption", AnalysisContext.from_artifacts(artifacts)).as_dict()


def detector_accuracy(artifacts: ExperimentArtifacts) -> dict:
    """§4.1: HBDetector precision/recall against the simulation's ground truth."""
    return compute_metric("accuracy", AnalysisContext.from_artifacts(artifacts)).as_dict()
