"""One entry point per paper figure.

Each function takes :class:`~repro.experiments.runner.ExperimentArtifacts`
(and sometimes extra parameters), runs the corresponding analysis, and returns
plain data plus a formatted text block.  The benchmark harness calls these to
regenerate every figure; the examples print them.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis import (
    adoption,
    adslots,
    comparison,
    late_bids,
    latency,
    partners,
    prices,
    facets as facet_analysis,
)
from repro.analysis.reporting import (
    format_ecdf,
    format_share_rows,
    format_summary,
    format_table,
    format_whisker_rows,
)
from repro.crawler.historical import HistoricalAdoption
from repro.experiments.runner import ExperimentArtifacts
from repro.models import HBFacet

__all__ = [
    "figure04_adoption_history",
    "figure08_top_partners",
    "figure09_partners_per_site",
    "figure10_partner_combinations",
    "figure11_partners_per_facet",
    "figure12_latency_ecdf",
    "figure13_latency_vs_rank",
    "figure14_partner_latency",
    "figure15_latency_vs_partner_count",
    "figure16_latency_vs_popularity",
    "figure17_late_bids_ecdf",
    "figure18_late_bids_per_partner",
    "figure19_adslots_ecdf",
    "figure20_latency_vs_adslots",
    "figure21_adslot_sizes",
    "figure22_price_cdf",
    "figure23_price_per_size",
    "figure24_price_vs_popularity",
    "facet_breakdown_result",
    "waterfall_latency_comparison",
    "waterfall_price_comparison",
]


def figure04_adoption_history(historical: HistoricalAdoption) -> dict:
    """Figure 4: HB adoption per year on the yearly top-1k lists."""
    rows = adoption.historical_adoption_rows(historical)
    text = format_table(
        ["year", "sites", "detected HB", "adoption", "precision", "recall"],
        [
            (int(row["year"]), int(row["sites"]), int(row["detected_hb"]),
             f"{row['adoption_rate'] * 100:.1f}%", f"{row['precision'] * 100:.1f}%",
             f"{row['recall'] * 100:.1f}%")
            for row in rows
        ],
        title="Figure 4 — HB adoption by year (static analysis of archived snapshots)",
    )
    return {"rows": rows, "text": text}


def figure08_top_partners(artifacts: ExperimentArtifacts, *, top_n: int = 11) -> dict:
    """Figure 8: top demand partners by share of HB websites."""
    rows = partners.partner_popularity(artifacts.dataset, top_n=top_n)
    text = format_share_rows(
        [(row.partner, row.share_of_hb_sites) for row in rows],
        label_header="demand partner",
        title="Figure 8 — Top demand partners (share of HB websites)",
    )
    return {"rows": rows, "text": text}


def figure09_partners_per_site(artifacts: ExperimentArtifacts) -> dict:
    """Figure 9: ECDF of demand partners per HB website."""
    curve = partners.partners_per_site_ecdf(artifacts.dataset)
    share_one = curve.fraction_at_most(1.0)
    share_five_plus = curve.fraction_above(4.0)
    share_ten_plus = curve.fraction_above(9.0)
    text = format_ecdf(curve, unit="partners",
                       title="Figure 9 — Demand partners per HB website (ECDF)")
    return {
        "ecdf": curve,
        "share_one_partner": share_one,
        "share_five_or_more": share_five_plus,
        "share_ten_or_more": share_ten_plus,
        "text": text,
    }


def figure10_partner_combinations(artifacts: ExperimentArtifacts, *, top_n: int = 15) -> dict:
    """Figure 10: most frequent demand-partner combinations."""
    rows = partners.partner_combinations(artifacts.dataset, top_n=top_n)
    text = format_share_rows(
        [(" + ".join(combo), share) for combo, share in rows],
        label_header="combination",
        title="Figure 10 — Most frequent partner combinations",
    )
    return {"rows": rows, "text": text}


def figure11_partners_per_facet(artifacts: ExperimentArtifacts, *, top_n: int = 10) -> dict:
    """Figure 11: top partners per HB facet by share of bids."""
    per_facet = partners.partners_per_facet(artifacts.dataset, top_n=top_n)
    blocks = []
    for facet in HBFacet:
        rows = per_facet.get(facet, [])
        if rows:
            blocks.append(format_share_rows(rows, label_header=f"{facet.value} partner"))
    return {"per_facet": per_facet, "text": "\n\n".join(blocks)}


def figure12_latency_ecdf(artifacts: ExperimentArtifacts) -> dict:
    """Figure 12: ECDF of total HB latency per page visit."""
    curve = latency.total_latency_ecdf(artifacts.dataset)
    text = format_ecdf(curve, unit="ms", title="Figure 12 — Total HB latency (ECDF)")
    return {
        "ecdf": curve,
        "median_ms": curve.median,
        "share_above_1s": curve.fraction_above(1_000.0),
        "share_above_3s": curve.fraction_above(3_000.0),
        "text": text,
    }


def figure13_latency_vs_rank(artifacts: ExperimentArtifacts, *, bin_size: int | None = None) -> dict:
    """Figure 13: HB latency versus site popularity rank."""
    if bin_size is None:
        # The paper bins 5k HB sites out of 35k into bins of 500; scale the bin
        # width with the simulated population so each bin keeps enough sites.
        bin_size = max(50, artifacts.config.total_sites // 70)
    rows = latency.latency_by_rank_bin(artifacts.dataset, bin_size=bin_size)
    text = format_whisker_rows(rows, label_header="rank bin", unit="ms",
                               title="Figure 13 — HB latency vs. site rank")
    return {"rows": rows, "bin_size": bin_size, "text": text}


def figure14_partner_latency(artifacts: ExperimentArtifacts, *, top_n: int = 10) -> dict:
    """Figure 14: fastest, top-market-share and slowest partners by latency."""
    fastest = latency.fastest_partners(artifacts.dataset, top_n=top_n)
    slowest = latency.slowest_partners(artifacts.dataset, top_n=top_n)
    profiles = latency.partner_latency_profiles(artifacts.dataset)
    top_market = profiles[:top_n]
    text = "\n\n".join(
        [
            format_whisker_rows([(p.partner, p.stats) for p in fastest],
                                label_header="fastest partner", unit="ms"),
            format_whisker_rows([(p.partner, p.stats) for p in top_market],
                                label_header="top market-share partner", unit="ms"),
            format_whisker_rows([(p.partner, p.stats) for p in slowest],
                                label_header="slowest partner", unit="ms"),
        ]
    )
    return {"fastest": fastest, "top_market": top_market, "slowest": slowest, "text": text}


def figure15_latency_vs_partner_count(artifacts: ExperimentArtifacts) -> dict:
    """Figure 15: HB latency and share of sites vs. number of partners."""
    rows = latency.latency_by_partner_count(artifacts.dataset)
    text = format_table(
        ["#partners", "median (ms)", "p95 (ms)", "share of sites"],
        [
            (count, round(stats.median, 1), round(stats.p95, 1), f"{share * 100:.1f}%")
            for count, stats, share in rows
        ],
        title="Figure 15 — HB latency vs. number of demand partners",
    )
    return {"rows": rows, "text": text}


def figure16_latency_vs_popularity(artifacts: ExperimentArtifacts, *, bin_size: int = 10) -> dict:
    """Figure 16: partner latency variability vs. popularity rank."""
    rows = latency.latency_by_popularity_rank(artifacts.dataset, bin_size=bin_size)
    text = format_whisker_rows(rows, label_header="popularity rank bin", unit="ms",
                               title="Figure 16 — Partner latency vs. popularity rank")
    return {"rows": rows, "text": text}


def figure17_late_bids_ecdf(artifacts: ExperimentArtifacts) -> dict:
    """Figure 17: ECDF of the share of late bids per auction."""
    curve = late_bids.late_bid_ecdf(artifacts.dataset)
    summary = late_bids.late_bid_share_distribution(artifacts.dataset)
    text = format_ecdf(curve, unit="% late",
                       title="Figure 17 — Late bids per auction (ECDF, % of bids)")
    return {"ecdf": curve, "median_late_share": curve.median, "summary": summary, "text": text}


def figure18_late_bids_per_partner(artifacts: ExperimentArtifacts, *, top_n: int = 25) -> dict:
    """Figure 18: share of late bids per demand partner."""
    rows = late_bids.late_bids_per_partner(artifacts.dataset)
    partners_half_late = sum(1 for row in rows if row.late_share >= 0.5)
    text = format_table(
        ["partner", "bids", "late bids", "late share"],
        [(row.partner, row.bids, row.late_bids, f"{row.late_share * 100:.1f}%") for row in rows[:top_n]],
        title="Figure 18 — Late bids per demand partner",
    )
    return {"rows": rows, "partners_half_late": partners_half_late, "text": text}


def figure19_adslots_ecdf(artifacts: ExperimentArtifacts) -> dict:
    """Figure 19: auctioned ad-slots per website, per facet."""
    curves = adslots.adslots_per_site_ecdf(artifacts.dataset)
    blocks = [
        format_ecdf(curve, unit="slots", title=f"Figure 19 — Auctioned ad-slots ({facet.value})")
        for facet, curve in curves.items()
    ]
    medians = {facet: curve.median for facet, curve in curves.items()}
    return {"ecdfs": curves, "medians": medians, "text": "\n\n".join(blocks)}


def figure20_latency_vs_adslots(artifacts: ExperimentArtifacts) -> dict:
    """Figure 20: HB latency as a function of the number of auctioned slots."""
    rows = adslots.latency_by_adslot_count(artifacts.dataset)
    text = format_whisker_rows(rows, label_header="#auctioned slots", unit="ms",
                               title="Figure 20 — HB latency vs. auctioned ad-slots")
    return {"rows": rows, "text": text}


def figure21_adslot_sizes(artifacts: ExperimentArtifacts, *, top_n: int = 10) -> dict:
    """Figure 21: most popular creative sizes per facet."""
    shares = adslots.adslot_size_shares(artifacts.dataset, top_n=top_n)
    blocks = [
        format_share_rows(rows, label_header=f"{facet.value} size")
        for facet, rows in shares.items()
        if rows
    ]
    return {"shares": shares, "text": "\n\n".join(blocks)}


def figure22_price_cdf(artifacts: ExperimentArtifacts) -> dict:
    """Figure 22: CDF of bid prices per facet."""
    curves = prices.price_ecdf_by_facet(artifacts.dataset)
    blocks = [
        format_ecdf(curve, unit="CPM", title=f"Figure 22 — Bid prices ({facet.value})")
        for facet, curve in curves.items()
    ]
    medians = {facet: curve.median for facet, curve in curves.items()}
    return {"ecdfs": curves, "medians": medians, "text": "\n\n".join(blocks)}


def figure23_price_per_size(artifacts: ExperimentArtifacts) -> dict:
    """Figure 23: bid price distribution per creative size."""
    rows = prices.price_by_size(artifacts.dataset)
    text = format_whisker_rows(rows, label_header="ad-slot size", unit="CPM",
                               title="Figure 23 — Bid price per ad-slot size")
    return {"rows": rows, "text": text}


def figure24_price_vs_popularity(artifacts: ExperimentArtifacts, *, bin_size: int = 10) -> dict:
    """Figure 24: bid prices vs. the bidding partner's popularity rank."""
    rows = prices.price_by_popularity_rank(artifacts.dataset, bin_size=bin_size)
    text = format_whisker_rows(rows, label_header="popularity rank bin", unit="CPM",
                               title="Figure 24 — Bid price vs. partner popularity")
    return {"rows": rows, "text": text}


def facet_breakdown_result(artifacts: ExperimentArtifacts) -> dict:
    """§4.6: share of HB sites per facet."""
    breakdown = facet_analysis.facet_breakdown(artifacts.dataset)
    text = format_share_rows(
        [(facet.value, share) for facet, share in breakdown.items()],
        label_header="HB facet",
        title="Facet breakdown (share of HB sites)",
    )
    return {"breakdown": breakdown, "text": text}


def waterfall_latency_comparison(artifacts: ExperimentArtifacts) -> dict:
    """§1 / §7.2: HB latency versus the waterfall baseline."""
    result = comparison.hb_vs_waterfall_latency(
        artifacts.dataset, list(artifacts.population), artifacts.environment,
        seed=artifacts.config.seed,
    )
    text = format_table(
        ["protocol", "median (ms)", "p95 (ms)"],
        [
            ("header bidding", round(result.hb.median, 1), round(result.hb.p95, 1)),
            ("waterfall", round(result.waterfall.median, 1), round(result.waterfall.p95, 1)),
            ("HB / waterfall ratio", round(result.median_ratio, 2), round(result.p90_ratio, 2)),
        ],
        title="HB vs. waterfall latency",
    )
    return {"comparison": result, "text": text}


def waterfall_price_comparison(artifacts: ExperimentArtifacts) -> dict:
    """§5.4: HB baseline prices versus waterfall RTB prices."""
    result = comparison.hb_vs_waterfall_prices(
        artifacts.dataset, list(artifacts.population), artifacts.environment,
        seed=artifacts.config.seed,
    )
    text = format_table(
        ["channel", "median CPM", "p75 CPM"],
        [
            ("HB (vanilla profile)", round(result.hb.median, 4), round(result.hb.p75, 4)),
            ("waterfall RTB (real users)", round(result.waterfall_real_user.median, 4),
             round(result.waterfall_real_user.p75, 4)),
            ("waterfall RTB (vanilla)", round(result.waterfall_vanilla.median, 4),
             round(result.waterfall_vanilla.p75, 4)),
        ],
        title="HB vs. waterfall prices",
    )
    return {"comparison": result, "text": text}
