"""One entry point per paper figure — thin bindings over the metric registry.

Each function resolves its figure through
:mod:`repro.analysis.registry` and returns the legacy dict shape (plain data
plus a formatted ``"text"`` block), so the benchmark harness and the examples
keep working unchanged.  The figure computations and their rendering live
with the analysis modules that register them; adding a figure is a single
:func:`~repro.analysis.registry.register_metric` call there, and it appears
here, in the CLI and in ``repro analyze`` automatically.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.context import AnalysisContext
from repro.analysis.registry import compute_metric
from repro.crawler.historical import HistoricalAdoption
from repro.experiments.runner import ExperimentArtifacts

__all__ = [
    "figure04_adoption_history",
    "figure08_top_partners",
    "figure09_partners_per_site",
    "figure10_partner_combinations",
    "figure11_partners_per_facet",
    "figure12_latency_ecdf",
    "figure13_latency_vs_rank",
    "figure14_partner_latency",
    "figure15_latency_vs_partner_count",
    "figure16_latency_vs_popularity",
    "figure17_late_bids_ecdf",
    "figure18_late_bids_per_partner",
    "figure19_adslots_ecdf",
    "figure20_latency_vs_adslots",
    "figure21_adslot_sizes",
    "figure22_price_cdf",
    "figure23_price_per_size",
    "figure24_price_vs_popularity",
    "facet_breakdown_result",
    "waterfall_latency_comparison",
    "waterfall_price_comparison",
]


def _compute(name: str, artifacts: ExperimentArtifacts, **params: Any) -> dict:
    result = compute_metric(name, AnalysisContext.from_artifacts(artifacts), **params)
    return result.as_dict()


def figure04_adoption_history(historical: HistoricalAdoption) -> dict:
    """Figure 4: HB adoption per year on the yearly top-1k lists."""
    return compute_metric("fig04", AnalysisContext(historical=historical)).as_dict()


def figure08_top_partners(artifacts: ExperimentArtifacts, *, top_n: int = 11) -> dict:
    """Figure 8: top demand partners by share of HB websites."""
    return _compute("fig08", artifacts, top_n=top_n)


def figure09_partners_per_site(artifacts: ExperimentArtifacts) -> dict:
    """Figure 9: ECDF of demand partners per HB website."""
    return _compute("fig09", artifacts)


def figure10_partner_combinations(artifacts: ExperimentArtifacts, *, top_n: int = 15) -> dict:
    """Figure 10: most frequent demand-partner combinations."""
    return _compute("fig10", artifacts, top_n=top_n)


def figure11_partners_per_facet(artifacts: ExperimentArtifacts, *, top_n: int = 10) -> dict:
    """Figure 11: top partners per HB facet by share of bids."""
    return _compute("fig11", artifacts, top_n=top_n)


def figure12_latency_ecdf(artifacts: ExperimentArtifacts) -> dict:
    """Figure 12: ECDF of total HB latency per page visit."""
    return _compute("fig12", artifacts)


def figure13_latency_vs_rank(artifacts: ExperimentArtifacts, *, bin_size: int | None = None) -> dict:
    """Figure 13: HB latency versus site popularity rank."""
    return _compute("fig13", artifacts, bin_size=bin_size)


def figure14_partner_latency(artifacts: ExperimentArtifacts, *, top_n: int = 10) -> dict:
    """Figure 14: fastest, top-market-share and slowest partners by latency."""
    return _compute("fig14", artifacts, top_n=top_n)


def figure15_latency_vs_partner_count(artifacts: ExperimentArtifacts) -> dict:
    """Figure 15: HB latency and share of sites vs. number of partners."""
    return _compute("fig15", artifacts)


def figure16_latency_vs_popularity(artifacts: ExperimentArtifacts, *, bin_size: int = 10) -> dict:
    """Figure 16: partner latency variability vs. popularity rank."""
    return _compute("fig16", artifacts, bin_size=bin_size)


def figure17_late_bids_ecdf(artifacts: ExperimentArtifacts) -> dict:
    """Figure 17: ECDF of the share of late bids per auction."""
    return _compute("fig17", artifacts)


def figure18_late_bids_per_partner(artifacts: ExperimentArtifacts, *, top_n: int = 25) -> dict:
    """Figure 18: share of late bids per demand partner."""
    return _compute("fig18", artifacts, top_n=top_n)


def figure19_adslots_ecdf(artifacts: ExperimentArtifacts) -> dict:
    """Figure 19: auctioned ad-slots per website, per facet."""
    return _compute("fig19", artifacts)


def figure20_latency_vs_adslots(artifacts: ExperimentArtifacts) -> dict:
    """Figure 20: HB latency as a function of the number of auctioned slots."""
    return _compute("fig20", artifacts)


def figure21_adslot_sizes(artifacts: ExperimentArtifacts, *, top_n: int = 10) -> dict:
    """Figure 21: most popular creative sizes per facet."""
    return _compute("fig21", artifacts, top_n=top_n)


def figure22_price_cdf(artifacts: ExperimentArtifacts) -> dict:
    """Figure 22: CDF of bid prices per facet."""
    return _compute("fig22", artifacts)


def figure23_price_per_size(artifacts: ExperimentArtifacts) -> dict:
    """Figure 23: bid price distribution per creative size."""
    return _compute("fig23", artifacts)


def figure24_price_vs_popularity(artifacts: ExperimentArtifacts, *, bin_size: int = 10) -> dict:
    """Figure 24: bid prices vs. the bidding partner's popularity rank."""
    return _compute("fig24", artifacts, bin_size=bin_size)


def facet_breakdown_result(artifacts: ExperimentArtifacts) -> dict:
    """§4.6: share of HB sites per facet."""
    return _compute("facet", artifacts)


def waterfall_latency_comparison(artifacts: ExperimentArtifacts) -> dict:
    """§1 / §7.2: HB latency versus the waterfall baseline."""
    return _compute("waterfall", artifacts)


def waterfall_price_comparison(artifacts: ExperimentArtifacts) -> dict:
    """§5.4: HB baseline prices versus waterfall RTB prices."""
    return _compute("prices", artifacts)
