"""End-to-end experiments reproducing the paper's evaluation.

:mod:`repro.experiments.config` defines the experiment configuration (site
count, seed, crawl length), :mod:`repro.experiments.runner` runs the full
pipeline (generate Web → crawl → detect → dataset), and
:mod:`repro.experiments.figures` / :mod:`repro.experiments.tables` expose one
function per paper artefact that the benchmarks call.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner, ExperimentArtifacts

__all__ = ["ExperimentConfig", "ExperimentRunner", "ExperimentArtifacts"]
