"""Experiment configuration.

One :class:`ExperimentConfig` describes a complete measurement campaign: the
size of the simulated Web, the random seed, how many daily re-crawls to run,
the detector's partner-list coverage, and the historical study's parameters.
The paper-scale configuration (35k sites, 34 re-crawl days) is available as
:meth:`ExperimentConfig.paper_scale`; benchmarks and tests default to much
smaller populations with identical proportions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.crawler.crawler import CrawlConfig
from repro.crawler.storage import STORE_FORMATS, DetectionSink
from repro.ecosystem.publishers import PopulationConfig
from repro.errors import ConfigurationError

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one reproduction run."""

    #: Number of websites in the simulated Web (the paper crawls 35,000).
    total_sites: int = 3_000
    #: Base random seed for the whole pipeline.
    seed: int = 2019
    #: Number of daily re-crawls of the HB-enabled sites (the paper runs 34).
    recrawl_days: int = 2
    #: Fraction of the partner universe present on the detector's curated list.
    detector_coverage: float = 1.0
    #: Number of partners in the ecosystem (the paper observes 84).
    total_partners: int = 84
    #: Historical study: number of sites per yearly top list and years covered.
    historical_sites: int = 1_000
    historical_years: tuple[int, ...] = (2014, 2015, 2016, 2017, 2018, 2019)
    #: Vanilla (clean-slate) crawler profile, as in the paper.
    vanilla_profile: bool = True
    #: Parallel crawl workers (shards); ``1`` is the paper's sequential crawl.
    workers: int = 1
    #: Crawl execution backend: ``"serial"``, ``"thread"`` or ``"process"``.
    #: Detections are byte-identical across backends and worker counts.
    crawl_backend: str = "serial"
    #: How many detections a streaming ``--save`` sink buffers between file
    #: writes (``1`` = write-and-flush per record).  Purely operational: the
    #: saved bytes are identical for any value.
    sink_flush_every: int = DetectionSink.DEFAULT_FLUSH_EVERY
    #: Write a resumable crawl checkpoint to this path as the campaign
    #: progresses (requires persistent storage — ``run --save``).  ``None``
    #: disables checkpointing.
    checkpoint_path: str | None = None
    #: Resume the campaign recorded at :attr:`checkpoint_path` instead of
    #: starting fresh.  Refuses (fingerprint mismatch) if the configuration,
    #: seed or population differ from the interrupted run.
    resume: bool = False
    #: Persist the checkpoint every N completed shard boundaries.
    checkpoint_every_shards: int = 1
    #: Simulate pages through precompiled site profiles and per-worker
    #: scratch buffers (the fast path).  ``False`` re-derives every per-page
    #: input, the slow reference path; detections are byte-identical.
    fast_path: bool = True
    #: Simulate whole shards as numpy arrays (the columnar batch path,
    #: layered on the fast path's precompiled profiles).  ``False`` keeps
    #: the page-at-a-time loop; detections are byte-identical.
    batch_sim: bool = True
    #: Shards per worker for parallel crawls (bytes identical for any
    #: value).  Pass ``1`` to resume a parallel checkpoint written before
    #: this knob existed (its mid-flight phase planned one shard per
    #: worker).
    shard_oversubscribe: int = 4
    #: On-disk format for streamed detections: ``"jsonl"`` (the reference
    #: format) or ``"columnar"`` (the typed binary layout of
    #: :mod:`repro.crawler.colstore`).  The storage passed to
    #: :meth:`ExperimentRunner.run` must match; ``hbrepro convert``
    #: translates between the two after the fact.
    store_format: str = "jsonl"
    #: Supervision: retry budget per shard before it is quarantined.  Purely
    #: operational — retried shards reproduce identical bytes (simulation is
    #: deterministic), so none of the supervision knobs enter the campaign
    #: fingerprint or the artifact-cache key.
    shard_retries: int = 2
    #: Per-attempt wall-clock budget in seconds for pool backends (``None``
    #: disables; not enforceable on the serial backend).
    shard_timeout: float | None = None
    #: Base backoff in seconds between retry attempts (exponential with
    #: deterministic jitter); also governs transient sink-write retries.
    retry_backoff: float = 0.1
    #: Optional fault-injection plan (see
    #: :func:`repro.testing.parse_fault_plan`), e.g.
    #: ``"seed=7,crash@p=0.2x4,sink@p=0.1x5"``.  Intended for chaos testing:
    #: the run exercises the supervision machinery but — because retried
    #: shards are deterministic — still produces byte-identical detections.
    fault_spec: str | None = None
    #: Optional path of a JSON-lines supervision event log (retries, pool
    #: rebuilds, quarantines); threaded through to
    #: :attr:`CrawlConfig.fault_log`.
    fault_log: str | None = None

    def __post_init__(self) -> None:
        if self.total_sites < 10:
            raise ConfigurationError("an experiment needs at least 10 sites")
        if self.recrawl_days < 0:
            raise ConfigurationError("recrawl_days cannot be negative")
        if not 0.0 < self.detector_coverage <= 1.0:
            raise ConfigurationError("detector_coverage must be in (0, 1]")
        if self.total_partners < 10:
            raise ConfigurationError("the ecosystem needs at least 10 partners")
        if self.historical_sites < 10:
            raise ConfigurationError("the historical study needs at least 10 sites")
        if not self.historical_years:
            raise ConfigurationError("the historical study needs at least one year")
        if self.sink_flush_every < 1:
            raise ConfigurationError("sink_flush_every must be >= 1")
        if self.resume and self.checkpoint_path is None:
            raise ConfigurationError("resume requires a checkpoint_path")
        if self.store_format not in STORE_FORMATS:
            raise ConfigurationError(
                f"store_format must be one of {', '.join(STORE_FORMATS)}; got {self.store_format!r}"
            )
        # workers / crawl_backend / checkpoint_every_shards /
        # shard_retries / shard_timeout / retry_backoff validation lives in
        # CrawlConfig; building the crawl config surfaces any error at
        # construction time.
        self.crawl_config()
        if self.fault_spec is not None:
            from repro.testing import parse_fault_plan

            parse_fault_plan(self.fault_spec)

    # -- presets ------------------------------------------------------------------
    @classmethod
    def paper_scale(cls, *, seed: int = 2019) -> "ExperimentConfig":
        """The full-size configuration matching the paper's campaign."""
        return cls(total_sites=35_000, seed=seed, recrawl_days=34, historical_sites=1_000)

    @classmethod
    def bench_scale(cls, *, seed: int = 2019) -> "ExperimentConfig":
        """The default configuration used by the benchmark harness."""
        return cls(total_sites=3_000, seed=seed, recrawl_days=2, historical_sites=400)

    @classmethod
    def test_scale(cls, *, seed: int = 7) -> "ExperimentConfig":
        """A tiny configuration for unit and integration tests."""
        return cls(total_sites=400, seed=seed, recrawl_days=1, historical_sites=120,
                   historical_years=(2016, 2019))

    # -- derived configuration -------------------------------------------------------
    def population_config(self) -> PopulationConfig:
        """The publisher-population configuration this experiment implies."""
        return PopulationConfig(seed=self.seed).scaled(self.total_sites)

    def crawl_config(self) -> CrawlConfig:
        """The crawler configuration this experiment implies."""
        return CrawlConfig(
            seed=self.seed,
            workers=self.workers,
            backend=self.crawl_backend,
            checkpoint_every_shards=self.checkpoint_every_shards,
            fast_path=self.fast_path,
            batch_sim=self.batch_sim,
            shard_oversubscribe=self.shard_oversubscribe,
            shard_retries=self.shard_retries,
            shard_timeout=self.shard_timeout,
            retry_backoff=self.retry_backoff,
            fault_log=self.fault_log,
        )

    def with_parallelism(self, workers: int, backend: str = "thread") -> "ExperimentConfig":
        return replace(self, workers=workers, crawl_backend=backend)

    def with_checkpoint(self, path: str, *, resume: bool = False) -> "ExperimentConfig":
        return replace(self, checkpoint_path=path, resume=resume)

    def with_sites(self, total_sites: int) -> "ExperimentConfig":
        return replace(self, total_sites=total_sites)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)
