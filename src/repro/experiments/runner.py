"""The end-to-end experiment pipeline.

``ExperimentRunner.run()`` executes the full measurement campaign on the
simulated Web: generate the publisher population and partner registry, build
the detector, crawl the top list, re-crawl the HB sites daily, and bundle the
results into :class:`ExperimentArtifacts` — the object every figure and table
function consumes.

Because everything downstream of the configuration is deterministic, running
the same configuration twice yields identical artifacts, and benchmarks can
memoise artifacts per configuration to avoid re-simulating the Web for each
figure.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.dataset import CrawlDataset
from repro.crawler.checkpoint import CrawlCheckpointer, population_fingerprint
from repro.crawler.crawler import Crawler
from repro.crawler.storage import CrawlStorage
from repro.crawler.historical import HistoricalAdoption, HistoricalCrawler
from repro.crawler.scheduler import LongitudinalCrawl, LongitudinalScheduler
from repro.detector.detector import HBDetector
from repro.detector.partner_list import build_known_partner_list
from repro.detector.static_analysis import StaticAnalyzer
from repro.ecosystem.alexa import yearly_top_lists
from repro.ecosystem.publishers import PublisherPopulation, generate_population
from repro.ecosystem.registry import default_registry
from repro.ecosystem.wayback import SnapshotArchive
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.hb.environment import AuctionEnvironment

__all__ = ["ExperimentArtifacts", "ExperimentRunner"]


@dataclass
class ExperimentArtifacts:
    """Everything one experiment run produced."""

    config: ExperimentConfig
    population: PublisherPopulation
    environment: AuctionEnvironment
    detector: HBDetector
    longitudinal: LongitudinalCrawl
    dataset: CrawlDataset

    @property
    def summary(self) -> Mapping[str, int | float]:
        return self.dataset.summary()


#: Memoised experiment runs, keyed by the configuration fields ``run()``
#: actually consumes (the historical-study parameters are excluded on
#: purpose: varying them must not force a crawl re-simulation).  Bounded
#: LRU: long-lived processes that sweep many configurations (parameter
#: scans, services) evict the least recently used run instead of growing
#: without limit.  Each entry holds a full simulated-Web run, so the cap is
#: deliberately small.  All access goes through :func:`_cache_get` /
#: :func:`_cache_put` under :data:`_ARTIFACT_CACHE_LOCK`: the OrderedDict
#: move-to-end/evict dance is not atomic, and the HTTP service hits the
#: cache from many request threads at once.
_ARTIFACT_CACHE: "OrderedDict[tuple, ExperimentArtifacts]" = OrderedDict()
_ARTIFACT_CACHE_LOCK = threading.Lock()
ARTIFACT_CACHE_MAX_ENTRIES = 8


def _run_cache_key(config: ExperimentConfig) -> tuple:
    return (
        config.total_sites,
        config.seed,
        config.recrawl_days,
        config.detector_coverage,
        config.total_partners,
        config.vanilla_profile,
        config.workers,
        config.crawl_backend,
    )


def _cache_get(key: tuple) -> ExperimentArtifacts | None:
    with _ARTIFACT_CACHE_LOCK:
        artifacts = _ARTIFACT_CACHE.get(key)
        if artifacts is not None:
            _ARTIFACT_CACHE.move_to_end(key)
        return artifacts


def _cache_put(key: tuple, artifacts: ExperimentArtifacts) -> None:
    with _ARTIFACT_CACHE_LOCK:
        _ARTIFACT_CACHE[key] = artifacts
        _ARTIFACT_CACHE.move_to_end(key)
        while len(_ARTIFACT_CACHE) > ARTIFACT_CACHE_MAX_ENTRIES:
            _ARTIFACT_CACHE.popitem(last=False)


class ExperimentRunner:
    """Runs the measurement campaign described by an :class:`ExperimentConfig`."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    # -- pipeline pieces --------------------------------------------------------
    def build_population(self) -> PublisherPopulation:
        registry = default_registry(seed=self.config.seed, total_partners=self.config.total_partners)
        return generate_population(self.config.population_config(), registry)

    def build_environment(self, population: PublisherPopulation) -> AuctionEnvironment:
        return AuctionEnvironment(
            registry=population.registry,
            vanilla_profile=self.config.vanilla_profile,
        )

    def build_detector(self, population: PublisherPopulation) -> HBDetector:
        known = build_known_partner_list(
            population.registry,
            coverage=self.config.detector_coverage,
            seed=self.config.seed,
        )
        return HBDetector(known)

    def campaign_fingerprint(self, population: PublisherPopulation) -> dict:
        """Identity of this campaign for checkpoint resume validation.

        Covers every knob that changes the produced bytes — seed, population,
        campaign shape, page-load parameters — and deliberately excludes
        ``workers``, ``crawl_backend``, ``sink_flush_every`` and
        ``checkpoint_every_shards``: detections are byte-identical across all
        of them, so an interrupted crawl may resume with different
        parallelism (the engine still insists the mid-flight phase re-plans
        identically).

        ``recrawl_days`` is recorded but *extensible* on resume: each crawl
        day is its own immutable phase, so a finished campaign may resume
        with a larger horizon and append net-new days (how the continuous
        recrawl daemon grows a campaign one day per tick).  Shrinking the
        horizon below a recorded day, or changing any other field, is still
        refused by :meth:`CrawlCheckpointer.resume`.
        """
        crawl = self.config.crawl_config()
        fingerprint = {
            "total_sites": self.config.total_sites,
            "seed": self.config.seed,
            "recrawl_days": self.config.recrawl_days,
            "detector_coverage": self.config.detector_coverage,
            "total_partners": self.config.total_partners,
            "vanilla_profile": self.config.vanilla_profile,
            "population": population_fingerprint(population.domains),
            "page_load_timeout_ms": crawl.page_load_timeout_ms,
            "extra_dwell_ms": crawl.extra_dwell_ms,
            "restart_every_pages": crawl.restart_every_pages,
        }
        # The store format changes the sink's byte layout, so a checkpoint
        # must not resume under the other backend.  Recorded only when
        # non-default so pre-existing JSONL checkpoints keep resuming.
        if self.config.store_format != "jsonl":
            fingerprint["store_format"] = self.config.store_format
        return fingerprint

    # -- main entry points ----------------------------------------------------------
    def run(
        self,
        *,
        use_cache: bool = True,
        storage: CrawlStorage | None = None,
    ) -> ExperimentArtifacts:
        """Run (or reuse) the full crawl campaign for this configuration.

        ``storage`` streams every detection to disk incrementally as the
        campaign progresses (discovery pass first, then each crawl day) —
        runs given a storage are never served from the artifact cache, since
        a cache hit would skip the writes.

        With ``config.checkpoint_path`` set, progress is checkpointed at
        shard boundaries; with ``config.resume`` the campaign continues from
        the recorded state (recovering the sink's half-flushed tail) and the
        final artifacts and sink bytes are identical to an uninterrupted run.
        """
        config = self.config
        if config.checkpoint_path is not None and storage is None:
            raise ConfigurationError(
                "a checkpointed run needs persistent storage (run --save): "
                "resume recovers completed work from the sink file"
            )
        if storage is not None and getattr(storage, "format", "jsonl") != config.store_format:
            raise ConfigurationError(
                f"storage writes {getattr(storage, 'format', 'jsonl')!r} but the "
                f"configuration asks for store_format={config.store_format!r}; "
                f"build the storage with repro.crawler.colstore.storage_for"
            )
        cache_key = _run_cache_key(config)
        # Fault-injected runs are never cached: a chaos run that quarantines
        # shards completes degraded, and serving it from cache would hand a
        # later clean run the truncated artifacts.
        use_cache = use_cache and storage is None and config.fault_spec is None
        if use_cache:
            cached = _cache_get(cache_key)
            if cached is not None:
                return cached

        population = self.build_population()
        environment = self.build_environment(population)
        detector = self.build_detector(population)
        checkpointer: CrawlCheckpointer | None = None
        if config.checkpoint_path is not None:
            fingerprint = self.campaign_fingerprint(population)
            if config.resume:
                checkpointer = CrawlCheckpointer.resume(
                    config.checkpoint_path, fingerprint, storage
                )
            else:
                checkpointer = CrawlCheckpointer.fresh(
                    config.checkpoint_path, fingerprint
                )
        fault_plan = None
        if config.fault_spec is not None:
            from repro.testing import parse_fault_plan

            fault_plan = parse_fault_plan(config.fault_spec)
        # Pool workers persist across the discovery pass and every daily
        # re-crawl (their environment/detector ships once per worker, not
        # once per shard); the context managers release them when the
        # campaign is done without masking a mid-crawl error.
        with Crawler(
            environment, detector, config.crawl_config(), fault_plan=fault_plan
        ) as crawler:
            scheduler = LongitudinalScheduler(crawler, recrawl_days=config.recrawl_days)
            if storage is not None:
                # Resume appends to the recovered sink; fresh runs start over.
                with storage.open_sink(
                    append=config.resume, flush_every=config.sink_flush_every
                ) as sink:
                    longitudinal = scheduler.run(
                        population, sink=sink, checkpoint=checkpointer
                    )
            else:
                longitudinal = scheduler.run(population)
        dataset = CrawlDataset.from_detections(
            longitudinal.all_detections, label=f"crawl-{self.config.total_sites}"
        )
        artifacts = ExperimentArtifacts(
            config=self.config,
            population=population,
            environment=environment,
            detector=detector,
            longitudinal=longitudinal,
            dataset=dataset,
        )
        if use_cache:
            _cache_put(cache_key, artifacts)
        return artifacts

    def run_historical(self) -> HistoricalAdoption:
        """Run the Wayback-style historical adoption study (Figure 4)."""
        top_lists = yearly_top_lists(
            self.config.historical_sites,
            self.config.historical_years,
            seed=self.config.seed,
        )
        archive = SnapshotArchive(top_lists, seed=self.config.seed)
        crawler = HistoricalCrawler(archive, StaticAnalyzer())
        return crawler.crawl()


def clear_artifact_cache() -> None:
    """Drop memoised experiment artifacts (used by tests that vary configs)."""
    with _ARTIFACT_CACHE_LOCK:
        _ARTIFACT_CACHE.clear()


def artifact_cache_size() -> int:
    """How many experiment runs are currently memoised."""
    with _ARTIFACT_CACHE_LOCK:
        return len(_ARTIFACT_CACHE)
