"""Extraction of header-bidding parameters from observed traffic.

HB wrappers attach a fixed set of key-value parameters (``hb_bidder``,
``hb_pb``, ``hb_size``, ...) to the ad-server call, and server-side responses
echo them back.  The RTB protocol, in contrast, uses DSP-specific parameter
names on its notification URLs.  This module knows how to find the HB keys in
a request's parameter map — including the per-slot suffixed form
(``hb_bidder_<slot>``) the wrappers use when several slots travel in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.hb.events import HB_PARAM_NAMES
from repro.models import WebRequest

__all__ = ["HBParameterSet", "extract_hb_parameters", "has_hb_parameters"]


@dataclass(frozen=True)
class HBParameterSet:
    """The HB key-values found in one request, grouped per ad-slot.

    ``global_values`` holds un-suffixed keys (``hb_bidder`` → value);
    ``per_slot`` maps slot code → {parameter name → value} for suffixed keys
    such as ``hb_bidder_div-gpt-ad-3``.
    """

    global_values: Mapping[str, str]
    per_slot: Mapping[str, Mapping[str, str]]

    @property
    def is_empty(self) -> bool:
        return not self.global_values and not self.per_slot

    @property
    def slot_codes(self) -> tuple[str, ...]:
        return tuple(self.per_slot)

    def bidder_for_slot(self, slot_code: str) -> str | None:
        slot_params = self.per_slot.get(slot_code, {})
        return slot_params.get("hb_bidder") or self.global_values.get("hb_bidder")

    def price_for_slot(self, slot_code: str) -> float | None:
        """Best-effort price (CPM) for a slot from either hb_cpm or hb_pb."""
        slot_params = self.per_slot.get(slot_code, {})
        for key in ("hb_cpm", "hb_pb"):
            raw = slot_params.get(key) or self.global_values.get(key)
            if raw is None:
                continue
            try:
                return float(raw)
            except ValueError:
                continue
        return None

    def size_for_slot(self, slot_code: str) -> str | None:
        slot_params = self.per_slot.get(slot_code, {})
        return slot_params.get("hb_size") or self.global_values.get("hb_size")


#: Longest-first match order, hoisted: re-sorting per key was measurable on
#: the crawl hot path (every parameter of every request passes through here).
_HB_PARAMS_BY_LENGTH: tuple[str, ...] = tuple(sorted(HB_PARAM_NAMES, key=len, reverse=True))
_HB_PARAM_SET: frozenset[str] = frozenset(HB_PARAM_NAMES)


def _split_key(key: str) -> tuple[str, str | None]:
    """Split ``hb_bidder_div-gpt-ad-3`` into (``hb_bidder``, ``div-gpt-ad-3``).

    Returns ``(key, None)`` when the key carries no slot suffix.
    """
    if not key.startswith("hb_"):  # every HB parameter name does
        return key, None
    for base in _HB_PARAMS_BY_LENGTH:
        if key == base:
            return base, None
        if key.startswith(base + "_"):
            return base, key[len(base) + 1:]
    return key, None


def extract_hb_parameters(params: Mapping[str, str]) -> HBParameterSet:
    """Pull every HB key out of a request parameter map."""
    global_values: dict[str, str] = {}
    per_slot: dict[str, dict[str, str]] = {}
    for key, value in params.items():
        base, slot = _split_key(key)
        if base not in _HB_PARAM_SET:
            continue
        if slot is None:
            global_values[base] = value
        else:
            per_slot.setdefault(slot, {})[base] = value
    return HBParameterSet(global_values=global_values, per_slot=per_slot)


def has_hb_parameters(request: WebRequest) -> bool:
    """Quick check: does this request carry any HB key at all?"""
    for key in request.params:
        base, _ = _split_key(key)
        if base in _HB_PARAM_SET:
            return True
    return False
