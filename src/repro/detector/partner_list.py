"""Known HB demand-partner list.

The paper's authors combined several publisher-facing lists of header-bidding
partners into one lookup table mapping bid-endpoint domains to company names.
The detector uses it to decide whether a web request talks to an HB partner
and to attribute observed activity to a named company.

In the reproduction, the list is *derived* from an ecosystem partner registry
but is a separate object on purpose: experiments can drop a fraction of
partners from the list to study how incomplete knowledge degrades recall, the
same limitation the paper discusses for libraries it did not analyse.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.ecosystem.registry import PartnerRegistry, default_registry
from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng

__all__ = ["KnownPartnerList", "build_known_partner_list"]


@dataclass(frozen=True, slots=True)
class _KnownPartner:
    """One entry of the curated list."""

    name: str
    bidder_code: str
    domains: tuple[str, ...]


class KnownPartnerList:
    """Domain → partner lookup used by the web-request inspector."""

    #: Size of the per-instance host-lookup cache.  A crawl sees the same
    #: partner endpoints over and over (one lookup per observed request), so
    #: even a modest cache absorbs nearly every repeated host.
    MATCH_CACHE_SIZE = 4096

    def __init__(self, entries: Iterable[_KnownPartner]) -> None:
        self._entries = tuple(entries)
        if not self._entries:
            raise ConfigurationError("the known-partner list cannot be empty")
        self._by_domain: dict[str, _KnownPartner] = {}
        self._by_bidder_code: dict[str, _KnownPartner] = {}
        for entry in self._entries:
            self._by_bidder_code[entry.bidder_code] = entry
            for domain in entry.domains:
                self._by_domain[domain.lower()] = entry
        # No listed domain is deeper than this many labels, so a host can
        # only match through its last `_max_match_depth` labels — the suffix
        # walk short-circuits instead of trying every ancestor.
        self._max_match_depth = max(
            (domain.count(".") + 1 for domain in self._by_domain), default=0
        )
        # The list is immutable after construction, so memoising lookups is
        # safe (and thread-safe: lru_cache locks internally).
        self._match_host_cached = lru_cache(maxsize=self.MATCH_CACHE_SIZE)(
            self._match_host_uncached
        )

    def __reduce__(self) -> tuple:
        # The lru_cache wrapper is unpicklable; rebuild from the entries so
        # the detector (which owns this list) can ship to process workers.
        return (type(self), (self._entries,))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[_KnownPartner]:
        return iter(self._entries)

    @property
    def partner_names(self) -> tuple[str, ...]:
        return tuple(entry.name for entry in self._entries)

    @property
    def domains(self) -> tuple[str, ...]:
        return tuple(self._by_domain)

    # -- lookups -------------------------------------------------------------
    def match_host(self, host: str) -> str | None:
        """Return the partner name owning ``host``, if any.

        Subdomains match their parent domain, e.g. ``ib.adnxs.com`` matches the
        ``adnxs.com`` entry.  Called once per observed web request, so lookups
        are memoised per host and the suffix walk is bounded by the deepest
        listed domain instead of the host's own label count.
        """
        return self._match_host_cached(host.lower())

    def _match_host_uncached(self, host: str) -> str | None:
        by_domain = self._by_domain
        entry = by_domain.get(host)
        if entry is not None:
            return entry.name
        parts = host.split(".")
        # Suffixes deeper than the deepest listed domain cannot be on the
        # list; start the walk at the shallowest suffix that still could be.
        for start in range(max(1, len(parts) - self._max_match_depth), len(parts) - 1):
            entry = by_domain.get(".".join(parts[start:]))
            if entry is not None:
                return entry.name
        return None

    def match_cache_info(self):
        """Hit/miss statistics of the host-lookup cache (for benchmarks)."""
        return self._match_host_cached.cache_info()

    def name_for_bidder_code(self, bidder_code: str) -> str | None:
        """Resolve a wrapper-level bidder code (e.g. ``"appnexus"``) to a name."""
        entry = self._by_bidder_code.get(bidder_code)
        return entry.name if entry else None

    def contains_partner(self, name: str) -> bool:
        return any(entry.name == name for entry in self._entries)


def build_known_partner_list(
    registry: PartnerRegistry | None = None,
    *,
    coverage: float = 1.0,
    seed: int = 0,
) -> KnownPartnerList:
    """Build the detector's known-partner list from a partner registry.

    ``coverage`` < 1.0 drops a random fraction of partners, modelling an
    out-of-date curated list; the most popular partners are always kept, as
    real curated lists never miss the big players.
    """
    if not 0.0 < coverage <= 1.0:
        raise ConfigurationError("coverage must be in (0, 1]")
    registry = registry or default_registry()
    partners = sorted(registry.partners, key=lambda p: p.popularity_weight, reverse=True)
    keep = len(partners) if coverage >= 1.0 else max(1, int(round(len(partners) * coverage)))
    always_kept = partners[: max(10, keep // 2)]
    remaining = [p for p in partners if p not in always_kept]
    if keep > len(always_kept) and remaining:
        rng = derive_rng(seed, "known-partner-list", coverage)
        extra_count = min(keep - len(always_kept), len(remaining))
        indices = rng.choice(len(remaining), size=extra_count, replace=False)
        chosen = always_kept + [remaining[int(i)] for i in np.atleast_1d(indices)]
    else:
        chosen = always_kept[:keep]
    entries = [
        _KnownPartner(name=p.name, bidder_code=p.bidder_code, domains=tuple(p.domains))
        for p in chosen
    ]
    return KnownPartnerList(entries)
