"""HBDetector — the paper's primary contribution.

The detector observes exactly what a browser extension can observe — DOM
events and web requests — and reconstructs the header-bidding activity of a
page: whether HB is present, through which facet, which demand partners
participate, the auctions and bids with their prices and sizes, the per-partner
latencies and the late bids.

Sub-modules:

* :mod:`repro.detector.partner_list` — the curated list of known HB partners,
* :mod:`repro.detector.parameters` — extraction of ``hb_*`` parameters,
* :mod:`repro.detector.dom_inspector` — the content-script side (DOM events),
* :mod:`repro.detector.webrequest_inspector` — the webRequest side,
* :mod:`repro.detector.static_analysis` — static HTML analysis (historical),
* :mod:`repro.detector.facets` — facet classification,
* :mod:`repro.detector.records` — the detection output records,
* :mod:`repro.detector.detector` — the combined :class:`HBDetector`.
"""

from repro.detector.partner_list import KnownPartnerList, build_known_partner_list
from repro.detector.records import ObservedBid, ObservedAuction, SiteDetection
from repro.detector.detector import HBDetector
from repro.detector.static_analysis import StaticAnalyzer, StaticDetection

__all__ = [
    "KnownPartnerList",
    "build_known_partner_list",
    "ObservedBid",
    "ObservedAuction",
    "SiteDetection",
    "HBDetector",
    "StaticAnalyzer",
    "StaticDetection",
]
