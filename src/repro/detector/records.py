"""Detection output records.

These are the records HBDetector produces for every crawled page and that the
whole analysis layer consumes.  They intentionally contain only information
that is observable from the browser — no ground truth ever leaks in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import DetectionError
from repro.models import HBFacet

__all__ = ["ObservedBid", "ObservedAuction", "SiteDetection"]


@dataclass(frozen=True, slots=True)
class ObservedBid:
    """One bid the detector could attribute to a partner on a page."""

    partner: str
    bidder_code: str
    slot_code: str
    cpm: float | None
    size: str | None
    latency_ms: float | None
    late: bool = False
    won: bool = False
    source: str = "client"  # "client" (bidResponse events) or "server" (hb_* in responses)

    def __post_init__(self) -> None:
        if self.cpm is not None and self.cpm < 0:
            raise DetectionError("observed CPM cannot be negative")
        if self.latency_ms is not None and self.latency_ms < 0:
            raise DetectionError("observed latency cannot be negative")
        if self.source not in ("client", "server"):
            raise DetectionError(f"unknown bid source {self.source!r}")


@dataclass(frozen=True, slots=True)
class ObservedAuction:
    """One ad-slot auction reconstructed from the page's activity."""

    slot_code: str
    size: str | None
    bids: tuple[ObservedBid, ...]
    start_ms: float
    end_ms: float
    facet: HBFacet

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms:
            raise DetectionError("an auction cannot end before it starts")

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def n_bids(self) -> int:
        return len(self.bids)

    @property
    def late_bids(self) -> tuple[ObservedBid, ...]:
        return tuple(bid for bid in self.bids if bid.late)

    @property
    def late_bid_fraction(self) -> float | None:
        """Share of this auction's bids that arrived too late (None if no bids)."""
        if not self.bids:
            return None
        return len(self.late_bids) / len(self.bids)

    @property
    def winning_bid(self) -> ObservedBid | None:
        winners = [bid for bid in self.bids if bid.won]
        return winners[0] if winners else None


@dataclass(frozen=True, slots=True)
class SiteDetection:
    """Everything the detector learned about one page load."""

    domain: str
    rank: int
    hb_detected: bool
    facet: HBFacet | None = None
    library: str | None = None
    partners: tuple[str, ...] = ()
    auctions: tuple[ObservedAuction, ...] = ()
    partner_latencies_ms: Mapping[str, float] = field(default_factory=dict)
    total_latency_ms: float | None = None
    detection_channels: tuple[str, ...] = ()
    crawl_day: int = 0
    page_load_ms: float | None = None

    def __post_init__(self) -> None:
        if self.hb_detected and self.facet is None:
            raise DetectionError(f"HB detected on {self.domain} but no facet classified")
        if self.total_latency_ms is not None and self.total_latency_ms < 0:
            raise DetectionError("total HB latency cannot be negative")
        if self.rank < 1:
            raise DetectionError("site rank is 1-based")

    @property
    def n_partners(self) -> int:
        return len(self.partners)

    @property
    def n_auctions(self) -> int:
        return len(self.auctions)

    @property
    def all_bids(self) -> tuple[ObservedBid, ...]:
        return tuple(bid for auction in self.auctions for bid in auction.bids)

    @property
    def n_bids(self) -> int:
        return len(self.all_bids)

    @property
    def n_late_bids(self) -> int:
        return sum(1 for bid in self.all_bids if bid.late)


def count_bids(detections: Iterable[SiteDetection]) -> int:
    """Total observed bids over many detections (Table 1 helper)."""
    return sum(detection.n_bids for detection in detections)
