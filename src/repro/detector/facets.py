"""Facet classification from observations.

Once a page is known to run header bidding, the detector decides *which* of
the three facets it uses, based purely on what the two observation channels
showed (§4.2 of the paper):

* **client-side** — the browser exchanged bids with demand partners and then
  pushed ``hb_*`` key-values to an ad server that is *not* on the known
  partner list (the publisher's own ad server);
* **hybrid** — client-side bid exchanges are visible *and* the key-value push
  went to a known partner's ad server (which then runs its own auction);
* **server-side** — no client-side bid exchange is visible, but responses from
  a known partner carry ``hb_*`` parameters (the whole auction ran in that
  partner's backend).
"""

from __future__ import annotations

from repro.detector.dom_inspector import DomObservations
from repro.detector.webrequest_inspector import WebRequestObservations
from repro.models import HBFacet

__all__ = ["classify_facet"]


def _has_client_side_bidding(dom: DomObservations, web: WebRequestObservations) -> bool:
    """Did the browser itself exchange bids with demand partners?"""
    if dom.bids:
        return True
    # Even without lifecycle events (gpt-style wrappers), several distinct
    # partner exchanges initiated by the page before the ad-server push
    # indicate client-side bid collection.
    pre_push_exchanges = [
        exchange
        for exchange in web.exchanges
        if exchange.request_at_ms is not None
        and (
            web.ad_server_push is None
            or exchange.request_at_ms <= web.ad_server_push.timestamp_ms
        )
    ]
    return len({exchange.partner for exchange in pre_push_exchanges}) >= 2


def classify_facet(dom: DomObservations, web: WebRequestObservations) -> HBFacet | None:
    """Classify the HB facet of a page, or ``None`` if HB cannot be confirmed.

    The decision uses only observable signals; pages with no HB evidence at
    all return ``None`` (the caller treats that as "no HB detected").
    """
    has_hb_evidence = (
        dom.hb_events_seen
        or web.ad_server_push is not None
        or bool(web.hb_responses)
    )
    if not has_hb_evidence:
        return None

    client_side_bidding = _has_client_side_bidding(dom, web)

    if client_side_bidding:
        if web.ad_server_push is not None and web.ad_server_is_known_partner:
            return HBFacet.HYBRID
        if web.ad_server_push is not None:
            return HBFacet.CLIENT_SIDE
        # Bids are visible but no key-value push was caught: the conservative
        # call is hybrid when a known partner later answered with hb_* values
        # (its backend clearly participated), client-side otherwise.
        if web.hb_responses:
            return HBFacet.HYBRID
        return HBFacet.CLIENT_SIDE

    # No client-side bidding visible: server-side if a known partner's
    # responses carry HB parameters.
    if web.hb_responses:
        return HBFacet.SERVER_SIDE
    if web.ad_server_push is not None and web.ad_server_is_known_partner:
        return HBFacet.SERVER_SIDE
    if dom.hb_events_seen:
        # Lifecycle events exist but no partner traffic was attributable: the
        # page runs a wrapper against partners missing from the known list.
        return HBFacet.CLIENT_SIDE
    return None
