"""DOM-event inspector (detection method 2 of the paper).

The content script HBDetector injects into the page header subscribes to the
auction lifecycle events the wrapper libraries fire.  Observing any of those
events is, by construction of the libraries, sufficient proof that header
bidding is running; their payloads additionally carry the auction metadata the
analysis needs (bidder, CPM, size, time to respond, ad-unit code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.hb.events import HBEventName
from repro.models import DomEvent

__all__ = ["DomObservations", "DomEventInspector"]


#: Events whose presence alone proves header-bidding activity.  The paper's
#: analysis focuses on auctionEnd, bidWon and slotRenderEnded; the inspector
#: additionally uses the lifecycle events to enrich auction metadata.
_HB_PROOF_EVENTS: frozenset[str] = frozenset(
    {
        HBEventName.AUCTION_INIT.value,
        HBEventName.REQUEST_BIDS.value,
        HBEventName.BID_REQUESTED.value,
        HBEventName.BID_RESPONSE.value,
        HBEventName.BID_TIMEOUT.value,
        HBEventName.AUCTION_END.value,
        HBEventName.BID_WON.value,
    }
)

#: Render events fire for any ad served through an ad server tag (including
#: plain waterfall inventory), so alone they are *not* proof of HB.
_RENDER_EVENTS: frozenset[str] = frozenset(
    {HBEventName.SLOT_RENDER_ENDED.value, HBEventName.AD_RENDER_FAILED.value}
)


@dataclass(frozen=True, slots=True)
class _ObservedDomBid:
    """A bid reported by a ``bidResponse`` or ``bidWon`` event."""

    bidder_code: str
    slot_code: str
    cpm: float | None
    size: str | None
    time_to_respond_ms: float | None
    won: bool
    timestamp_ms: float


@dataclass
class DomObservations:
    """Everything the DOM channel observed on one page."""

    hb_events_seen: bool = False
    library: str | None = None
    auction_ids: list[str] = field(default_factory=list)
    bids: list[_ObservedDomBid] = field(default_factory=list)
    timed_out_bidders: list[str] = field(default_factory=list)
    auction_started_at_ms: float | None = None
    auction_ended_at_ms: float | None = None
    rendered_slots: dict[str, str | None] = field(default_factory=dict)
    failed_slots: list[str] = field(default_factory=list)

    @property
    def bidders_seen(self) -> tuple[str, ...]:
        seen: list[str] = []
        for bid in self.bids:
            if bid.bidder_code not in seen:
                seen.append(bid.bidder_code)
        return tuple(seen)

    @property
    def winning_bids(self) -> tuple[_ObservedDomBid, ...]:
        return tuple(bid for bid in self.bids if bid.won)


class DomEventInspector:
    """Turns a page's DOM event stream into :class:`DomObservations`."""

    def __init__(self, *, proof_events: frozenset[str] = _HB_PROOF_EVENTS) -> None:
        self._proof_events = proof_events

    def inspect(self, events: Sequence[DomEvent]) -> DomObservations:
        observations = DomObservations()
        for event in events:
            if event.name in self._proof_events:
                observations.hb_events_seen = True
                self._absorb_library(observations, event.payload)
            if event.name == HBEventName.AUCTION_INIT.value:
                self._on_auction_init(observations, event)
            elif event.name == HBEventName.BID_RESPONSE.value:
                self._on_bid(observations, event, won=False)
            elif event.name == HBEventName.BID_WON.value:
                self._on_bid(observations, event, won=True)
            elif event.name == HBEventName.BID_TIMEOUT.value:
                self._on_bid_timeout(observations, event)
            elif event.name == HBEventName.AUCTION_END.value:
                self._on_auction_end(observations, event)
            elif event.name == HBEventName.SLOT_RENDER_ENDED.value:
                self._on_render(observations, event)
            elif event.name == HBEventName.AD_RENDER_FAILED.value:
                slot = str(event.get("adUnitCode", ""))
                if slot:
                    observations.failed_slots.append(slot)
        return observations

    # -- event handlers ---------------------------------------------------------
    @staticmethod
    def _absorb_library(observations: DomObservations, payload: Mapping[str, object]) -> None:
        library = payload.get("library")
        if observations.library is None and isinstance(library, str) and library:
            observations.library = library

    @staticmethod
    def _on_auction_init(observations: DomObservations, event: DomEvent) -> None:
        auction_id = str(event.get("auctionId", ""))
        if auction_id and auction_id not in observations.auction_ids:
            observations.auction_ids.append(auction_id)
        if observations.auction_started_at_ms is None:
            observations.auction_started_at_ms = event.timestamp_ms

    @staticmethod
    def _on_bid(observations: DomObservations, event: DomEvent, *, won: bool) -> None:
        cpm_raw = event.get("cpm")
        time_raw = event.get("timeToRespond")
        observations.bids.append(
            _ObservedDomBid(
                bidder_code=str(event.get("bidder", "unknown")),
                slot_code=str(event.get("adUnitCode", "")),
                cpm=float(cpm_raw) if isinstance(cpm_raw, (int, float)) else None,
                size=str(event.get("size")) if event.get("size") else None,
                time_to_respond_ms=(
                    float(time_raw) if isinstance(time_raw, (int, float)) else None
                ),
                won=won,
                timestamp_ms=event.timestamp_ms,
            )
        )

    @staticmethod
    def _on_bid_timeout(observations: DomObservations, event: DomEvent) -> None:
        bidders = event.get("bidders", [])
        if isinstance(bidders, (list, tuple)):
            observations.timed_out_bidders.extend(str(bidder) for bidder in bidders)

    @staticmethod
    def _on_auction_end(observations: DomObservations, event: DomEvent) -> None:
        observations.auction_ended_at_ms = event.timestamp_ms
        if observations.auction_started_at_ms is None:
            duration = event.get("auctionDuration")
            if isinstance(duration, (int, float)):
                observations.auction_started_at_ms = event.timestamp_ms - float(duration)

    @staticmethod
    def _on_render(observations: DomObservations, event: DomEvent) -> None:
        slot = str(event.get("adUnitCode", "") or event.get("slotId", ""))
        if not slot:
            return
        campaign = event.get("campaign")
        observations.rendered_slots[slot] = str(campaign) if campaign else None
