"""Static HTML analysis (detection method 1 of the paper).

Static analysis scans the page source for script tags that load known
header-bidding libraries.  The paper deliberately does *not* use this method
for the live crawl because it is prone to both false positives (scripts whose
names merely look HB-related, HB libraries present but never executed) and
false negatives (renamed or not-yet-known libraries).  It is, however, the
only method applicable to archived historical pages, which is how Figure 4's
2014-2019 adoption series is produced.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["StaticDetection", "StaticAnalyzer", "DEFAULT_LIBRARY_PATTERNS"]


#: Script-name patterns recognised as header-bidding libraries.  ``gpt.js`` is
#: intentionally absent from the defaults: on its own it only proves an ad
#: server tag, not header bidding, and including it would flood the historical
#: analysis with false positives.
DEFAULT_LIBRARY_PATTERNS: tuple[str, ...] = (
    r"prebid(\.min)?\.js",
    r"pubfood(\.min)?\.js",
    r"hb-wrapper(\.min)?\.js",
    r"headerbid",
    r"header-bidding",
)


@dataclass(frozen=True)
class StaticDetection:
    """Result of statically analysing one HTML document."""

    domain: str
    hb_detected: bool
    matched_patterns: tuple[str, ...] = ()
    matched_scripts: tuple[str, ...] = ()

    @property
    def n_matches(self) -> int:
        return len(self.matched_scripts)


_SCRIPT_SRC_RE = re.compile(r"<script[^>]+src=[\"']([^\"']+)[\"']", re.IGNORECASE)


class StaticAnalyzer:
    """Regex-based scan of page HTML for known HB library script tags."""

    def __init__(self, patterns: Sequence[str] = DEFAULT_LIBRARY_PATTERNS) -> None:
        if not patterns:
            raise ValueError("the static analyzer needs at least one pattern")
        self._patterns = tuple(patterns)
        self._compiled = [re.compile(pattern, re.IGNORECASE) for pattern in patterns]

    @property
    def patterns(self) -> tuple[str, ...]:
        return self._patterns

    def script_sources(self, html: str) -> tuple[str, ...]:
        """All ``<script src=...>`` URLs found in the document."""
        return tuple(_SCRIPT_SRC_RE.findall(html))

    def analyze(self, domain: str, html: str) -> StaticDetection:
        """Scan one document and report whether HB libraries are referenced."""
        matched_patterns: list[str] = []
        matched_scripts: list[str] = []
        for script in self.script_sources(html):
            for pattern, compiled in zip(self._patterns, self._compiled):
                if compiled.search(script):
                    if pattern not in matched_patterns:
                        matched_patterns.append(pattern)
                    matched_scripts.append(script)
                    break
        return StaticDetection(
            domain=domain,
            hb_detected=bool(matched_scripts),
            matched_patterns=tuple(matched_patterns),
            matched_scripts=tuple(matched_scripts),
        )

    def analyze_many(self, documents: Iterable[tuple[str, str]]) -> list[StaticDetection]:
        """Analyse ``(domain, html)`` pairs in order."""
        return [self.analyze(domain, html) for domain, html in documents]
