"""The combined HBDetector.

This is the reproduction of the paper's tool: it fuses the DOM-event channel
(method 2) and the web-request channel (method 3) into a single per-page
verdict — is header bidding present, through which facet, with which partners,
auctions, bids, prices and latencies.  Static analysis (method 1) is kept
separate in :mod:`repro.detector.static_analysis` because the live detector
deliberately avoids it.

The detector's only inputs are the page's DOM events and web requests (plus
the site's identity).  It never touches the simulation's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.browser.engine import PageLoadResult
from repro.detector.dom_inspector import DomEventInspector, DomObservations
from repro.detector.facets import classify_facet
from repro.detector.partner_list import KnownPartnerList, build_known_partner_list
from repro.detector.records import ObservedAuction, ObservedBid, SiteDetection
from repro.detector.webrequest_inspector import WebRequestInspector, WebRequestObservations
from repro.models import DomEvent, HBFacet, RequestDirection, WebRequest

__all__ = ["HBDetector"]


class HBDetector:
    """Detect and characterise header-bidding activity on crawled pages."""

    def __init__(self, known_partners: KnownPartnerList | None = None) -> None:
        self.known_partners = known_partners or build_known_partner_list()
        self._dom_inspector = DomEventInspector()
        self._web_inspector = WebRequestInspector(self.known_partners)

    # -- worker lifecycle ------------------------------------------------------
    def clone(self) -> "HBDetector":
        """A fresh detector sharing the immutable known-partner list.

        This is the cheap worker-isolation primitive the crawl engine uses:
        the curated list (the only sizeable state) is shared read-only, the
        inspectors are rebuilt.  Orders of magnitude cheaper than
        ``copy.deepcopy`` and observationally identical, because detection is
        a pure function of the page's observations.  Clones preserve the
        concrete class; subclasses whose ``__init__`` takes more than the
        partner list must override this.
        """
        return type(self)(self.known_partners)

    def reset(self) -> None:
        """Drop any inspector state, guaranteeing a clean slate per shard.

        Inspection is stateless page to page by design, so this is a cheap
        invariant-enforcement hook (called by workers at shard start), not a
        correctness requirement today.
        """
        self._dom_inspector = DomEventInspector()
        self._web_inspector = WebRequestInspector(self.known_partners)

    # -- public API -----------------------------------------------------------
    def inspect_page(self, result: PageLoadResult, *, crawl_day: int = 0) -> SiteDetection:
        """Inspect one page load and produce its :class:`SiteDetection`."""
        return self.inspect(
            domain=result.domain,
            rank=result.rank,
            dom_events=result.dom_events,
            web_requests=result.web_requests,
            crawl_day=crawl_day,
            page_load_ms=result.page_load_ms,
        )

    def inspect(
        self,
        *,
        domain: str,
        rank: int,
        dom_events: Sequence[DomEvent],
        web_requests: Sequence[WebRequest],
        crawl_day: int = 0,
        page_load_ms: float | None = None,
    ) -> SiteDetection:
        """Inspect raw observations (extension-level inputs) for one page."""
        ordered_requests = sorted(
            web_requests,
            key=lambda request: (
                request.timestamp_ms,
                0 if request.direction is RequestDirection.OUTGOING else 1,
            ),
        )
        dom = self._dom_inspector.inspect(list(dom_events))
        web = self._web_inspector.inspect(ordered_requests)
        return self.detect_from_observations(
            domain=domain,
            rank=rank,
            dom=dom,
            web=web,
            crawl_day=crawl_day,
            page_load_ms=page_load_ms,
        )

    def detect_from_observations(
        self,
        *,
        domain: str,
        rank: int,
        dom: DomObservations,
        web: WebRequestObservations,
        crawl_day: int = 0,
        page_load_ms: float | None = None,
    ) -> SiteDetection:
        """Produce a :class:`SiteDetection` from pre-built observations.

        This is the seam the columnar batch simulator uses: it synthesises
        :class:`DomObservations` and :class:`WebRequestObservations` directly
        (without materialising ``DomEvent``/``WebRequest`` objects) and hands
        them to the same classification and reconstruction pipeline the
        event-level :meth:`inspect` uses, so both paths cannot drift apart.
        """
        facet = classify_facet(dom, web)
        if facet is None:
            return SiteDetection(
                domain=domain,
                rank=rank,
                hb_detected=False,
                crawl_day=crawl_day,
                page_load_ms=page_load_ms,
            )

        partners = self._visible_partners(web)
        auctions = self._reconstruct_auctions(dom, web, facet)
        total_latency = self._total_latency(web, facet, auctions)
        channels = self._detection_channels(dom, web)

        return SiteDetection(
            domain=domain,
            rank=rank,
            hb_detected=True,
            facet=facet,
            library=dom.library,
            partners=partners,
            auctions=auctions,
            partner_latencies_ms=web.partner_latencies_ms,
            total_latency_ms=total_latency,
            detection_channels=channels,
            crawl_day=crawl_day,
            page_load_ms=page_load_ms,
        )

    # -- assembly helpers -------------------------------------------------------
    def _visible_partners(self, web: WebRequestObservations) -> tuple[str, ...]:
        partners = list(web.partners_contacted)
        if web.ad_server_partner and web.ad_server_partner not in partners:
            partners.append(web.ad_server_partner)
        return tuple(partners)

    @staticmethod
    def _detection_channels(dom: DomObservations, web: WebRequestObservations) -> tuple[str, ...]:
        channels = []
        if dom.hb_events_seen:
            channels.append("dom-events")
        if web.any_hb_traffic or web.exchanges:
            channels.append("web-requests")
        return tuple(channels)

    def _reconstruct_auctions(
        self,
        dom: DomObservations,
        web: WebRequestObservations,
        facet: HBFacet,
    ) -> tuple[ObservedAuction, ...]:
        """Assemble per-slot auction records from both observation channels."""
        # The "ad server was called" marker, after which arriving bids are late:
        # the key-value push when it is observable, otherwise the wrapper's own
        # auctionEnd event (the wrapper calls the ad server right after it).
        push_time = web.ad_server_push.timestamp_ms if web.ad_server_push else None
        if push_time is None and dom.auction_ended_at_ms is not None:
            push_time = dom.auction_ended_at_ms
        start = self._auction_start(dom, web)
        end = self._auction_end(dom, web, start)

        bids_by_slot: dict[str, dict[str, ObservedBid]] = {}
        sizes_by_slot: dict[str, str] = {}

        def add_bid(slot_code: str, bid: ObservedBid) -> None:
            slot_bids = bids_by_slot.setdefault(slot_code, {})
            key = bid.bidder_code.lower()
            existing = slot_bids.get(key)
            if existing is None or (bid.won and not existing.won):
                slot_bids[key] = bid
            if bid.size and slot_code not in sizes_by_slot:
                sizes_by_slot[slot_code] = bid.size

        # 1. Bids announced by the wrapper's DOM events (client-side visible,
        #    always on time — the wrapper only reports bids it accepted).
        winners_from_dom: set[tuple[str, str]] = set()
        for dom_bid in dom.bids:
            if dom_bid.won:
                winners_from_dom.add((dom_bid.bidder_code, dom_bid.slot_code))
        for dom_bid in dom.bids:
            partner = (
                self.known_partners.name_for_bidder_code(dom_bid.bidder_code)
                or dom_bid.bidder_code
            )
            add_bid(
                dom_bid.slot_code,
                ObservedBid(
                    partner=partner,
                    bidder_code=dom_bid.bidder_code,
                    slot_code=dom_bid.slot_code,
                    cpm=dom_bid.cpm,
                    size=dom_bid.size,
                    latency_ms=dom_bid.time_to_respond_ms,
                    late=False,
                    won=(dom_bid.bidder_code, dom_bid.slot_code) in winners_from_dom,
                    source="client",
                ),
            )

        # 2. Bids visible only in partner responses (late bids, and all bids on
        #    pages whose wrapper does not emit lifecycle events).
        for exchange in web.exchanges:
            hb_params = exchange.response_hb_params
            if hb_params.is_empty:
                continue
            bidder_code = (
                exchange.response_params.get("bidder")
                or hb_params.global_values.get("hb_bidder")
                or exchange.partner
            )
            for slot_code in hb_params.slot_codes:
                cpm = hb_params.price_for_slot(slot_code)
                if cpm is None:
                    continue
                late = bool(
                    push_time is not None
                    and exchange.response_at_ms is not None
                    and exchange.response_at_ms > push_time
                )
                add_bid(
                    slot_code,
                    ObservedBid(
                        partner=exchange.partner,
                        bidder_code=hb_params.bidder_for_slot(slot_code) or bidder_code,
                        slot_code=slot_code,
                        cpm=cpm,
                        size=hb_params.size_for_slot(slot_code),
                        latency_ms=exchange.latency_ms,
                        late=late,
                        won=False,
                        source="client",
                    ),
                )

        # 3. Winners reported by ad-server / aggregator responses (server-side
        #    and hybrid facets).  Each response names its slot either through
        #    suffixed hb_* keys or through its own ``slot`` parameter.
        for exchange in web.exchanges:
            hb_params = exchange.response_hb_params
            if hb_params.is_empty or "hb_bidder" not in hb_params.global_values:
                continue
            slot_code = exchange.response_params.get("slot", "")
            if not slot_code:
                continue
            bidder_code = hb_params.global_values["hb_bidder"]
            winner_name = self.known_partners.name_for_bidder_code(bidder_code) or bidder_code
            add_bid(
                slot_code,
                ObservedBid(
                    partner=winner_name,
                    bidder_code=bidder_code,
                    slot_code=slot_code,
                    cpm=hb_params.price_for_slot(slot_code),
                    size=hb_params.size_for_slot(slot_code),
                    latency_ms=None,
                    late=False,
                    won=True,
                    source="server",
                ),
            )

        # 4. Slots that only appear in the key-value push (no bid arrived but
        #    an auction clearly ran for them).
        if web.ad_server_push_params is not None:
            for slot_code in web.ad_server_push_params.slot_codes:
                bids_by_slot.setdefault(slot_code, {})
                size = web.ad_server_push_params.size_for_slot(slot_code)
                if size and slot_code not in sizes_by_slot:
                    sizes_by_slot[slot_code] = size
        # 5. Rendered slots with no other trace.
        for slot_code in dom.rendered_slots:
            bids_by_slot.setdefault(slot_code, {})

        auctions = []
        for slot_code, slot_bids in bids_by_slot.items():
            auctions.append(
                ObservedAuction(
                    slot_code=slot_code,
                    size=sizes_by_slot.get(slot_code),
                    bids=tuple(slot_bids.values()),
                    start_ms=start,
                    end_ms=max(end, start),
                    facet=facet,
                )
            )
        return tuple(auctions)

    @staticmethod
    def _auction_start(dom: DomObservations, web: WebRequestObservations) -> float:
        candidates = []
        if web.first_partner_request_at_ms is not None:
            candidates.append(web.first_partner_request_at_ms)
        if dom.auction_started_at_ms is not None:
            candidates.append(dom.auction_started_at_ms)
        for exchange in web.exchanges:
            if exchange.request_at_ms is not None:
                candidates.append(exchange.request_at_ms)
        return min(candidates) if candidates else 0.0

    @staticmethod
    def _auction_end(dom: DomObservations, web: WebRequestObservations, start: float) -> float:
        if web.ad_server_response_at_ms is not None:
            return web.ad_server_response_at_ms
        hb_response_times = [timestamp for _, timestamp, _ in web.hb_responses]
        if hb_response_times:
            return max(hb_response_times)
        if dom.auction_ended_at_ms is not None:
            return dom.auction_ended_at_ms
        exchange_times = [
            exchange.response_at_ms
            for exchange in web.exchanges
            if exchange.response_at_ms is not None
        ]
        if exchange_times:
            return max(exchange_times)
        return start

    def _total_latency(
        self,
        web: WebRequestObservations,
        facet: HBFacet,
        auctions: tuple[ObservedAuction, ...],
    ) -> float | None:
        """Page-level HB latency (first bid request to ad-server response)."""
        if facet is HBFacet.SERVER_SIDE:
            latencies = [
                exchange.latency_ms
                for exchange in web.exchanges
                if exchange.latency_ms is not None and exchange.carries_hb_response
            ]
            if latencies:
                return max(latencies)
            latencies = [
                exchange.latency_ms for exchange in web.exchanges if exchange.latency_ms is not None
            ]
            return max(latencies) if latencies else None
        if not auctions:
            return None
        start = min(auction.start_ms for auction in auctions)
        end = max(auction.end_ms for auction in auctions)
        if end <= start:
            return None
        return end - start
