"""Web-request inspector (detection method 3 of the paper).

The extension's second vantage point is the browser's web-request interface:
every request the page sends and every response it receives, with URL and
parameters, observed passively.  The inspector matches traffic against the
curated known-partner list, extracts ``hb_*`` parameters from requests and
responses, identifies the ad-server push, and measures per-partner round-trip
latencies — all the raw material the combined detector needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.detector.parameters import HBParameterSet, extract_hb_parameters, has_hb_parameters
from repro.detector.partner_list import KnownPartnerList
from repro.models import RequestDirection, WebRequest
from repro.utils.urls import url_host

__all__ = ["WebRequestObservations", "PartnerExchange", "WebRequestInspector"]


@dataclass(frozen=True, slots=True)
class PartnerExchange:
    """One request/response pair attributed to a known HB partner."""

    partner: str
    host: str
    request_at_ms: float | None
    response_at_ms: float | None
    request_params: Mapping[str, str]
    response_params: Mapping[str, str]
    response_hb_params: HBParameterSet

    @property
    def latency_ms(self) -> float | None:
        if self.request_at_ms is None or self.response_at_ms is None:
            return None
        return max(0.0, self.response_at_ms - self.request_at_ms)

    @property
    def carries_hb_response(self) -> bool:
        return not self.response_hb_params.is_empty


@dataclass
class WebRequestObservations:
    """Everything the web-request channel observed on one page."""

    #: Exchanges with known partners, in first-contact order.
    exchanges: list[PartnerExchange] = field(default_factory=list)
    #: The outgoing ad-server push (the request carrying hb_* key-values).
    ad_server_push: WebRequest | None = None
    ad_server_push_params: HBParameterSet | None = None
    #: Response from the ad-server host after the push (if observed).
    ad_server_response_at_ms: float | None = None
    #: Whether the push went to a host on the known-partner list (hybrid /
    #: server-side) or to an unattributable host (client-side, own ad server).
    ad_server_is_known_partner: bool = False
    ad_server_partner: str | None = None
    #: First bid request to any known partner (start of the HB clock).
    first_partner_request_at_ms: float | None = None
    #: Incoming responses carrying hb_* parameters, per partner, with times.
    hb_responses: list[tuple[str, float, HBParameterSet]] = field(default_factory=list)

    @property
    def partners_contacted(self) -> tuple[str, ...]:
        seen: list[str] = []
        for exchange in self.exchanges:
            if exchange.partner not in seen:
                seen.append(exchange.partner)
        return tuple(seen)

    @property
    def partner_latencies_ms(self) -> dict[str, float]:
        """Fastest observed round trip per partner (first exchange wins)."""
        latencies: dict[str, float] = {}
        for exchange in self.exchanges:
            latency = exchange.latency_ms
            if latency is None:
                continue
            latencies.setdefault(exchange.partner, latency)
        return latencies

    @property
    def any_hb_traffic(self) -> bool:
        return bool(self.hb_responses) or self.ad_server_push is not None


class WebRequestInspector:
    """Turns a page's web-request log into :class:`WebRequestObservations`."""

    def __init__(self, known_partners: KnownPartnerList) -> None:
        self._known = known_partners

    def inspect(self, requests: Sequence[WebRequest]) -> WebRequestObservations:
        observations = WebRequestObservations()
        pending: dict[str, tuple[str, WebRequest]] = {}

        for request in requests:
            host = request.host
            partner = self._known.match_host(host)
            if request.direction is RequestDirection.OUTGOING:
                self._on_outgoing(observations, request, host, partner, pending)
            else:
                self._on_incoming(observations, request, host, partner, pending)
        return observations

    # -- direction handlers -------------------------------------------------------
    def _on_outgoing(
        self,
        observations: WebRequestObservations,
        request: WebRequest,
        host: str,
        partner: str | None,
        pending: dict[str, tuple[str, WebRequest]],
    ) -> None:
        carries_hb = has_hb_parameters(request)
        is_win_notification = request.url.endswith("/hb/win") or request.params.get("event") == "win"
        if carries_hb and not is_win_notification and observations.ad_server_push is None:
            # The key-value push to the ad server: the only *outgoing* request
            # that carries hb_* targeting parameters.
            observations.ad_server_push = request
            observations.ad_server_push_params = extract_hb_parameters(request.params)
            observations.ad_server_is_known_partner = partner is not None
            observations.ad_server_partner = partner
            return
        if partner is None:
            return
        if observations.first_partner_request_at_ms is None:
            observations.first_partner_request_at_ms = request.timestamp_ms
        pending.setdefault(host, (partner, request))

    def _on_incoming(
        self,
        observations: WebRequestObservations,
        request: WebRequest,
        host: str,
        partner: str | None,
        pending: dict[str, tuple[str, WebRequest]],
    ) -> None:
        hb_params = extract_hb_parameters(request.params)
        if observations.ad_server_push is not None:
            push_host = url_host(observations.ad_server_push.url)
            if host == push_host and request.timestamp_ms >= observations.ad_server_push.timestamp_ms:
                if observations.ad_server_response_at_ms is None:
                    observations.ad_server_response_at_ms = request.timestamp_ms
        if partner is None:
            return
        if not hb_params.is_empty:
            observations.hb_responses.append((partner, request.timestamp_ms, hb_params))
        outgoing = pending.pop(host, None)
        if outgoing is not None:
            known_partner, original = outgoing
            observations.exchanges.append(
                PartnerExchange(
                    partner=known_partner,
                    host=host,
                    request_at_ms=original.timestamp_ms,
                    response_at_ms=request.timestamp_ms,
                    request_params=dict(original.params),
                    response_params=dict(request.params),
                    response_hb_params=hb_params,
                )
            )
        else:
            observations.exchanges.append(
                PartnerExchange(
                    partner=partner,
                    host=host,
                    request_at_ms=None,
                    response_at_ms=request.timestamp_ms,
                    request_params={},
                    response_params=dict(request.params),
                    response_hb_params=hb_params,
                )
            )
