"""Tiny stdlib client for the campaign service.

``urllib.request`` only — the same zero-dependency rule as the server.  Used
by the test suite, ``examples/service_client.py`` and
``benchmarks/service.py``; handy interactively too::

    from repro.service.client import ServiceClient
    client = ServiceClient("http://127.0.0.1:8710")
    campaign = client.submit({"sites": 40, "days": 1, "seed": 7})
    client.wait(campaign["id"])
    print(client.artifact_text(campaign["id"], "table1"))

Every non-2xx response raises :class:`ServiceClientError` carrying the
status code and the server's decoded JSON error body.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterator, Mapping
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """A service request failed (non-2xx status or unreachable server)."""

    def __init__(self, message: str, *, status: int | None = None, body: Any = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body


class ServiceClient:
    """Thin JSON-over-HTTP wrapper around one campaign service."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        *,
        params: Mapping[str, Any] | None = None,
        body: Any = None,
        timeout: float | None = None,
    ):
        url = self.base_url + path
        if params:
            url += "?" + urlencode({k: v for k, v in params.items() if v is not None})
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(url, data=data, headers=headers, method=method)
        try:
            return urlopen(request, timeout=timeout or self.timeout)
        except HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = raw.decode("utf-8", "replace")
            detail = payload.get("error", payload) if isinstance(payload, dict) else payload
            raise ServiceClientError(
                f"{method} {path} -> {exc.code}: {detail}", status=exc.code, body=payload
            ) from None
        except URLError as exc:
            raise ServiceClientError(f"{method} {path} failed: {exc.reason}") from None

    def _json(self, method: str, path: str, **kwargs: Any) -> Any:
        with self._request(method, path, **kwargs) as response:
            return json.loads(response.read().decode("utf-8"))

    # -- campaign lifecycle -------------------------------------------------------
    def index(self) -> dict[str, Any]:
        return self._json("GET", "/")

    def submit(self, config: Mapping[str, Any]) -> dict[str, Any]:
        """POST a campaign config (field names or CLI aliases), return it."""
        return self._json("POST", "/campaigns", body=dict(config))

    def campaigns(self) -> list[dict[str, Any]]:
        return self._json("GET", "/campaigns")["campaigns"]

    def campaign(self, campaign_id: str) -> dict[str, Any]:
        return self._json("GET", f"/campaigns/{campaign_id}")

    def cancel(self, campaign_id: str) -> dict[str, Any]:
        return self._json("DELETE", f"/campaigns/{campaign_id}")

    def resume(self, campaign_id: str) -> dict[str, Any]:
        return self._json("POST", f"/campaigns/{campaign_id}/resume")

    def tick(
        self,
        campaign_id: str,
        *,
        metrics: tuple[str, ...] | list[str] | None = None,
        thresholds: tuple[str, ...] | list[str] | None = None,
        retention_days: int | None = None,
    ) -> dict[str, Any]:
        """Extend a finished campaign by one crawl day (a recrawl-daemon tick)."""
        body: dict[str, Any] = {}
        if metrics is not None:
            body["metrics"] = list(metrics)
        if thresholds is not None:
            body["thresholds"] = list(thresholds)
        if retention_days is not None:
            body["retention_days"] = retention_days
        return self._json(
            "POST", f"/campaigns/{campaign_id}/ticks", body=body or None
        )

    def wait(
        self, campaign_id: str, *, timeout: float = 120.0, interval: float = 0.1
    ) -> dict[str, Any]:
        """Poll until the campaign reaches done/failed/cancelled."""
        deadline = time.monotonic() + timeout
        while True:
            campaign = self.campaign(campaign_id)
            if campaign["state"] in ("done", "failed", "cancelled"):
                return campaign
            if time.monotonic() > deadline:
                raise ServiceClientError(
                    f"campaign {campaign_id} still {campaign['state']} after {timeout:.0f}s"
                )
            time.sleep(interval)

    # -- reads ------------------------------------------------------------------
    def detections(self, campaign_id: str, **filters: Any) -> dict[str, Any]:
        """Filtered, paginated detections (partner/facet/crawl_day/rank_bin/...)."""
        return self._json("GET", f"/campaigns/{campaign_id}/detections", params=filters)

    def iter_detections(
        self, campaign_id: str, *, page_size: int = 200, **filters: Any
    ) -> Iterator[dict[str, Any]]:
        """Walk every matching detection across pages."""
        offset = 0
        while True:
            page = self.detections(
                campaign_id, limit=page_size, offset=offset, **filters
            )
            yield from page["items"]
            offset += page["count"]
            if offset >= page["total"] or page["count"] == 0:
                return

    def artifact(self, campaign_id: str, name: str) -> dict[str, Any]:
        """A registered metric as JSON (data + rendered text)."""
        return self._json("GET", f"/campaigns/{campaign_id}/artifacts/{name}")

    def artifact_text(self, campaign_id: str, name: str) -> str:
        """A metric rendered exactly as ``hbrepro analyze`` prints it."""
        with self._request(
            "GET", f"/campaigns/{campaign_id}/artifacts/{name}", params={"format": "text"}
        ) as response:
            return response.read().decode("utf-8")

    def download(self, campaign_id: str, name: str = "detections.jsonl") -> bytes:
        """Raw artifact bytes (default: the campaign's detection sink file)."""
        with self._request("GET", f"/campaigns/{campaign_id}/artifacts/{name}") as response:
            return response.read()

    # -- events -----------------------------------------------------------------
    def events(
        self,
        campaign_id: str,
        *,
        artifacts: tuple[str, ...] = (),
        interval: float | None = None,
        timeout: float | None = None,
        keepalive: float | None = None,
        read_timeout: float = 600.0,
    ) -> Iterator[tuple[str, Any]]:
        """Iterate the campaign's SSE stream as ``(event, payload)`` pairs.

        Terminates when the server closes the stream (after the final
        ``state`` event, or a server-side ``timeout`` event).  The server's
        ``: keepalive`` comment lines are consumed silently, as the SSE spec
        prescribes.
        """
        params = [("artifact", name) for name in artifacts]
        if interval is not None:
            params.append(("interval", str(interval)))
        if timeout is not None:
            params.append(("timeout", str(timeout)))
        if keepalive is not None:
            params.append(("keepalive", str(keepalive)))
        query = "?" + urlencode(params) if params else ""
        url = f"{self.base_url}/campaigns/{campaign_id}/events{query}"
        request = Request(url, headers={"Accept": "text/event-stream"})
        try:
            stream = urlopen(request, timeout=read_timeout)
        except HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = raw.decode("utf-8", "replace")
            raise ServiceClientError(
                f"GET events -> {exc.code}: {payload}", status=exc.code, body=payload
            ) from None
        with stream:
            event: str | None = None
            data_lines: list[str] = []
            for raw_line in stream:
                line = raw_line.decode("utf-8").rstrip("\n")
                if line.startswith("event: "):
                    event = line[len("event: ") :]
                elif line.startswith("data: "):
                    data_lines.append(line[len("data: ") :])
                elif line == "" and event is not None:
                    payload = json.loads("\n".join(data_lines)) if data_lines else None
                    yield event, payload
                    event, data_lines = None, []

    def stream_to_completion(
        self,
        campaign_id: str,
        *,
        artifacts: tuple[str, ...] = (),
        interval: float | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Follow the SSE stream until it ends; return the collected tail.

        The result maps ``"state"`` to the final campaign dict, ``"metrics"``
        to the last metrics payload seen (the final snapshot when artifacts
        were requested), ``"progress"`` to every progress payload and
        ``"alerts"`` to every regression alert streamed.
        """
        out: dict[str, Any] = {"state": None, "metrics": None, "progress": [], "alerts": []}
        for event, payload in self.events(
            campaign_id, artifacts=artifacts, interval=interval, timeout=timeout
        ):
            if event == "progress":
                out["progress"].append(payload)
            elif event == "metrics":
                out["metrics"] = payload
            elif event == "alert":
                out["alerts"].append(payload)
            elif event == "state":
                out["state"] = payload
        return out
