"""Crawl-as-a-service: the HTTP campaign server and its supporting layers.

Layered strictly as routes → services → store:

- :mod:`repro.service.api` — the stdlib ``ThreadingHTTPServer`` route layer
  (JSON in/out, SSE streaming, error mapping);
- :mod:`repro.service.campaigns` — the :class:`CampaignManager` running
  submitted :class:`~repro.experiments.config.ExperimentConfig` campaigns on
  background threads through the existing crawler/checkpoint machinery;
- :mod:`repro.service.store` — the thread-safe :class:`DetectionStore`
  answering filtered detection queries and metric snapshots over a
  campaign's streaming sink;
- :mod:`repro.service.client` — a ``urllib``-only :class:`ServiceClient`
  for tests, examples and benchmarks.

Start a server with ``hbrepro serve`` or, in-process::

    from repro.service import running_server
    with running_server("/tmp/campaigns") as server:
        ...  # hit server.base_url
"""

from repro.service.api import ReproServiceServer, running_server
from repro.service.campaigns import Campaign, CampaignManager
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.store import DetectionQuery, DetectionStore

__all__ = [
    "Campaign",
    "CampaignManager",
    "DetectionQuery",
    "DetectionStore",
    "ReproServiceServer",
    "ServiceClient",
    "ServiceClientError",
    "running_server",
]
