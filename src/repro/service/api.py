"""The HTTP face of the crawl service.

Stdlib-only (``http.server.ThreadingHTTPServer``): one handler thread per
request, layered strictly as routes (this module: parse URL/body, serialise
JSON) → services (:class:`~repro.service.campaigns.CampaignManager`) → store
(:class:`~repro.service.store.DetectionStore`).

Routes
------
==========================================  =============================================
``POST /campaigns``                         submit an ``ExperimentConfig`` JSON body
``GET /campaigns``                          list campaigns (submission order)
``GET /campaigns/{id}``                     one campaign's state/counters/links
``DELETE /campaigns/{id}``                  cancel (leaves a resumable checkpoint)
``POST /campaigns/{id}/resume``             continue a cancelled/failed campaign
``POST /campaigns/{id}/ticks``              extend a finished campaign by one crawl
                                            day (a recrawl-daemon tick; optional JSON
                                            body with ``metrics``/``thresholds``)
``GET /campaigns/{id}/detections``          filtered + paginated detection query
``GET /campaigns/{id}/artifacts/{name}``    any registered metric (``?format=text``
                                            for the exact CLI rendering), or the raw
                                            sink via name ``detections.jsonl``
``GET /campaigns/{id}/events``              server-sent events: progress + live
                                            metric snapshots while the crawl runs,
                                            ``alert`` events from the campaign's
                                            regression alert log, and ``: keepalive``
                                            comments while idle
``GET /``                                   service description
==========================================  =============================================

Every error — bad submission, unknown campaign/metric, invalid filter —
returns a JSON body ``{"error": {"type": ..., "message": ...}}`` with a 4xx
status; stack traces never cross the wire.
"""

from __future__ import annotations

import enum
import json
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Iterator, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.analysis.registry import get_metric, metric_names
from repro.errors import (
    CampaignStateError,
    ConfigurationError,
    EmptyDatasetError,
    MetricContextError,
    ReproError,
    ServiceError,
    UnknownCampaignError,
    UnknownMetricError,
)
from repro.service.campaigns import CampaignManager, campaign_config_from_dict
from repro.service.store import DetectionQuery

__all__ = ["ReproServiceServer", "running_server", "DEFAULT_EVENT_INTERVAL"]

#: Default SSE polling interval (seconds) between sink staleness probes.
DEFAULT_EVENT_INTERVAL = 0.5

#: Default idle interval (seconds) after which an SSE stream with nothing to
#: say writes a ``: keepalive`` comment line, so proxies and keep-alive
#: clients do not time the connection out during long gaps (a daemon-grown
#: campaign idles between crawl days).  Clients tune it with ``?keepalive=``.
DEFAULT_KEEPALIVE_INTERVAL = 15.0

#: Hard ceiling on one SSE connection's lifetime, so an abandoned stream
#: cannot pin a handler thread forever.  Clients pass ``?timeout=`` to lower it.
MAX_EVENT_SECONDS = 3600.0

#: Artifact name that serves the campaign's raw JSON-Lines sink bytes —
#: byte-identical to the file a direct ``repro run --save`` writes.
RAW_SINK_ARTIFACT = "detections.jsonl"

#: Exception → HTTP status, first match wins (subclasses before bases).
_ERROR_STATUS: tuple[tuple[type[Exception], int], ...] = (
    (UnknownCampaignError, 404),
    (UnknownMetricError, 404),
    (CampaignStateError, 409),
    (EmptyDatasetError, 409),
    (MetricContextError, 400),
    (ServiceError, 400),
    (ConfigurationError, 400),
    (ReproError, 400),
)


def _error_status(exc: Exception) -> int:
    for exc_type, status in _ERROR_STATUS:
        if isinstance(exc, exc_type):
            return status
    return 500


def _jsonable(value: Any) -> Any:
    """Recursively coerce a metric payload into JSON-encodable data.

    Metric ``data`` mappings are free to use enum keys (facets), tuples and
    numpy scalars/arrays; JSON allows none of those, so they are flattened
    here — enum → value, numpy → ``item()``/``tolist()``, any other object →
    ``str``.
    """
    if isinstance(value, enum.Enum):
        return _jsonable(value.value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {_json_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _jsonable(tolist())
    return str(value)


def _json_key(key: Any) -> str:
    if isinstance(key, enum.Enum):
        key = key.value
    return key if isinstance(key, str) else str(key)


def _tail_alerts(path: Path, offset: int) -> tuple[list[dict], int]:
    """Complete JSONL alert records past ``offset``, plus the new offset.

    Reads only whole lines — a half-appended record stays for the next poll —
    so an SSE stream tailing the log never emits a torn alert.
    """
    try:
        size = path.stat().st_size
    except OSError:
        return [], offset
    if size <= offset:
        return [], offset
    with path.open("rb") as handle:
        handle.seek(offset)
        chunk = handle.read()
    end = chunk.rfind(b"\n")
    if end < 0:
        return [], offset
    records = []
    for line in chunk[: end + 1].splitlines():
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records, offset + end + 1


def _offline_metric_names() -> list[str]:
    """Metrics a campaign store can serve (dataset-only requirements)."""
    return [
        name for name in metric_names() if set(get_metric(name).requires) <= {"dataset"}
    ]


class ReproServiceServer(ThreadingHTTPServer):
    """The campaign service: a threading HTTP server owning one manager."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        *,
        data_dir: str | Path,
        max_parallel: int = 1,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _ServiceHandler)
        self.manager = CampaignManager(data_dir, max_parallel=max_parallel)
        self.verbose = verbose
        self.started_at = time.time()

    @property
    def base_url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self, *, grace: float = 30.0) -> None:
        """Graceful teardown: checkpoint in-flight crawls, then close sockets."""
        self.manager.shutdown(timeout=grace)
        self.server_close()


class _ServiceHandler(BaseHTTPRequestHandler):
    """Route layer: URL/body parsing in, JSON out, nothing else."""

    protocol_version = "HTTP/1.1"
    server: ReproServiceServer  # narrowed for type checkers

    # -- plumbing ---------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, indent=2, sort_keys=False).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, exc: Exception) -> None:
        message = str(exc) if status < 500 else "internal server error"
        self._send_json(status, {"error": {"type": type(exc).__name__, "message": message}})

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("request body is empty; expected a JSON object")
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    def _route(self) -> tuple[list[str], dict[str, list[str]]]:
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        return parts, parse_qs(split.query, keep_blank_values=True)

    def _dispatch(self, handler, *args: Any) -> None:
        try:
            handler(*args)
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - every error becomes JSON
            try:
                self._send_error_json(_error_status(exc), exc)
            except (BrokenPipeError, ConnectionResetError):
                pass

    # -- verbs ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parts, params = self._route()
        if not parts:
            return self._dispatch(self._get_index)
        if parts[0] != "campaigns":
            return self._dispatch(self._not_found)
        if len(parts) == 1:
            return self._dispatch(self._get_campaigns)
        if len(parts) == 2:
            return self._dispatch(self._get_campaign, parts[1])
        if len(parts) == 3 and parts[2] == "detections":
            return self._dispatch(self._get_detections, parts[1], params)
        if len(parts) == 4 and parts[2] == "artifacts":
            return self._dispatch(self._get_artifact, parts[1], parts[3], params)
        if len(parts) == 3 and parts[2] == "events":
            return self._dispatch(self._get_events, parts[1], params)
        return self._dispatch(self._not_found)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        parts, _ = self._route()
        if parts == ["campaigns"]:
            return self._dispatch(self._post_campaign)
        if len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "resume":
            return self._dispatch(self._post_resume, parts[1])
        if len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "ticks":
            return self._dispatch(self._post_tick, parts[1])
        return self._dispatch(self._not_found)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        parts, _ = self._route()
        if len(parts) == 2 and parts[0] == "campaigns":
            return self._dispatch(self._delete_campaign, parts[1])
        return self._dispatch(self._not_found)

    # -- route implementations ---------------------------------------------------
    def _not_found(self) -> None:
        self._send_json(
            404, {"error": {"type": "NotFound", "message": f"no route for {self.path}"}}
        )

    def _get_index(self) -> None:
        manager = self.server.manager
        self._send_json(
            200,
            {
                "service": "hbrepro campaign service",
                "uptime_s": time.time() - self.server.started_at,
                "campaigns": manager.states(),
                "artifacts": _offline_metric_names() + [RAW_SINK_ARTIFACT],
                "endpoints": [
                    "POST /campaigns",
                    "GET /campaigns",
                    "GET /campaigns/{id}",
                    "DELETE /campaigns/{id}",
                    "POST /campaigns/{id}/resume",
                    "POST /campaigns/{id}/ticks",
                    "GET /campaigns/{id}/detections",
                    "GET /campaigns/{id}/artifacts/{name}",
                    "GET /campaigns/{id}/events",
                ],
            },
        )

    def _post_campaign(self) -> None:
        config = campaign_config_from_dict(self._read_json_body())
        campaign = self.server.manager.submit(config)
        self._send_json(201, campaign.to_dict())

    def _post_resume(self, campaign_id: str) -> None:
        campaign = self.server.manager.resume(campaign_id)
        self._send_json(202, campaign.to_dict())

    def _post_tick(self, campaign_id: str) -> None:
        """Extend a finished campaign by one crawl day (a daemon tick).

        The optional JSON body tunes the tick: ``metrics`` (watched
        dataset-only metric names), ``thresholds`` (regression rules,
        ``metric.field:kind=value``) and ``retention_days``.  Alerts the
        tick emits land in the campaign's alert log and stream over
        ``/events`` as ``alert`` events.
        """
        length = int(self.headers.get("Content-Length") or 0)
        body = self._read_json_body() if length else {}
        if not isinstance(body, Mapping):
            raise ServiceError("a tick body must be a JSON object")
        unknown = set(body) - {"metrics", "thresholds", "retention_days"}
        if unknown:
            raise ServiceError(f"unknown tick fields: {sorted(unknown)}")
        metrics = body.get("metrics", ["table1"])
        thresholds = body.get("thresholds", [])
        if not isinstance(metrics, list) or not all(isinstance(m, str) for m in metrics):
            raise ServiceError("tick field 'metrics' must be a list of metric names")
        if not isinstance(thresholds, list) or not all(isinstance(t, str) for t in thresholds):
            raise ServiceError(
                "tick field 'thresholds' must be a list of metric.field:kind=value rules"
            )
        retention = body.get("retention_days")
        if retention is not None and (not isinstance(retention, int) or retention < 1):
            raise ServiceError("tick field 'retention_days' must be a positive integer")
        campaign, day = self.server.manager.tick(
            campaign_id,
            metrics=tuple(metrics),
            thresholds=tuple(thresholds),
            retention_days=retention,
        )
        self._send_json(202, {**campaign.to_dict(), "tick_day": day})

    def _delete_campaign(self, campaign_id: str) -> None:
        campaign = self.server.manager.cancel(campaign_id)
        self._send_json(202, campaign.to_dict())

    def _get_campaigns(self) -> None:
        campaigns = self.server.manager.list()
        self._send_json(200, {"campaigns": [c.to_dict() for c in campaigns]})

    def _get_campaign(self, campaign_id: str) -> None:
        campaign = self.server.manager.get(campaign_id)
        self._send_json(200, campaign.to_dict())

    def _get_detections(self, campaign_id: str, params: dict[str, list[str]]) -> None:
        campaign = self.server.manager.get(campaign_id)
        flat = {key: values[-1] for key, values in params.items()}
        query = DetectionQuery.from_params(flat)
        campaign.store.refresh()
        self._send_json(200, campaign.store.query(query))

    def _get_artifact(self, campaign_id: str, name: str, params: dict[str, list[str]]) -> None:
        campaign = self.server.manager.get(campaign_id)
        # The campaign's own sink file name (detections.jsonl, or
        # detections.hbc for a columnar campaign) serves the raw sink bytes.
        if name == campaign.sink_path.name:
            path = campaign.sink_path
            body = path.read_bytes() if path.exists() else b""
            content_type = (
                "application/x-ndjson" if name == RAW_SINK_ARTIFACT else "application/octet-stream"
            )
            return self._send_bytes(200, body, content_type)
        fmt = params.get("format", ["json"])[-1]
        if fmt not in ("json", "text"):
            raise ServiceError(f"unknown artifact format {fmt!r}; expected json or text")
        campaign.store.refresh()
        result = campaign.store.compute_artifact(name)
        if fmt == "text":
            return self._send_bytes(
                200, result.text.encode("utf-8") + b"\n", "text/plain; charset=utf-8"
            )
        self._send_json(
            200,
            {
                "campaign": campaign.id,
                "name": result.name,
                "title": result.title,
                "ref": result.ref,
                "params": _jsonable(result.params),
                "data": _jsonable(result.data),
                "text": result.text,
            },
        )

    # -- server-sent events --------------------------------------------------------
    def _get_events(self, campaign_id: str, params: dict[str, list[str]]) -> None:
        """Stream ``progress`` / ``metrics`` / ``alert`` / ``fault`` / ``state`` events.

        Each poll round probes the sink with ``size()``; when new bytes have
        been flushed, the newly-completed records are folded into the
        campaign's store (O(Δ) index upkeep, the ``analyze --watch``
        machinery) and one ``progress`` event — plus one ``metrics`` snapshot
        per requested artifact set — is emitted.  The campaign's regression
        alert log (``alerts.jsonl``, written by daemon ticks) is tailed the
        same way: every record streams exactly once per connection as an
        ``alert`` event, existing records first.  The engine's supervision
        event log (``faults.jsonl``: shard retries, pool rebuilds,
        quarantines) streams identically as ``fault`` events.  When a poll round has
        nothing to say for ``?keepalive=`` seconds, a ``: keepalive`` SSE
        comment line is written so idle streams survive proxies and client
        read timeouts.  The stream always ends with a final ``metrics``
        snapshot over the finished dataset and one ``state`` event, then
        closes.
        """
        manager = self.server.manager
        campaign = manager.get(campaign_id)
        artifact_names = params.get("artifact", [])
        for name in artifact_names:
            metric = get_metric(name)  # raises UnknownMetricError -> 404
            if not set(metric.requires) <= {"dataset"}:
                raise MetricContextError(name, tuple(set(metric.requires) - {"dataset"}))
        try:
            interval = float(params.get("interval", [str(DEFAULT_EVENT_INTERVAL)])[-1])
        except ValueError:
            raise ServiceError("query parameter 'interval' must be a number") from None
        interval = min(max(interval, 0.02), 30.0)
        try:
            timeout = float(params.get("timeout", [str(MAX_EVENT_SECONDS)])[-1])
        except ValueError:
            raise ServiceError("query parameter 'timeout' must be a number") from None
        timeout = min(max(timeout, interval), MAX_EVENT_SECONDS)
        try:
            keepalive = float(
                params.get("keepalive", [str(DEFAULT_KEEPALIVE_INTERVAL)])[-1]
            )
        except ValueError:
            raise ServiceError("query parameter 'keepalive' must be a number") from None
        keepalive = min(max(keepalive, 0.02), MAX_EVENT_SECONDS)

        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True

        deadline = time.monotonic() + timeout
        store = campaign.store
        alert_offset = 0
        fault_offset = 0

        def drain_alerts() -> bool:
            nonlocal alert_offset
            alerts, alert_offset = _tail_alerts(campaign.alert_log_path, alert_offset)
            for alert in alerts:
                self._emit("alert", {"campaign": campaign.id, **alert})
            return bool(alerts)

        def drain_faults() -> bool:
            # The engine's supervision event log (retries, pool rebuilds,
            # quarantines) streams through the same whole-lines-only tail as
            # the alert log.
            nonlocal fault_offset
            faults, fault_offset = _tail_alerts(campaign.fault_log_path, fault_offset)
            for fault in faults:
                self._emit("fault", {"campaign": campaign.id, **fault})
            return bool(faults)

        try:
            self._emit("progress", self._progress_payload(campaign, fresh=0))
            last_emit = time.monotonic()
            while True:
                emitted = drain_alerts()
                emitted = drain_faults() or emitted
                fresh = store.refresh()
                finished = campaign.terminal and store.drained()
                if fresh:
                    emitted = True
                    self._emit("progress", self._progress_payload(campaign, fresh=fresh))
                    if artifact_names and not finished:
                        self._emit("metrics", self._metrics_payload(campaign, artifact_names, final=False))
                if finished:
                    # A tick appends its last alerts just before the campaign
                    # flips terminal; drain anything that landed since the
                    # check above so no alert or fault event is lost to the
                    # close.
                    drain_alerts()
                    drain_faults()
                    if artifact_names:
                        self._emit("metrics", self._metrics_payload(campaign, artifact_names, final=True))
                    self._emit("state", campaign.to_dict(refresh=False))
                    return
                if time.monotonic() > deadline:
                    self._emit("timeout", {"campaign": campaign.id, "state": campaign.state})
                    return
                now = time.monotonic()
                if emitted:
                    last_emit = now
                elif now - last_emit >= keepalive:
                    # An SSE comment line: ignored by every spec-compliant
                    # client, but keeps the connection visibly alive.
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    last_emit = now
                time.sleep(interval)
        except (BrokenPipeError, ConnectionResetError):
            return

    def _progress_payload(self, campaign, *, fresh: int) -> dict[str, Any]:
        return {
            "campaign": campaign.id,
            "state": campaign.state,
            "detections": campaign.store.count,
            "new": fresh,
            "sink_bytes": campaign.store.storage.size(),
        }

    def _metrics_payload(self, campaign, names: list[str], *, final: bool) -> dict[str, Any]:
        try:
            snapshot = campaign.store.snapshot(names)
        except ReproError as exc:
            return {"campaign": campaign.id, "final": final, "error": str(exc)}
        return {
            "campaign": campaign.id,
            "final": final,
            "detections": campaign.store.count,
            "artifacts": snapshot,
        }

    def _emit(self, event: str, payload: Any) -> None:
        data = json.dumps(payload, sort_keys=False)
        self.wfile.write(f"event: {event}\ndata: {data}\n\n".encode("utf-8"))
        self.wfile.flush()


@contextmanager
def running_server(
    data_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_parallel: int = 1,
    verbose: bool = False,
    grace: float = 30.0,
) -> Iterator[ReproServiceServer]:
    """Run a service on a background thread (tests, benchmarks, examples).

    Yields the listening server (``server.base_url`` is ready to hit); on
    exit the manager checkpoints and joins in-flight campaigns before the
    sockets close.
    """
    server = ReproServiceServer(
        (host, port), data_dir=data_dir, max_parallel=max_parallel, verbose=verbose
    )
    thread = threading.Thread(target=server.serve_forever, name="repro-service", daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=10.0)
        server.close(grace=grace)
