"""Campaign lifecycle management.

The campaign manager is the service's write side: it accepts
:class:`~repro.experiments.config.ExperimentConfig` submissions, runs each
campaign on a background thread through the existing
:class:`~repro.experiments.runner.ExperimentRunner` / checkpoint machinery,
and tracks the state machine

    queued -> running -> done
                      -> failed
    queued/running ----> cancelled        (resumable)
    cancelled/failed --> queued           (resume())

Every campaign gets its own working directory under the manager's root with
the streaming sink (``detections.jsonl``), the shard-boundary checkpoint
(``crawl.ckpt``) and a ``campaign.json`` record of the submitted
configuration.  Cancellation is cooperative and crash-equivalent: a flag is
raised and the campaign's sink throws :class:`~repro.errors.CampaignCancelled`
at the next detection write, unwinding the crawl through the same path a
SIGKILL would — the last shard-boundary checkpoint survives, so
:meth:`CampaignManager.resume` continues the campaign byte-identically (the
PR-4 resume guarantee).  :meth:`CampaignManager.shutdown` cancels everything
in flight the same way, which is what makes stopping the server graceful.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.crawler.colstore import ColumnarDetectionSink, ColumnarStorage
from repro.crawler.storage import CrawlStorage, DetectionSink
from repro.errors import (
    CampaignCancelled,
    CampaignStateError,
    ConfigurationError,
    ReproError,
    ServiceError,
    UnknownCampaignError,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.service.store import DetectionStore

__all__ = [
    "CAMPAIGN_STATES",
    "TERMINAL_STATES",
    "Campaign",
    "CampaignManager",
    "campaign_config_from_dict",
    "campaign_config_to_dict",
]

#: Every state a campaign can be in.
CAMPAIGN_STATES = ("queued", "running", "done", "failed", "cancelled")
#: States a campaign never leaves on its own (``resume()`` can re-queue
#: ``failed`` and ``cancelled``).
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Submission keys accepted as shorthand for the config field they set
#: (mirroring the CLI flag names, so a curl body reads like a run command).
_CONFIG_ALIASES = {
    "sites": "total_sites",
    "days": "recrawl_days",
    "backend": "crawl_backend",
    "flush_every": "sink_flush_every",
    "oversubscribe": "shard_oversubscribe",
}

#: Config fields the server owns; a submission naming them is rejected.
#: (Each campaign's supervision event log always lands in its own workdir.)
_SERVER_MANAGED = ("checkpoint_path", "resume", "fault_log")


def campaign_config_from_dict(data: Any) -> ExperimentConfig:
    """Parse a JSON submission body into an :class:`ExperimentConfig`.

    Accepts the dataclass field names plus the CLI-style aliases (``sites``,
    ``days``, ``backend``, ``flush_every``, ``oversubscribe``).  Unknown
    keys, server-managed keys and invalid values all raise
    :class:`ServiceError` / :class:`ConfigurationError`, which the API layer
    turns into a 400 with a JSON error body.
    """
    if not isinstance(data, Mapping):
        raise ServiceError("a campaign submission must be a JSON object of config fields")
    known = {f.name for f in dataclasses.fields(ExperimentConfig)}
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        name = _CONFIG_ALIASES.get(key, key)
        if name in _SERVER_MANAGED:
            raise ServiceError(
                f"config field {key!r} is managed by the service (each campaign "
                f"gets its own checkpoint; use POST /campaigns/<id>/resume)"
            )
        if name not in known:
            raise ServiceError(f"unknown campaign config field: {key!r}")
        if name in kwargs:
            raise ServiceError(f"campaign config field {name!r} given twice")
        kwargs[name] = value
    if "historical_years" in kwargs:
        years = kwargs["historical_years"]
        if not isinstance(years, (list, tuple)):
            raise ServiceError("historical_years must be a list of integers")
        try:
            kwargs["historical_years"] = tuple(int(y) for y in years)
        except (TypeError, ValueError):
            raise ServiceError("historical_years must be a list of integers") from None
    try:
        return ExperimentConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        # Wrong JSON types surface as TypeError/ValueError inside the
        # dataclass validation; ConfigurationError (a ReproError) passes
        # through untouched.
        raise ServiceError(f"invalid campaign config: {exc}") from exc


def campaign_config_to_dict(config: ExperimentConfig) -> dict[str, Any]:
    """The JSON form of a config (tuples listified, server-managed dropped)."""
    out = dataclasses.asdict(config)
    out["historical_years"] = list(out["historical_years"])
    for name in _SERVER_MANAGED:
        out.pop(name, None)
    return out


class _CancellableSink(DetectionSink):
    """A detection sink that aborts the crawl once its campaign is cancelled.

    The engine writes every detection through the sink, so checking a flag
    here cancels any backend — serial, thread or process — at page/shard
    granularity without touching the engine: the raise unwinds through the
    engine's normal error path, after the last completed shard boundary was
    checkpointed and flushed.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        cancel_event: threading.Event,
        append: bool = False,
        flush_every: int = DetectionSink.DEFAULT_FLUSH_EVERY,
    ) -> None:
        super().__init__(path, append=append, flush_every=flush_every)
        self._cancel_event = cancel_event

    def write(self, detection) -> None:
        if self._cancel_event.is_set():
            raise CampaignCancelled(f"campaign sink {self.path} was cancelled")
        super().write(detection)


class _CancellableStorage(CrawlStorage):
    """Storage whose sinks observe a campaign's cancel flag.

    :meth:`ExperimentRunner.run` opens the sink itself from the storage it
    is handed, so cancellation plugs in here rather than in the runner.
    """

    def __init__(self, path: str | Path, cancel_event: threading.Event) -> None:
        super().__init__(path)
        self._cancel_event = cancel_event

    def open_sink(
        self,
        *,
        append: bool = False,
        flush_every: int = DetectionSink.DEFAULT_FLUSH_EVERY,
    ) -> DetectionSink:
        return _CancellableSink(
            self.path,
            cancel_event=self._cancel_event,
            append=append,
            flush_every=flush_every,
        )


class _CancellableColumnarSink(ColumnarDetectionSink):
    """The columnar twin of :class:`_CancellableSink`."""

    def __init__(
        self,
        path: str | Path,
        *,
        cancel_event: threading.Event,
        append: bool = False,
        flush_every: int = DetectionSink.DEFAULT_FLUSH_EVERY,
    ) -> None:
        super().__init__(path, append=append, flush_every=flush_every)
        self._cancel_event = cancel_event

    def write(self, detection) -> None:
        if self._cancel_event.is_set():
            raise CampaignCancelled(f"campaign sink {self.path} was cancelled")
        super().write(detection)


class _CancellableColumnarStorage(ColumnarStorage):
    """The columnar twin of :class:`_CancellableStorage`."""

    def __init__(self, path: str | Path, cancel_event: threading.Event) -> None:
        super().__init__(path)
        self._cancel_event = cancel_event

    def open_sink(
        self,
        *,
        append: bool = False,
        flush_every: int = DetectionSink.DEFAULT_FLUSH_EVERY,
    ) -> ColumnarDetectionSink:
        return _CancellableColumnarSink(
            self.path,
            cancel_event=self._cancel_event,
            append=append,
            flush_every=flush_every,
        )


def _cancellable_storage(path: Path, store_format: str, cancel_event: threading.Event):
    if store_format == "columnar":
        return _CancellableColumnarStorage(path, cancel_event)
    return _CancellableStorage(path, cancel_event)


def _supervision_counts(longitudinal) -> dict[str, int]:
    """Aggregate a run's supervision counters across all its phases."""
    results = [longitudinal.discovery, *longitudinal.daily_results]
    return {
        "retries": sum(r.retries for r in results),
        "pool_rebuilds": sum(r.pool_rebuilds for r in results),
        "sink_retries": sum(r.sink_retries for r in results),
        "quarantined": sum(len(r.quarantined_shards) for r in results),
    }


@dataclass
class Campaign:
    """One submitted measurement campaign and its run-side state."""

    id: str
    config: ExperimentConfig
    workdir: Path
    state: str = "queued"
    error: str | None = None
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: How many times the campaign has been (re-)queued; 1 for a fresh run.
    runs: int = 0
    #: Supervision counters from the last finished run (retries,
    #: pool_rebuilds, sink_retries, quarantined); empty until a run ends.
    supervision: dict[str, int] = field(default_factory=dict)
    store: DetectionStore = field(init=False, repr=False)
    _cancel: threading.Event = field(default_factory=threading.Event, init=False, repr=False)
    _thread: threading.Thread | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.store = DetectionStore(self.sink_path, label=self.id)

    @property
    def sink_path(self) -> Path:
        name = "detections.hbc" if self.config.store_format == "columnar" else "detections.jsonl"
        return self.workdir / name

    @property
    def checkpoint_path(self) -> Path:
        return self.workdir / "crawl.ckpt"

    @property
    def alert_log_path(self) -> Path:
        """The recrawl daemon's append-only regression alert log."""
        return self.workdir / "alerts.jsonl"

    @property
    def fault_log_path(self) -> Path:
        """The crawl engine's append-only supervision event log."""
        return self.workdir / "faults.jsonl"

    @property
    def alert_count(self) -> int:
        # Only newline-terminated lines count: the daemon may be mid-append,
        # and a torn final line is not yet an alert.
        try:
            with self.alert_log_path.open("rb") as handle:
                return sum(1 for line in handle if line.endswith(b"\n") and line.strip())
        except OSError:
            return 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, *, refresh: bool = True) -> dict[str, Any]:
        """The campaign's JSON representation (refreshes the store by default)."""
        if refresh:
            self.store.refresh()
        return {
            "id": self.id,
            "state": self.state,
            "error": self.error,
            "runs": self.runs,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "config": campaign_config_to_dict(self.config),
            "resumable": self.checkpoint_path.exists(),
            "alerts": self.alert_count,
            "supervision": {
                "retries": self.supervision.get("retries", 0),
                "pool_rebuilds": self.supervision.get("pool_rebuilds", 0),
                "sink_retries": self.supervision.get("sink_retries", 0),
                "quarantined": self.supervision.get("quarantined", 0),
            },
            "detections": {
                "indexed": self.store.count,
                "sink_bytes": self.store.storage.size(),
            },
            "links": {
                "self": f"/campaigns/{self.id}",
                "detections": f"/campaigns/{self.id}/detections",
                "events": f"/campaigns/{self.id}/events",
                "artifacts": f"/campaigns/{self.id}/artifacts/{{name}}",
            },
        }


class CampaignManager:
    """Runs submitted campaigns on background threads, bounded in parallel.

    ``max_parallel`` campaigns crawl at once; the rest wait in ``queued``
    (submission order).  The manager is the only writer of campaign state;
    all transitions happen under its lock.
    """

    def __init__(self, root: str | Path, *, max_parallel: int = 1) -> None:
        if max_parallel < 1:
            raise ConfigurationError("the campaign manager needs max_parallel >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_parallel = max_parallel
        self._slots = threading.Semaphore(max_parallel)
        self._lock = threading.Lock()
        self._campaigns: dict[str, Campaign] = {}
        self._order: list[str] = []
        self._seq = itertools.count(1)
        self._shutting_down = False

    # -- lookups ---------------------------------------------------------------
    def get(self, campaign_id: str) -> Campaign:
        with self._lock:
            try:
                return self._campaigns[campaign_id]
            except KeyError:
                raise UnknownCampaignError(campaign_id) from None

    def list(self) -> list[Campaign]:
        with self._lock:
            return [self._campaigns[cid] for cid in self._order]

    # -- lifecycle ---------------------------------------------------------------
    def submit(self, config: ExperimentConfig) -> Campaign:
        """Accept a campaign, allocate its working directory, queue its run."""
        with self._lock:
            if self._shutting_down:
                raise ServiceError("the service is shutting down; not accepting campaigns")
            campaign_id = f"c{next(self._seq):04d}-{uuid.uuid4().hex[:6]}"
            workdir = self.root / campaign_id
            workdir.mkdir(parents=True, exist_ok=False)
            campaign = Campaign(id=campaign_id, config=config, workdir=workdir)
            self._campaigns[campaign_id] = campaign
            self._order.append(campaign_id)
        (workdir / "campaign.json").write_text(
            json.dumps(
                {
                    "id": campaign_id,
                    "created_at": campaign.created_at,
                    "config": campaign_config_to_dict(config),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        self._start(campaign, resume=False)
        return campaign

    def cancel(self, campaign_id: str) -> Campaign:
        """Cancel a queued or running campaign (resumable via :meth:`resume`)."""
        campaign = self.get(campaign_id)
        with self._lock:
            if campaign.terminal:
                raise CampaignStateError(
                    f"campaign {campaign_id} is already {campaign.state}; nothing to cancel"
                )
            campaign._cancel.set()
        return campaign

    def resume(self, campaign_id: str) -> Campaign:
        """Re-queue a cancelled or failed campaign from its checkpoint.

        The resumed run recovers the sink's half-flushed tail and continues
        from the last shard boundary; its final bytes are identical to a
        never-interrupted run.  A campaign cancelled before its first
        checkpoint write simply starts fresh.
        """
        campaign = self.get(campaign_id)
        with self._lock:
            if self._shutting_down:
                raise ServiceError("the service is shutting down; not accepting campaigns")
            if campaign.state not in ("cancelled", "failed"):
                raise CampaignStateError(
                    f"campaign {campaign_id} is {campaign.state}; only cancelled or "
                    f"failed campaigns can be resumed"
                )
            campaign.state = "queued"
            campaign.error = None
            campaign.finished_at = None
            campaign._cancel = threading.Event()
        self._start(campaign, resume=campaign.checkpoint_path.exists())
        return campaign

    def tick(
        self,
        campaign_id: str,
        *,
        metrics: Sequence[str] = ("table1",),
        thresholds: Sequence[str] = (),
        retention_days: int | None = None,
    ) -> tuple[Campaign, int]:
        """Extend a finished campaign by one crawl day (a daemon tick).

        Re-queues a ``done`` campaign and runs one
        :meth:`repro.daemon.RecrawlDaemon.tick` over its working directory on
        a background thread: the day horizon grows by one (the checkpoint
        fingerprint treats ``recrawl_days`` as extensible), the new day's
        detections append to the same sink byte-identically, the watched
        ``metrics`` are snapshotted, and any firing ``thresholds`` append to
        ``alerts.jsonl`` — which the campaign's ``/events`` SSE stream tails
        as ``alert`` events.

        The grown horizon is recorded on the campaign *before* the crawl
        starts, so a tick cancelled mid-day resumes (``resume()``) under the
        extended horizon and completes the day; its metric snapshot and
        alerts then catch up on the next tick.  Returns the campaign and the
        crawl day this tick targets.
        """
        from repro.daemon import RecrawlDaemon, parse_rules

        campaign = self.get(campaign_id)
        rules = parse_rules(thresholds)
        with self._lock:
            if self._shutting_down:
                raise ServiceError("the service is shutting down; not accepting ticks")
            if campaign.state != "done":
                raise CampaignStateError(
                    f"campaign {campaign_id} is {campaign.state}; only finished "
                    f"(done) campaigns can tick — resume interrupted ones first"
                )
            daemon = RecrawlDaemon(
                campaign.workdir,
                campaign.config,
                metrics=tuple(metrics),
                rules=rules,
                # The sink factory reads campaign._cancel at call time, so the
                # fresh cancel event below is the one the tick observes.
                storage_factory=lambda path, fmt: _cancellable_storage(
                    path, fmt, campaign._cancel
                ),
            )
            target = daemon.next_target()
            if target is None:  # pragma: no cover - target_days is never set here
                raise CampaignStateError(f"campaign {campaign_id} has nothing to tick")
            day = target[0]
            campaign.config = replace(campaign.config, recrawl_days=day)
            campaign.state = "queued"
            campaign.error = None
            campaign.finished_at = None
            campaign._cancel = threading.Event()
        thread = threading.Thread(
            target=self._run_tick,
            args=(campaign, daemon),
            name=f"campaign-{campaign.id}-tick",
            daemon=True,
        )
        campaign._thread = thread
        thread.start()
        return campaign, day

    def _run_tick(self, campaign: Campaign, daemon) -> None:
        while not self._slots.acquire(timeout=0.05):
            if campaign._cancel.is_set():
                self._finish(campaign, "cancelled")
                return
        try:
            with self._lock:
                if campaign._cancel.is_set():
                    self._finish(campaign, "cancelled", locked=True)
                    return
                campaign.state = "running"
                campaign.started_at = time.time()
                campaign.runs += 1
            try:
                daemon.tick()
            except CampaignCancelled:
                self._finish(campaign, "cancelled")
            except ReproError as exc:
                self._finish(campaign, "failed", error=str(exc))
            except Exception as exc:  # noqa: BLE001 - a tick must never kill the server
                self._finish(campaign, "failed", error=f"{type(exc).__name__}: {exc}")
            else:
                self._finish(campaign, "done")
        finally:
            self._slots.release()

    def shutdown(self, *, timeout: float = 30.0) -> None:
        """Stop accepting campaigns, cancel everything in flight, and wait.

        Running crawls observe the cancel flag at their next detection write
        and unwind having checkpointed their last shard boundary, so a
        stopped server leaves every interrupted campaign resumable.
        """
        with self._lock:
            self._shutting_down = True
            active = [self._campaigns[cid] for cid in self._order]
            for campaign in active:
                if not campaign.terminal:
                    campaign._cancel.set()
        deadline = time.monotonic() + timeout
        for campaign in active:
            thread = campaign._thread
            if thread is not None and thread.is_alive():
                thread.join(max(0.0, deadline - time.monotonic()))

    # -- the run thread ----------------------------------------------------------
    def _start(self, campaign: Campaign, *, resume: bool) -> None:
        thread = threading.Thread(
            target=self._run,
            args=(campaign, resume),
            name=f"campaign-{campaign.id}",
            daemon=True,
        )
        campaign._thread = thread
        thread.start()

    def _run(self, campaign: Campaign, resume: bool) -> None:
        # Wait for a crawl slot, staying responsive to cancellation while
        # queued: a cancelled queued campaign never starts crawling.
        while not self._slots.acquire(timeout=0.05):
            if campaign._cancel.is_set():
                self._finish(campaign, "cancelled")
                return
        try:
            with self._lock:
                if campaign._cancel.is_set():
                    self._finish(campaign, "cancelled", locked=True)
                    return
                campaign.state = "running"
                campaign.started_at = time.time()
                campaign.runs += 1
            config = replace(
                campaign.config,
                checkpoint_path=str(campaign.checkpoint_path),
                resume=resume,
                fault_log=str(campaign.fault_log_path),
            )
            storage = _cancellable_storage(
                campaign.sink_path, campaign.config.store_format, campaign._cancel
            )
            try:
                artifacts = ExperimentRunner(config).run(use_cache=False, storage=storage)
            except CampaignCancelled:
                self._finish(campaign, "cancelled")
            except ReproError as exc:
                self._finish(campaign, "failed", error=str(exc))
            except Exception as exc:  # noqa: BLE001 - a campaign must never kill the server
                self._finish(campaign, "failed", error=f"{type(exc).__name__}: {exc}")
            else:
                longitudinal = artifacts.longitudinal
                supervision = _supervision_counts(longitudinal)
                if longitudinal.degraded:
                    # Degraded completion: shards exhausted their retries and
                    # were quarantined.  The quarantine lives in the
                    # checkpoint, so `resume()` re-crawls exactly the missing
                    # shards — surface it as a resumable failure.
                    self._finish(
                        campaign,
                        "failed",
                        error=(
                            f"{supervision['quarantined']} shard(s) quarantined "
                            f"after exhausting retries; resume to re-crawl them"
                        ),
                        supervision=supervision,
                    )
                else:
                    self._finish(campaign, "done", supervision=supervision)
        finally:
            self._slots.release()

    def _finish(
        self,
        campaign: Campaign,
        state: str,
        *,
        error: str | None = None,
        supervision: Mapping[str, int] | None = None,
        locked: bool = False,
    ) -> None:
        if locked:
            self._finish_locked(campaign, state, error, supervision)
            return
        with self._lock:
            self._finish_locked(campaign, state, error, supervision)

    def _finish_locked(
        self,
        campaign: Campaign,
        state: str,
        error: str | None,
        supervision: Mapping[str, int] | None,
    ) -> None:
        campaign.state = state
        campaign.error = error
        campaign.finished_at = time.time()
        if supervision is not None:
            campaign.supervision = dict(supervision)
        self._persist_record(campaign)

    def _persist_record(self, campaign: Campaign) -> None:
        """Best-effort sync of the campaign's outcome to ``campaign.json``.

        A restarted server (or an operator with ``cat``) can tell a failed
        campaign from a finished one without the in-memory manager: the
        record carries the final state, error and supervision counters of
        the latest run.
        """
        path = campaign.workdir / "campaign.json"
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            record = {
                "id": campaign.id,
                "created_at": campaign.created_at,
                "config": campaign_config_to_dict(campaign.config),
            }
        record.update(
            {
                "state": campaign.state,
                "error": campaign.error,
                "runs": campaign.runs,
                "finished_at": campaign.finished_at,
                "supervision": dict(campaign.supervision),
            }
        )
        try:
            path.write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
        except OSError:  # pragma: no cover - disk-full etc.; state stays in memory
            pass

    # -- conveniences ------------------------------------------------------------
    def wait(self, campaign_id: str, *, timeout: float = 60.0, interval: float = 0.05) -> Campaign:
        """Block until a campaign reaches a terminal state (tests/benchmarks)."""
        campaign = self.get(campaign_id)
        deadline = time.monotonic() + timeout
        while not campaign.terminal:
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"campaign {campaign_id} still {campaign.state} after {timeout:.0f}s"
                )
            time.sleep(interval)
        return campaign

    def states(self) -> dict[str, str]:
        with self._lock:
            return {cid: self._campaigns[cid].state for cid in self._order}

    def __iter__(self) -> Iterable[Campaign]:
        return iter(self.list())
