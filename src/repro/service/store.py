"""The service's queryable detection store.

One :class:`DetectionStore` wraps a campaign's streaming sink file and keeps
an incrementally-maintained :class:`~repro.analysis.dataset.CrawlDataset`
over it: :meth:`refresh` tails the file through
:meth:`~repro.crawler.storage.CrawlStorage.read_new` (guarded by the cheap
:meth:`~repro.crawler.storage.CrawlStorage.size` probe) and folds the new
records into the dataset's O(Δ) indices — exactly the machinery behind
``hbrepro analyze --watch``, shared here by every HTTP request thread.

All store operations run under one re-entrant lock, so detection queries,
metric snapshots and tail refreshes from concurrent service threads never
observe an index mid-update.  Queries are expressed as a
:class:`DetectionQuery` (parsed from URL query parameters by the route
layer) and answered from the in-memory indices: the HB-only views narrow
partner/facet filters, pagination slices the filtered list.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import compute_metric, get_metric
from repro.crawler.colstore import storage_for
from repro.crawler.storage import detection_to_dict
from repro.detector.records import SiteDetection
from repro.errors import ServiceError, StorageError
from repro.models import HBFacet

__all__ = ["DetectionQuery", "DetectionStore", "MAX_PAGE_SIZE"]

#: Hard cap on one detections page; larger ``limit`` values are rejected so a
#: single request cannot serialise a million-detection campaign in one body.
MAX_PAGE_SIZE = 500

#: Default rank-bin width for the ``rank_bin`` filter (matches the Figure 13
#: default of 100-rank buckets at test scale).
DEFAULT_RANK_BIN_SIZE = 100


def _parse_int(raw: str, name: str, *, minimum: int | None = None) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ServiceError(f"query parameter {name!r} must be an integer, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise ServiceError(f"query parameter {name!r} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class DetectionQuery:
    """One filtered, paginated read over a campaign's detections."""

    #: Keep only detections naming this demand partner.
    partner: str | None = None
    #: Keep only detections classified as this HB facet.
    facet: HBFacet | None = None
    #: Keep only detections from this crawl day (0 = the discovery pass).
    crawl_day: int | None = None
    #: Keep only detections whose site rank falls in this bin (0-based,
    #: ``bin_size`` ranks per bin — bin ``b`` covers ranks
    #: ``b*bin_size+1 .. (b+1)*bin_size``).
    rank_bin: int | None = None
    bin_size: int = DEFAULT_RANK_BIN_SIZE
    #: Keep only detections whose domain contains this substring.
    site: str | None = None
    #: Keep only HB / only non-HB detections (``None`` keeps both).
    hb: bool | None = None
    limit: int = 50
    offset: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.limit <= MAX_PAGE_SIZE:
            raise ServiceError(f"limit must be in [1, {MAX_PAGE_SIZE}], got {self.limit}")
        if self.offset < 0:
            raise ServiceError(f"offset cannot be negative, got {self.offset}")
        if self.bin_size < 1:
            raise ServiceError(f"bin_size must be >= 1, got {self.bin_size}")

    @classmethod
    def from_params(cls, params: Mapping[str, str]) -> "DetectionQuery":
        """Build a query from flat URL parameters, loudly on anything bogus."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ServiceError(
                f"unknown detection filter(s): {', '.join(unknown)}; "
                f"expected any of {', '.join(sorted(known))}"
            )
        kwargs: dict[str, Any] = {}
        if "partner" in params:
            kwargs["partner"] = params["partner"]
        if "facet" in params:
            try:
                kwargs["facet"] = HBFacet(params["facet"])
            except ValueError:
                raise ServiceError(
                    f"unknown facet {params['facet']!r}; expected one of "
                    f"{', '.join(f.value for f in HBFacet)}"
                ) from None
        if "crawl_day" in params:
            kwargs["crawl_day"] = _parse_int(params["crawl_day"], "crawl_day", minimum=0)
        if "rank_bin" in params:
            kwargs["rank_bin"] = _parse_int(params["rank_bin"], "rank_bin", minimum=0)
        if "bin_size" in params:
            kwargs["bin_size"] = _parse_int(params["bin_size"], "bin_size", minimum=1)
        if "site" in params:
            kwargs["site"] = params["site"]
        if "hb" in params:
            raw = params["hb"].lower()
            if raw not in ("true", "false", "1", "0"):
                raise ServiceError(f"query parameter 'hb' must be true/false, got {params['hb']!r}")
            kwargs["hb"] = raw in ("true", "1")
        if "limit" in params:
            kwargs["limit"] = _parse_int(params["limit"], "limit", minimum=1)
        if "offset" in params:
            kwargs["offset"] = _parse_int(params["offset"], "offset", minimum=0)
        return cls(**kwargs)

    def describe(self) -> dict[str, Any]:
        """The active filters, JSON-shaped (for echoing back in responses)."""
        out: dict[str, Any] = {}
        for name in ("partner", "crawl_day", "rank_bin", "site", "hb"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.facet is not None:
            out["facet"] = self.facet.value
        if self.rank_bin is not None:
            out["bin_size"] = self.bin_size
        return out

    def predicate(self) -> Callable[[SiteDetection], bool]:
        """The record filter this query describes (pagination excluded)."""
        partner, facet, day = self.partner, self.facet, self.crawl_day
        rank_bin, bin_size, site, hb = self.rank_bin, self.bin_size, self.site, self.hb

        def keep(d: SiteDetection) -> bool:
            if hb is not None and d.hb_detected != hb:
                return False
            if partner is not None and partner not in d.partners:
                return False
            if facet is not None and d.facet is not facet:
                return False
            if day is not None and d.crawl_day != day:
                return False
            if rank_bin is not None and (d.rank - 1) // bin_size != rank_bin:
                return False
            if site is not None and site not in d.domain:
                return False
            return True

        return keep


class DetectionStore:
    """Thread-safe live view over one campaign's detection sink.

    The store owns the campaign-side reader state: the JSON-Lines byte
    offset, the incrementally-indexed dataset, and the lock serialising
    refreshes against queries.  It is deliberately ignorant of HTTP — the
    route layer parses parameters into :class:`DetectionQuery` objects and
    serialises the dicts this class returns.
    """

    def __init__(self, path: str | Path, *, label: str | None = None) -> None:
        # Sniffed by magic bytes (extension for files not yet created), so a
        # columnar campaign's store tails typed chunks instead of JSON lines.
        self.storage = storage_for(path)
        self._label = label or Path(path).stem
        self._dataset = CrawlDataset(label=self._label)
        self._offset = 0
        self._lock = threading.RLock()

    # -- tailing ---------------------------------------------------------------
    @property
    def offset(self) -> int:
        """Byte offset of the last fully-read record boundary."""
        with self._lock:
            return self._offset

    @property
    def count(self) -> int:
        """Detections currently indexed (call :meth:`refresh` first)."""
        with self._lock:
            return len(self._dataset)

    def refresh(self) -> int:
        """Fold any newly-flushed sink records into the dataset.

        Returns how many new detections were absorbed.  Cheap when nothing
        changed: the ``size()`` probe skips the file open entirely.  If the
        file shrank below the read offset — the campaign was resumed and
        recovery truncated the half-flushed tail — the store restarts from
        byte zero, exactly like ``analyze --watch`` does.
        """
        with self._lock:
            if self.storage.size() <= self._offset:
                if self.storage.size() < self._offset:
                    self._reset()
                return 0
            try:
                new, self._offset = self.storage.read_new(self._offset)
            except StorageError:
                if self._offset == 0:
                    raise
                self._reset()
                try:
                    new, self._offset = self.storage.read_new(0)
                except StorageError:
                    return 0
            self._dataset.extend(new)
            return len(new)

    def _reset(self) -> None:
        self._dataset = CrawlDataset(label=self._label)
        self._offset = 0

    def drained(self) -> bool:
        """Whether every byte currently in the sink has been indexed."""
        with self._lock:
            return self.storage.size() == self._offset

    # -- queries ---------------------------------------------------------------
    def query(self, query: DetectionQuery) -> dict[str, Any]:
        """Answer one filtered, paginated detections read.

        Partner and facet filters only ever match HB detections, so they
        scan the dataset's cached ``hb_detections`` index instead of every
        page visit; the other filters scan whichever base the indices give
        them.  The page is serialised inside the lock — a concurrent refresh
        cannot grow the list mid-pagination.
        """
        with self._lock:
            if query.partner is not None or query.facet is not None:
                base: Sequence[SiteDetection] = self._dataset.hb_detections()
            elif query.hb is True:
                base = self._dataset.hb_detections()
            else:
                base = self._dataset.detections
            keep = query.predicate()
            matched = [d for d in base if keep(d)]
            page = matched[query.offset : query.offset + query.limit]
            return {
                "total": len(matched),
                "offset": query.offset,
                "limit": query.limit,
                "count": len(page),
                "filters": query.describe(),
                "items": [detection_to_dict(d) for d in page],
            }

    # -- metrics ---------------------------------------------------------------
    def compute_artifact(self, name: str, **overrides: Any):
        """Compute one registered metric over the current dataset.

        Raises :class:`~repro.errors.UnknownMetricError` for names not in the
        registry and :class:`~repro.errors.MetricContextError` for metrics
        needing more than the dataset (the store is an offline context).
        """
        metric = get_metric(name)
        with self._lock:
            return metric.compute(AnalysisContext.offline(self._dataset), **overrides)

    def snapshot(self, names: Sequence[str]) -> dict[str, str]:
        """Render several metrics at one consistent dataset state.

        The lock spans all of them, so a snapshot taken while a crawl
        streams in is internally consistent — the same guarantee one
        ``analyze --watch`` refresh gives.
        """
        with self._lock:
            context = AnalysisContext.offline(self._dataset)
            return {name: compute_metric(name, context).text for name in names}

    def summary(self) -> dict[str, Any] | None:
        """The Table-1 style dataset summary (``None`` while still empty)."""
        with self._lock:
            if not len(self._dataset):
                return None
            return self._dataset.summary()
