"""Shared primitive data types used across the whole library.

These are the vocabulary types the substrates (ecosystem, browser, HB
protocol), the detector and the analysis layer all agree on: ad-slot sizes,
HB facets, partner kinds, wrapper kinds, and the observable browser artefacts
(DOM events and web requests) that HBDetector consumes.

The types here are deliberately small, immutable where possible, and free of
behaviour that belongs to a specific subsystem.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "AdSlotSize",
    "AdSlot",
    "HBFacet",
    "PartnerKind",
    "WrapperKind",
    "SaleChannel",
    "DomEvent",
    "WebRequest",
    "RequestDirection",
    "PageTimings",
    "parse_size",
    "STANDARD_SIZES",
]


_SIZE_RE = re.compile(r"^\s*(\d+)\s*[xX]\s*(\d+)\s*$")


@dataclass(frozen=True, order=True, slots=True)
class AdSlotSize:
    """A display ad creative size in CSS pixels, e.g. ``300x250``."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"ad slot dimensions must be positive, got {self.width}x{self.height}")

    @property
    def area(self) -> int:
        """Creative area in square pixels (used to sort Figure 23's x-axis)."""
        return self.width * self.height

    @property
    def label(self) -> str:
        """Canonical ``WxH`` label, e.g. ``"300x250"``."""
        return f"{self.width}x{self.height}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


def parse_size(text: str) -> AdSlotSize:
    """Parse a ``"WxH"`` string into an :class:`AdSlotSize`.

    >>> parse_size("300x250")
    AdSlotSize(width=300, height=250)
    """
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"not a valid ad slot size: {text!r}")
    return AdSlotSize(int(match.group(1)), int(match.group(2)))


#: The IAB-style creative sizes the paper reports in Figure 21, plus the other
#: sizes that appear in its plots.  The ecosystem samples slot sizes from this
#: set with popularity weights; the analysis never assumes membership.
STANDARD_SIZES: tuple[AdSlotSize, ...] = (
    AdSlotSize(300, 250),   # medium rectangle / side banner
    AdSlotSize(728, 90),    # leaderboard / top banner
    AdSlotSize(300, 600),   # half page
    AdSlotSize(320, 50),    # mobile banner
    AdSlotSize(970, 250),   # billboard
    AdSlotSize(160, 600),   # wide skyscraper
    AdSlotSize(336, 280),   # large rectangle
    AdSlotSize(970, 90),    # super leaderboard
    AdSlotSize(320, 100),   # large mobile banner
    AdSlotSize(468, 60),    # full banner
    AdSlotSize(120, 600),   # skyscraper
    AdSlotSize(320, 320),   # mobile square
    AdSlotSize(100, 200),
    AdSlotSize(300, 100),
    AdSlotSize(300, 50),
)


@dataclass(frozen=True, slots=True)
class AdSlot:
    """An ad placement on a publisher page.

    ``code`` is the slot's DOM element / ad-unit code (e.g. ``div-gpt-ad-1``),
    ``primary_size`` the size the publisher prefers to fill and ``sizes`` every
    size the slot accepts (multi-size requests are what produce the >20 slot
    auctions discussed in §5.3 of the paper).
    """

    code: str
    primary_size: AdSlotSize
    sizes: tuple[AdSlotSize, ...] = ()
    floor_cpm: float = 0.0

    def __post_init__(self) -> None:
        if not self.code:
            raise ValueError("ad slot code must be non-empty")
        if self.floor_cpm < 0:
            raise ValueError("floor CPM cannot be negative")
        if not self.sizes:
            object.__setattr__(self, "sizes", (self.primary_size,))
        elif self.primary_size not in self.sizes:
            object.__setattr__(self, "sizes", (self.primary_size, *self.sizes))

    @property
    def accepted_labels(self) -> tuple[str, ...]:
        return tuple(size.label for size in self.sizes)


class HBFacet(str, enum.Enum):
    """The three header-bidding deployment facets identified by the paper."""

    CLIENT_SIDE = "client-side"
    SERVER_SIDE = "server-side"
    HYBRID = "hybrid"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class PartnerKind(str, enum.Enum):
    """Role of an ad-tech company in the supply chain."""

    DSP = "dsp"
    SSP = "ssp"
    ADX = "adx"
    AD_SERVER = "ad-server"
    AGENCY = "agency"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class WrapperKind(str, enum.Enum):
    """Header-bidding wrapper library families modelled by the library."""

    PREBID = "prebid.js"
    GPT = "gpt.js"
    PUBFOOD = "pubfood.js"
    CUSTOM = "custom"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class SaleChannel(str, enum.Enum):
    """Publisher inventory sale channels that compete in the ad server."""

    HEADER_BIDDING = "header-bidding"
    DIRECT_ORDER = "direct-order"
    RTB_WATERFALL = "rtb-waterfall"
    FALLBACK = "fallback"
    HOUSE = "house"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class RequestDirection(str, enum.Enum):
    """Whether a web request entry is the outgoing request or the response."""

    OUTGOING = "outgoing"
    INCOMING = "incoming"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class DomEvent:
    """A DOM-level event observed on a page.

    HB wrappers fire events such as ``auctionEnd`` or ``bidWon``; the payload
    carries the event-specific metadata (bidder, CPM, ad-unit code, ...).
    Timestamps are milliseconds since navigation start of the page.
    """

    name: str
    timestamp_ms: float
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("DOM event name must be non-empty")
        if self.timestamp_ms < 0:
            raise ValueError("DOM event timestamp cannot be negative")

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience payload accessor mirroring ``dict.get``."""
        return self.payload.get(key, default)


@dataclass(frozen=True, slots=True)
class WebRequest:
    """A single entry in the browser's web-request log.

    ``params`` contains the parsed query string (and, for POST bid requests,
    the flattened body fields) exactly as a ``chrome.webRequest`` observer
    would be able to reconstruct them.
    """

    url: str
    method: str
    direction: RequestDirection
    timestamp_ms: float
    initiator: str = ""
    params: Mapping[str, str] = field(default_factory=dict)
    status_code: int = 200

    def __post_init__(self) -> None:
        if not self.url:
            raise ValueError("web request URL must be non-empty")
        if self.timestamp_ms < 0:
            raise ValueError("web request timestamp cannot be negative")

    @property
    def host(self) -> str:
        """The request's host, without scheme, port, path or query."""
        without_scheme = self.url.split("://", 1)[-1]
        host = without_scheme.split("/", 1)[0]
        return host.split(":", 1)[0].lower()

    def matches_host(self, domains: Iterable[str]) -> bool:
        """True if the request host equals or is a subdomain of any domain."""
        host = self.host
        for domain in domains:
            domain = domain.lower()
            if host == domain or host.endswith("." + domain):
                return True
        return False


@dataclass(frozen=True, slots=True)
class PageTimings:
    """High-level navigation timings of a simulated page load."""

    navigation_start_ms: float = 0.0
    header_parsed_ms: float = 0.0
    dom_content_loaded_ms: float = 0.0
    load_event_ms: float = 0.0

    def __post_init__(self) -> None:
        ordered = (
            self.navigation_start_ms,
            self.header_parsed_ms,
            self.dom_content_loaded_ms,
            self.load_event_ms,
        )
        if any(value < 0 for value in ordered):
            raise ValueError("page timings cannot be negative")
        if list(ordered) != sorted(ordered):
            raise ValueError(f"page timings must be monotonically ordered, got {ordered}")

    @property
    def page_load_ms(self) -> float:
        """Total page load time (navigation start to load event)."""
        return self.load_event_ms - self.navigation_start_ms
