"""repro — reproduction of the IMC 2019 Header Bidding measurement study.

The package reproduces "No More Chasing Waterfalls: A Measurement Study of the
Header Bidding Ad-Ecosystem" end to end on a simulated Web:

* :mod:`repro.ecosystem` — the synthetic ad ecosystem (partners, publishers,
  ad server, top lists, snapshot archive);
* :mod:`repro.browser` — the simulated browser (DOM events, web requests,
  page-load engine);
* :mod:`repro.hb` — the header-bidding protocol (wrappers, the three facets)
  and the waterfall baseline;
* :mod:`repro.detector` — HBDetector, the paper's contribution;
* :mod:`repro.crawler` — crawl sessions, longitudinal scheduling, historical
  static crawling and dataset storage;
* :mod:`repro.analysis` — every figure/table computation;
* :mod:`repro.experiments` — end-to-end experiment runner and per-artefact
  entry points.

Quickstart::

    from repro.experiments import ExperimentConfig, ExperimentRunner
    from repro.experiments.tables import table1_summary

    runner = ExperimentRunner(ExperimentConfig(total_sites=1_000, recrawl_days=1))
    artifacts = runner.run()
    print(table1_summary(artifacts)["text"])
"""

from repro.errors import ReproError
from repro.models import AdSlot, AdSlotSize, HBFacet, PartnerKind, WrapperKind
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "AdSlot",
    "AdSlotSize",
    "HBFacet",
    "PartnerKind",
    "WrapperKind",
    "ExperimentConfig",
    "ExperimentRunner",
    "__version__",
]
