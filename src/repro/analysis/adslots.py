"""Auctioned ad-slot analysis (§5.3, Figures 19-21).

How many slots a page puts up for auction, how that number relates to the
overall HB latency, and which creative sizes dominate in each HB facet.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import register_metric
from repro.analysis.reporting import format_ecdf, format_share_rows, format_whisker_rows
from repro.analysis.stats import Ecdf, WhiskerStats, ecdf, whisker_stats
from repro.errors import EmptyDatasetError
from repro.models import HBFacet

__all__ = [
    "adslots_per_site_ecdf",
    "latency_by_adslot_count",
    "adslot_size_shares",
    "adslots_ecdf_result",
    "latency_vs_adslots_result",
    "adslot_sizes_result",
]


def adslots_per_site_ecdf(dataset: CrawlDataset) -> dict[HBFacet, Ecdf]:
    """Figure 19: ECDF of the number of auctioned ad-slots per site, per facet."""
    grouped: dict[HBFacet, list[float]] = {facet: [] for facet in HBFacet}
    for site in dataset.hb_sites():
        if not site.auctions:
            continue
        assert site.facet is not None
        grouped[site.facet].append(float(site.n_auctions))
    result: dict[HBFacet, Ecdf] = {}
    for facet, values in grouped.items():
        if values:
            result[facet] = ecdf(values)
    if not result:
        raise EmptyDatasetError("no auctioned ad-slots in the dataset")
    return result


def latency_by_adslot_count(dataset: CrawlDataset, *, max_count: int = 15) -> list[tuple[int, WhiskerStats]]:
    """Figure 20: HB latency as a function of the number of auctioned slots."""
    grouped: dict[int, list[float]] = {}
    for detection in dataset.hb_detections():
        if detection.total_latency_ms is None or detection.total_latency_ms <= 0:
            continue
        count = detection.n_auctions
        if count < 1:
            continue
        grouped.setdefault(min(count, max_count), []).append(detection.total_latency_ms)
    if not grouped:
        raise EmptyDatasetError("no HB latency observations in the dataset")
    return [(count, whisker_stats(values)) for count, values in sorted(grouped.items())]


def adslot_size_shares(dataset: CrawlDataset, *, top_n: int = 10) -> dict[HBFacet, list[tuple[str, float]]]:
    """Figure 21: the most popular creative sizes per facet (share of slots)."""
    grouped = dataset.auctions_by_facet()
    result: dict[HBFacet, list[tuple[str, float]]] = {}
    for facet, auctions in grouped.items():
        counter: Counter[str] = Counter()
        total = 0
        for auction in auctions:
            size = auction.size
            if size is None:
                # Fall back to the sizes reported by the auction's bids.
                sizes = [bid.size for bid in auction.bids if bid.size]
                size = sizes[0] if sizes else None
            if size is None:
                continue
            counter[size] += 1
            total += 1
        if total == 0:
            result[facet] = []
            continue
        result[facet] = [(size, count / total) for size, count in counter.most_common(top_n)]
    return result


# -- registered metrics ------------------------------------------------------------


@register_metric(
    "fig19",
    title="Figure 19 — Auctioned ad-slots per website",
    ref="Figure 19 / §5.3",
    render={"kind": "ecdf", "unit": "slots", "grouped_by": "facet"},
)
def adslots_ecdf_result(context: AnalysisContext) -> dict:
    """Figure 19: auctioned ad-slots per website, per facet."""
    curves = adslots_per_site_ecdf(context.dataset)
    blocks = [
        format_ecdf(curve, unit="slots", title=f"Figure 19 — Auctioned ad-slots ({facet.value})")
        for facet, curve in curves.items()
    ]
    medians = {facet: curve.median for facet, curve in curves.items()}
    return {"ecdfs": curves, "medians": medians, "text": "\n\n".join(blocks)}


@register_metric(
    "fig20",
    title="Figure 20 — HB latency vs. auctioned ad-slots",
    ref="Figure 20 / §5.3",
    render={"kind": "whiskers", "unit": "ms"},
)
def latency_vs_adslots_result(context: AnalysisContext) -> dict:
    """Figure 20: HB latency as a function of the number of auctioned slots."""
    rows = latency_by_adslot_count(context.dataset)
    text = format_whisker_rows(rows, label_header="#auctioned slots", unit="ms",
                               title="Figure 20 — HB latency vs. auctioned ad-slots")
    return {"rows": rows, "text": text}


@register_metric(
    "fig21",
    title="Figure 21 — Most popular creative sizes per facet",
    ref="Figure 21 / §5.3",
    render={"kind": "share-rows", "grouped_by": "facet"},
    top_n=10,
)
def adslot_sizes_result(context: AnalysisContext, *, top_n: int) -> dict:
    """Figure 21: most popular creative sizes per facet."""
    shares = adslot_size_shares(context.dataset, top_n=top_n)
    blocks = [
        format_share_rows(rows, label_header=f"{facet.value} size")
        for facet, rows in shares.items()
        if rows
    ]
    return {"shares": shares, "text": "\n\n".join(blocks)}
