"""Demand-partner market analysis (§5.1, Figures 8-11).

Four questions are answered here, matching the paper's subsection headings:
who dominates the market (Figure 8), how many partners a site typically uses
(Figure 9), which partners are combined together (Figure 10), and which
partners participate in each HB facet (Figure 11).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import register_metric
from repro.analysis.reporting import format_ecdf, format_share_rows
from repro.analysis.stats import Ecdf, ecdf
from repro.errors import EmptyDatasetError
from repro.models import HBFacet

__all__ = [
    "PartnerPopularity",
    "partner_popularity",
    "partners_per_site_ecdf",
    "partner_combinations",
    "partners_per_facet",
    "top_partners_result",
    "partners_per_site_result",
    "partner_combinations_result",
    "partners_per_facet_result",
]


@dataclass(frozen=True)
class PartnerPopularity:
    """One row of the Figure-8 popularity ranking."""

    partner: str
    sites: int
    share_of_hb_sites: float


def partner_popularity(dataset: CrawlDataset, *, top_n: int | None = None) -> list[PartnerPopularity]:
    """Figure 8: share of HB websites each demand partner appears on."""
    hb_sites = dataset.hb_sites()
    if not hb_sites:
        raise EmptyDatasetError("no HB sites in the dataset")
    counts = dataset.partner_site_counts()
    rows = [
        PartnerPopularity(partner=name, sites=count, share_of_hb_sites=count / len(hb_sites))
        for name, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    return rows[:top_n] if top_n is not None else rows


def partners_per_site_ecdf(dataset: CrawlDataset) -> Ecdf:
    """Figure 9: ECDF of the number of demand partners per HB website."""
    hb_sites = dataset.hb_sites()
    if not hb_sites:
        raise EmptyDatasetError("no HB sites in the dataset")
    return ecdf([float(site.n_partners) for site in hb_sites])


def partner_combinations(dataset: CrawlDataset, *, top_n: int = 15) -> list[tuple[tuple[str, ...], float]]:
    """Figure 10: the most frequent sets of partners found together on a site.

    Returns ``(sorted partner tuple, share of HB sites)`` rows, most frequent
    first.  Single-partner "combinations" are included, which is how the paper
    reports DFP alone covering ~48% of sites.
    """
    hb_sites = dataset.hb_sites()
    if not hb_sites:
        raise EmptyDatasetError("no HB sites in the dataset")
    counter: Counter[tuple[str, ...]] = Counter()
    for site in hb_sites:
        combination = tuple(sorted(site.partners))
        if combination:
            counter[combination] += 1
    total = len(hb_sites)
    rows = [(combination, count / total) for combination, count in counter.most_common(top_n)]
    return rows


def partners_per_facet(
    dataset: CrawlDataset,
    *,
    top_n: int = 10,
) -> dict[HBFacet, list[tuple[str, float]]]:
    """Figure 11: top partners per facet by share of observed bids."""
    grouped = dataset.auctions_by_facet()
    result: dict[HBFacet, list[tuple[str, float]]] = {}
    for facet, auctions in grouped.items():
        counter: Counter[str] = Counter()
        total = 0
        for auction in auctions:
            for bid in auction.bids:
                counter[bid.partner] += 1
                total += 1
        if total == 0:
            result[facet] = []
            continue
        result[facet] = [
            (partner, count / total) for partner, count in counter.most_common(top_n)
        ]
    return result


# -- registered metrics ------------------------------------------------------------


@register_metric(
    "fig08",
    title="Figure 8 — Top demand partners",
    ref="Figure 8 / §5.1",
    render={"kind": "share-rows"},
    top_n=11,
)
def top_partners_result(context: AnalysisContext, *, top_n: int) -> dict:
    """Figure 8: top demand partners by share of HB websites."""
    rows = partner_popularity(context.dataset, top_n=top_n)
    text = format_share_rows(
        [(row.partner, row.share_of_hb_sites) for row in rows],
        label_header="demand partner",
        title="Figure 8 — Top demand partners (share of HB websites)",
    )
    return {"rows": rows, "text": text}


@register_metric(
    "fig09",
    title="Figure 9 — Demand partners per HB website",
    ref="Figure 9 / §5.1",
    render={"kind": "ecdf", "unit": "partners"},
)
def partners_per_site_result(context: AnalysisContext) -> dict:
    """Figure 9: ECDF of demand partners per HB website."""
    curve = partners_per_site_ecdf(context.dataset)
    share_one = curve.fraction_at_most(1.0)
    share_five_plus = curve.fraction_above(4.0)
    share_ten_plus = curve.fraction_above(9.0)
    text = format_ecdf(curve, unit="partners",
                       title="Figure 9 — Demand partners per HB website (ECDF)")
    return {
        "ecdf": curve,
        "share_one_partner": share_one,
        "share_five_or_more": share_five_plus,
        "share_ten_or_more": share_ten_plus,
        "text": text,
    }


@register_metric(
    "fig10",
    title="Figure 10 — Most frequent partner combinations",
    ref="Figure 10 / §5.1",
    render={"kind": "share-rows"},
    top_n=15,
)
def partner_combinations_result(context: AnalysisContext, *, top_n: int) -> dict:
    """Figure 10: most frequent demand-partner combinations."""
    rows = partner_combinations(context.dataset, top_n=top_n)
    text = format_share_rows(
        [(" + ".join(combo), share) for combo, share in rows],
        label_header="combination",
        title="Figure 10 — Most frequent partner combinations",
    )
    return {"rows": rows, "text": text}


@register_metric(
    "fig11",
    title="Figure 11 — Top partners per HB facet",
    ref="Figure 11 / §5.1",
    render={"kind": "share-rows", "grouped_by": "facet"},
    top_n=10,
)
def partners_per_facet_result(context: AnalysisContext, *, top_n: int) -> dict:
    """Figure 11: top partners per HB facet by share of bids."""
    per_facet = partners_per_facet(context.dataset, top_n=top_n)
    blocks = []
    for facet in HBFacet:
        rows = per_facet.get(facet, [])
        if rows:
            blocks.append(format_share_rows(rows, label_header=f"{facet.value} partner"))
    return {"per_facet": per_facet, "text": "\n\n".join(blocks)}
