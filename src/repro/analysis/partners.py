"""Demand-partner market analysis (§5.1, Figures 8-11).

Four questions are answered here, matching the paper's subsection headings:
who dominates the market (Figure 8), how many partners a site typically uses
(Figure 9), which partners are combined together (Figure 10), and which
partners participate in each HB facet (Figure 11).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.dataset import CrawlDataset
from repro.analysis.stats import Ecdf, ecdf
from repro.errors import EmptyDatasetError
from repro.models import HBFacet

__all__ = [
    "PartnerPopularity",
    "partner_popularity",
    "partners_per_site_ecdf",
    "partner_combinations",
    "partners_per_facet",
]


@dataclass(frozen=True)
class PartnerPopularity:
    """One row of the Figure-8 popularity ranking."""

    partner: str
    sites: int
    share_of_hb_sites: float


def partner_popularity(dataset: CrawlDataset, *, top_n: int | None = None) -> list[PartnerPopularity]:
    """Figure 8: share of HB websites each demand partner appears on."""
    hb_sites = dataset.hb_sites()
    if not hb_sites:
        raise EmptyDatasetError("no HB sites in the dataset")
    counts = dataset.partner_site_counts()
    rows = [
        PartnerPopularity(partner=name, sites=count, share_of_hb_sites=count / len(hb_sites))
        for name, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    return rows[:top_n] if top_n is not None else rows


def partners_per_site_ecdf(dataset: CrawlDataset) -> Ecdf:
    """Figure 9: ECDF of the number of demand partners per HB website."""
    hb_sites = dataset.hb_sites()
    if not hb_sites:
        raise EmptyDatasetError("no HB sites in the dataset")
    return ecdf([float(site.n_partners) for site in hb_sites])


def partner_combinations(dataset: CrawlDataset, *, top_n: int = 15) -> list[tuple[tuple[str, ...], float]]:
    """Figure 10: the most frequent sets of partners found together on a site.

    Returns ``(sorted partner tuple, share of HB sites)`` rows, most frequent
    first.  Single-partner "combinations" are included, which is how the paper
    reports DFP alone covering ~48% of sites.
    """
    hb_sites = dataset.hb_sites()
    if not hb_sites:
        raise EmptyDatasetError("no HB sites in the dataset")
    counter: Counter[tuple[str, ...]] = Counter()
    for site in hb_sites:
        combination = tuple(sorted(site.partners))
        if combination:
            counter[combination] += 1
    total = len(hb_sites)
    rows = [(combination, count / total) for combination, count in counter.most_common(top_n)]
    return rows


def partners_per_facet(
    dataset: CrawlDataset,
    *,
    top_n: int = 10,
) -> dict[HBFacet, list[tuple[str, float]]]:
    """Figure 11: top partners per facet by share of observed bids."""
    grouped = dataset.auctions_by_facet()
    result: dict[HBFacet, list[tuple[str, float]]] = {}
    for facet, auctions in grouped.items():
        counter: Counter[str] = Counter()
        total = 0
        for auction in auctions:
            for bid in auction.bids:
                counter[bid.partner] += 1
                total += 1
        if total == 0:
            result[facet] = []
            continue
        result[facet] = [
            (partner, count / total) for partner, count in counter.most_common(top_n)
        ]
    return result
