"""The central metric registry.

Every artefact of the paper — Table 1, the §3-§5 headline numbers, Figures
4-24 and the waterfall comparisons — is one registered :class:`Metric`.  A
metric has a stable name (the CLI artefact name), a paper reference, default
parameters, and a ``compute`` that turns an :class:`~repro.analysis.context.AnalysisContext`
into a typed :class:`MetricResult` envelope (data + rendered text + metadata
+ render hints).  The experiment bindings (:mod:`repro.experiments.figures`,
:mod:`repro.experiments.tables`), the CLI and the examples all resolve
artefacts through this registry, so adding a metric is a single
:func:`register_metric` call in an analysis module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Protocol, runtime_checkable

from repro.analysis.context import AnalysisContext
from repro.errors import MetricContextError, UnknownMetricError

__all__ = [
    "Metric",
    "MetricResult",
    "FunctionMetric",
    "register_metric",
    "get_metric",
    "metric_names",
    "iter_metrics",
    "compute_metric",
    "available_metrics",
]


@dataclass(frozen=True)
class MetricResult:
    """What one metric computation produced.

    ``data`` holds the figure's plain data structures (rows, ECDF curves,
    headline shares), ``text`` the aligned plain-text rendering the CLI and
    examples print, and ``render`` hints at how a plotting front-end would
    draw it (kind of mark, unit, ...).
    """

    name: str
    title: str
    ref: str
    data: Mapping[str, Any]
    text: str
    params: Mapping[str, Any] = field(default_factory=dict)
    render: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """The legacy per-figure dict shape: data keys plus ``"text"``."""
        return {**self.data, "text": self.text}


@runtime_checkable
class Metric(Protocol):
    """What the registry stores: anything that can compute a MetricResult."""

    name: str
    title: str
    ref: str
    requires: tuple[str, ...]
    params: Mapping[str, Any]

    def compute(self, context: AnalysisContext, **overrides: Any) -> MetricResult:
        ...


@dataclass(frozen=True)
class FunctionMetric:
    """A metric backed by a plain function ``fn(context, **params) -> dict``.

    The function returns the legacy dict shape (data keys plus ``"text"``);
    :meth:`compute` wraps it into the :class:`MetricResult` envelope.
    """

    name: str
    title: str
    ref: str
    fn: Callable[..., Mapping[str, Any]]
    requires: tuple[str, ...] = ("dataset",)
    params: Mapping[str, Any] = field(default_factory=dict)
    render: Mapping[str, Any] = field(default_factory=dict)

    def compute(self, context: AnalysisContext, **overrides: Any) -> MetricResult:
        missing = tuple(name for name in self.requires if not context.has(name))
        if missing:
            raise MetricContextError(self.name, missing)
        merged = {**self.params, **overrides}
        payload = dict(self.fn(context, **merged))
        text = str(payload.pop("text", ""))
        return MetricResult(
            name=self.name,
            title=self.title,
            ref=self.ref,
            data=payload,
            text=text,
            params=merged,
            render=dict(self.render),
        )


# The built-in paper metrics register themselves when their module is
# imported, and every metric module is imported by repro/analysis/__init__.py
# — which Python runs before this submodule can be imported from anywhere —
# so the registry is always fully populated by the time it is queried.
_REGISTRY: dict[str, Metric] = {}


def register(metric: Metric) -> Metric:
    """Add a metric object to the registry (last registration wins)."""
    _REGISTRY[metric.name] = metric
    return metric


def register_metric(
    name: str,
    *,
    title: str,
    ref: str,
    requires: tuple[str, ...] = ("dataset",),
    render: Mapping[str, Any] | None = None,
    **default_params: Any,
) -> Callable[[Callable[..., Mapping[str, Any]]], Callable[..., Mapping[str, Any]]]:
    """Decorator registering ``fn(context, **params) -> dict`` as a metric."""

    def decorator(fn: Callable[..., Mapping[str, Any]]) -> Callable[..., Mapping[str, Any]]:
        register(
            FunctionMetric(
                name=name,
                title=title,
                ref=ref,
                fn=fn,
                requires=requires,
                params=dict(default_params),
                render=dict(render or {}),
            )
        )
        return fn

    return decorator


def get_metric(name: str) -> Metric:
    """The registered metric called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownMetricError(name, tuple(sorted(_REGISTRY))) from None


def metric_names() -> tuple[str, ...]:
    """Every registered metric name, sorted."""
    return tuple(sorted(_REGISTRY))


def iter_metrics() -> Iterator[Metric]:
    """Every registered metric, in sorted name order."""
    for name in sorted(_REGISTRY):
        yield _REGISTRY[name]


def compute_metric(name: str, context: AnalysisContext, **overrides: Any) -> MetricResult:
    """Compute one registered metric against a context."""
    return get_metric(name).compute(context, **overrides)


def available_metrics(context: "AnalysisContext | frozenset[str] | set[str]") -> tuple[str, ...]:
    """The metric names computable with a context (or a provides set), sorted."""
    provided = context if isinstance(context, (frozenset, set)) else context.provides()
    return tuple(m.name for m in iter_metrics() if set(m.requires) <= provided)
