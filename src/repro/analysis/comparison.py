"""Header bidding versus the waterfall standard.

The paper's headline comparison (§1, §7.2) is that HB latency can be up to 3x
the waterfall's in the median case and far worse in the tail, while §5.4
contrasts the vanilla-profile HB bid prices with the (higher) RTB clearing
prices prior work measured for real users.  Because the reproduction owns a
full waterfall implementation, both comparisons are *generated*: the same
slot inventory is sold once through HB (from the crawl dataset) and once
through the waterfall baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import register_metric
from repro.analysis.reporting import format_table
from repro.analysis.stats import WhiskerStats, percentile, whisker_stats
from repro.ecosystem.publishers import Publisher
from repro.errors import EmptyDatasetError
from repro.hb.environment import AuctionEnvironment
from repro.hb.waterfall import build_waterfall_chain, run_waterfall
from repro.utils.rng import derive_rng

__all__ = [
    "LatencyComparison",
    "PriceComparison",
    "hb_vs_waterfall_latency",
    "hb_vs_waterfall_prices",
    "waterfall_latency_result",
    "waterfall_price_result",
]


@dataclass(frozen=True)
class LatencyComparison:
    """Latency of HB and of the waterfall baseline over the same sites."""

    hb: WhiskerStats
    waterfall: WhiskerStats

    @property
    def median_ratio(self) -> float:
        """How many times slower HB is than the waterfall at the median."""
        if self.waterfall.median == 0:
            return float("inf")
        return self.hb.median / self.waterfall.median

    @property
    def p90_ratio(self) -> float:
        if self.waterfall.p95 == 0:
            return float("inf")
        return self.hb.p95 / self.waterfall.p95


@dataclass(frozen=True)
class PriceComparison:
    """Clearing prices of HB (vanilla profile) vs. waterfall RTB (real users)."""

    hb: WhiskerStats
    waterfall_real_user: WhiskerStats
    waterfall_vanilla: WhiskerStats

    @property
    def real_user_median_ratio(self) -> float:
        if self.hb.median == 0:
            return float("inf")
        return self.waterfall_real_user.median / self.hb.median


def _simulate_waterfall_latencies(
    publishers: Sequence[Publisher],
    environment: AuctionEnvironment,
    *,
    seed: int,
    real_user: bool = False,
) -> tuple[list[float], list[float]]:
    """Waterfall latency and clearing-price samples over the given sites."""
    latencies: list[float] = []
    prices: list[float] = []
    for publisher in publishers:
        rng = derive_rng(seed, "waterfall-comparison", publisher.domain)
        chain = build_waterfall_chain(environment.registry, rng)
        slots = publisher.slots or publisher.auctioned_slots
        page_latency = 0.0
        for index, slot in enumerate(slots):
            outcome = run_waterfall(
                slot,
                chain,
                environment,
                rng,
                latency_scale=publisher.latency_scale,
                real_user=real_user,
            )
            # The ad server works through the slots independently and the page
            # only blocks on the first (above-the-fold) slot, so the per-page
            # waterfall latency the user perceives is that slot's latency.
            if index == 0:
                page_latency = outcome.total_latency_ms
            if outcome.clearing_cpm > 0:
                prices.append(outcome.clearing_cpm)
        if page_latency > 0:
            latencies.append(page_latency)
    return latencies, prices


def hb_vs_waterfall_latency(
    dataset: CrawlDataset,
    publishers: Sequence[Publisher],
    environment: AuctionEnvironment,
    *,
    seed: int = 2019,
) -> LatencyComparison:
    """Compare page-level HB latency with the waterfall baseline."""
    hb_values = [
        detection.total_latency_ms
        for detection in dataset.hb_detections()
        if detection.total_latency_ms is not None and detection.total_latency_ms > 0
    ]
    if not hb_values:
        raise EmptyDatasetError("no HB latency observations in the dataset")
    hb_publishers = [publisher for publisher in publishers if publisher.uses_hb]
    if not hb_publishers:
        raise EmptyDatasetError("no HB publishers supplied for the waterfall baseline")
    waterfall_values, _ = _simulate_waterfall_latencies(hb_publishers, environment, seed=seed)
    return LatencyComparison(hb=whisker_stats(hb_values), waterfall=whisker_stats(waterfall_values))


def hb_vs_waterfall_prices(
    dataset: CrawlDataset,
    publishers: Sequence[Publisher],
    environment: AuctionEnvironment,
    *,
    seed: int = 2019,
) -> PriceComparison:
    """Compare HB bid prices with waterfall RTB clearing prices."""
    hb_prices = [bid.cpm for bid in dataset.priced_bids() if bid.cpm is not None and bid.cpm > 0]
    if not hb_prices:
        raise EmptyDatasetError("no priced HB bids in the dataset")
    hb_publishers = [publisher for publisher in publishers if publisher.uses_hb]
    if not hb_publishers:
        raise EmptyDatasetError("no HB publishers supplied for the waterfall baseline")
    _, real_user_prices = _simulate_waterfall_latencies(
        hb_publishers, environment, seed=seed, real_user=True
    )
    _, vanilla_prices = _simulate_waterfall_latencies(
        hb_publishers, environment, seed=seed + 1, real_user=False
    )
    if not real_user_prices or not vanilla_prices:
        raise EmptyDatasetError("the waterfall baseline produced no clearing prices")
    return PriceComparison(
        hb=whisker_stats(hb_prices),
        waterfall_real_user=whisker_stats(real_user_prices),
        waterfall_vanilla=whisker_stats(vanilla_prices),
    )


# -- registered metrics ------------------------------------------------------------


@register_metric(
    "waterfall",
    title="HB vs. waterfall latency",
    ref="§1 / §7.2",
    # config is required because the baseline is re-simulated with the run's
    # seed; without it the fallback seed would silently change the numbers.
    requires=("dataset", "population", "environment", "config"),
    render={"kind": "table"},
)
def waterfall_latency_result(context: AnalysisContext) -> dict:
    """§1 / §7.2: HB latency versus the waterfall baseline."""
    result = hb_vs_waterfall_latency(
        context.dataset, list(context.population), context.environment,
        seed=context.seed,
    )
    text = format_table(
        ["protocol", "median (ms)", "p95 (ms)"],
        [
            ("header bidding", round(result.hb.median, 1), round(result.hb.p95, 1)),
            ("waterfall", round(result.waterfall.median, 1), round(result.waterfall.p95, 1)),
            ("HB / waterfall ratio", round(result.median_ratio, 2), round(result.p90_ratio, 2)),
        ],
        title="HB vs. waterfall latency",
    )
    return {"comparison": result, "text": text}


@register_metric(
    "prices",
    title="HB vs. waterfall prices",
    ref="§5.4",
    requires=("dataset", "population", "environment", "config"),
    render={"kind": "table"},
)
def waterfall_price_result(context: AnalysisContext) -> dict:
    """§5.4: HB baseline prices versus waterfall RTB prices."""
    result = hb_vs_waterfall_prices(
        context.dataset, list(context.population), context.environment,
        seed=context.seed,
    )
    text = format_table(
        ["channel", "median CPM", "p75 CPM"],
        [
            ("HB (vanilla profile)", round(result.hb.median, 4), round(result.hb.p75, 4)),
            ("waterfall RTB (real users)", round(result.waterfall_real_user.median, 4),
             round(result.waterfall_real_user.p75, 4)),
            ("waterfall RTB (vanilla)", round(result.waterfall_vanilla.median, 4),
             round(result.waterfall_vanilla.p75, 4)),
        ],
        title="HB vs. waterfall prices",
    )
    return {"comparison": result, "text": text}
