"""Bid-price analysis (§5.4, Figures 22-24).

Prices are the CPMs demand partners bid for the crawler's vanilla profile —
baseline prices, much lower than what a targeted real user would fetch.  The
paper compares them across facets, across creative sizes and against the
partners' popularity.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from repro.analysis.dataset import CrawlDataset
from repro.analysis.stats import Ecdf, WhiskerStats, ecdf, whisker_stats
from repro.errors import EmptyDatasetError
from repro.models import HBFacet, parse_size

__all__ = ["price_ecdf_by_facet", "price_by_size", "price_by_popularity_rank"]


def price_ecdf_by_facet(dataset: CrawlDataset, *, max_cpm: float | None = None) -> dict[HBFacet, Ecdf]:
    """Figure 22: CDF of observed bid prices (CPM) per HB facet.

    ``max_cpm`` truncates extreme outliers the same way the paper's plot caps
    its x-axis; ``None`` keeps everything.
    """
    grouped: dict[HBFacet, list[float]] = {facet: [] for facet in HBFacet}
    for auction in dataset.auctions():
        for bid in auction.bids:
            if bid.cpm is None or bid.cpm <= 0:
                continue
            if max_cpm is not None and bid.cpm > max_cpm:
                continue
            grouped[auction.facet].append(bid.cpm)
    result = {facet: ecdf(values) for facet, values in grouped.items() if values}
    if not result:
        raise EmptyDatasetError("no priced bids in the dataset")
    return result


def price_by_size(dataset: CrawlDataset, *, min_bids: int = 5) -> list[tuple[str, WhiskerStats]]:
    """Figure 23: bid price distribution per creative size, sorted by ad area."""
    grouped: dict[str, list[float]] = defaultdict(list)
    for bid in dataset.priced_bids():
        if bid.size is None or bid.cpm is None or bid.cpm <= 0:
            continue
        grouped[bid.size].append(float(bid.cpm))
    rows = []
    for size_label, values in grouped.items():
        if len(values) < min_bids:
            continue
        rows.append((size_label, whisker_stats(values)))
    if not rows:
        raise EmptyDatasetError("no priced bids with sizes in the dataset")

    def area_of(label: str) -> int:
        try:
            return parse_size(label).area
        except ValueError:
            return 0

    rows.sort(key=lambda row: -area_of(row[0]))
    return rows


def price_by_popularity_rank(dataset: CrawlDataset, *, bin_size: int = 10) -> list[tuple[str, WhiskerStats]]:
    """Figure 24: bid prices grouped by the bidding partner's popularity rank."""
    if bin_size < 1:
        raise ValueError("bin size must be positive")
    ranking = dataset.partner_popularity_ranking()
    rank_of = {name: index + 1 for index, name in enumerate(ranking)}
    grouped: dict[int, list[float]] = defaultdict(list)
    for bid in dataset.priced_bids():
        rank = rank_of.get(bid.partner)
        if rank is None or bid.cpm is None or bid.cpm <= 0:
            continue
        grouped[(rank - 1) // bin_size].append(float(bid.cpm))
    if not grouped:
        raise EmptyDatasetError("no priced bids in the dataset")
    rows = []
    for bin_index in sorted(grouped):
        low = bin_index * bin_size + 1
        high = (bin_index + 1) * bin_size
        rows.append((f"{low}-{high}", whisker_stats(grouped[bin_index])))
    return rows
