"""Bid-price analysis (§5.4, Figures 22-24).

Prices are the CPMs demand partners bid for the crawler's vanilla profile —
baseline prices, much lower than what a targeted real user would fetch.  The
paper compares them across facets, across creative sizes and against the
partners' popularity.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import register_metric
from repro.analysis.reporting import format_ecdf, format_whisker_rows
from repro.analysis.stats import Ecdf, WhiskerStats, ecdf, whisker_stats
from repro.errors import EmptyDatasetError
from repro.models import HBFacet, parse_size

__all__ = [
    "price_ecdf_by_facet",
    "price_by_size",
    "price_by_popularity_rank",
    "price_cdf_result",
    "price_per_size_result",
    "price_vs_popularity_result",
]


def price_ecdf_by_facet(dataset: CrawlDataset, *, max_cpm: float | None = None) -> dict[HBFacet, Ecdf]:
    """Figure 22: CDF of observed bid prices (CPM) per HB facet.

    ``max_cpm`` truncates extreme outliers the same way the paper's plot caps
    its x-axis; ``None`` keeps everything.
    """
    grouped: dict[HBFacet, list[float]] = {facet: [] for facet in HBFacet}
    for auction in dataset.auctions():
        for bid in auction.bids:
            if bid.cpm is None or bid.cpm <= 0:
                continue
            if max_cpm is not None and bid.cpm > max_cpm:
                continue
            grouped[auction.facet].append(bid.cpm)
    result = {facet: ecdf(values) for facet, values in grouped.items() if values}
    if not result:
        raise EmptyDatasetError("no priced bids in the dataset")
    return result


def price_by_size(dataset: CrawlDataset, *, min_bids: int = 5) -> list[tuple[str, WhiskerStats]]:
    """Figure 23: bid price distribution per creative size, sorted by ad area."""
    grouped: dict[str, list[float]] = defaultdict(list)
    for bid in dataset.priced_bids():
        if bid.size is None or bid.cpm is None or bid.cpm <= 0:
            continue
        grouped[bid.size].append(float(bid.cpm))
    rows = []
    for size_label, values in grouped.items():
        if len(values) < min_bids:
            continue
        rows.append((size_label, whisker_stats(values)))
    if not rows:
        raise EmptyDatasetError("no priced bids with sizes in the dataset")

    def area_of(label: str) -> int:
        try:
            return parse_size(label).area
        except ValueError:
            return 0

    rows.sort(key=lambda row: -area_of(row[0]))
    return rows


def price_by_popularity_rank(dataset: CrawlDataset, *, bin_size: int = 10) -> list[tuple[str, WhiskerStats]]:
    """Figure 24: bid prices grouped by the bidding partner's popularity rank."""
    if bin_size < 1:
        raise ValueError("bin size must be positive")
    ranking = dataset.partner_popularity_ranking()
    rank_of = {name: index + 1 for index, name in enumerate(ranking)}
    grouped: dict[int, list[float]] = defaultdict(list)
    for bid in dataset.priced_bids():
        rank = rank_of.get(bid.partner)
        if rank is None or bid.cpm is None or bid.cpm <= 0:
            continue
        grouped[(rank - 1) // bin_size].append(float(bid.cpm))
    if not grouped:
        raise EmptyDatasetError("no priced bids in the dataset")
    rows = []
    for bin_index in sorted(grouped):
        low = bin_index * bin_size + 1
        high = (bin_index + 1) * bin_size
        rows.append((f"{low}-{high}", whisker_stats(grouped[bin_index])))
    return rows


# -- registered metrics ------------------------------------------------------------


@register_metric(
    "fig22",
    title="Figure 22 — Bid prices per facet",
    ref="Figure 22 / §5.4",
    render={"kind": "ecdf", "unit": "CPM", "grouped_by": "facet"},
)
def price_cdf_result(context: AnalysisContext) -> dict:
    """Figure 22: CDF of bid prices per facet."""
    curves = price_ecdf_by_facet(context.dataset)
    blocks = [
        format_ecdf(curve, unit="CPM", title=f"Figure 22 — Bid prices ({facet.value})")
        for facet, curve in curves.items()
    ]
    medians = {facet: curve.median for facet, curve in curves.items()}
    return {"ecdfs": curves, "medians": medians, "text": "\n\n".join(blocks)}


@register_metric(
    "fig23",
    title="Figure 23 — Bid price per ad-slot size",
    ref="Figure 23 / §5.4",
    render={"kind": "whiskers", "unit": "CPM"},
)
def price_per_size_result(context: AnalysisContext) -> dict:
    """Figure 23: bid price distribution per creative size."""
    rows = price_by_size(context.dataset)
    text = format_whisker_rows(rows, label_header="ad-slot size", unit="CPM",
                               title="Figure 23 — Bid price per ad-slot size")
    return {"rows": rows, "text": text}


@register_metric(
    "fig24",
    title="Figure 24 — Bid price vs. partner popularity",
    ref="Figure 24 / §5.4",
    render={"kind": "whiskers", "unit": "CPM"},
    bin_size=10,
)
def price_vs_popularity_result(context: AnalysisContext, *, bin_size: int) -> dict:
    """Figure 24: bid prices vs. the bidding partner's popularity rank."""
    rows = price_by_popularity_rank(context.dataset, bin_size=bin_size)
    text = format_whisker_rows(rows, label_header="popularity rank bin", unit="CPM",
                               title="Figure 24 — Bid price vs. partner popularity")
    return {"rows": rows, "text": text}
