"""Plain-text rendering of analysis results.

The benchmarks and examples print the reproduced tables and figure series in
a stable, aligned text format so a reader can compare them against the paper
side by side without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.analysis.stats import Ecdf, WhiskerStats

__all__ = ["format_table", "format_summary", "format_whisker_rows", "format_ecdf", "format_share_rows"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str | None = None) -> str:
    """Render rows as an aligned text table."""
    materialised = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(len(headers))))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            # Covers -0.0 as well: a sign on an exact zero is noise in a table.
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        formatted = f"{value:.2f}" if abs(value) >= 1 else f"{value:.4f}"
        if float(formatted) == 0:
            # A tiny negative must not round to "-0.0000".
            formatted = formatted.lstrip("-")
        return formatted
    return str(value)


def format_summary(summary: Mapping[str, object], *, title: str | None = None) -> str:
    """Render a flat key/value summary (Table 1 style)."""
    rows = [(key, value) for key, value in summary.items()]
    return format_table(["metric", "value"], rows, title=title)


def format_whisker_rows(
    rows: Iterable[tuple[object, WhiskerStats]],
    *,
    label_header: str = "group",
    unit: str = "ms",
    title: str | None = None,
) -> str:
    """Render (label, whisker stats) rows the way the paper's box plots read."""
    table_rows = [
        (
            label,
            round(stats.p5, 3),
            round(stats.p25, 3),
            round(stats.median, 3),
            round(stats.p75, 3),
            round(stats.p95, 3),
            stats.n,
        )
        for label, stats in rows
    ]
    headers = [label_header, f"p5 ({unit})", f"p25 ({unit})", f"median ({unit})",
               f"p75 ({unit})", f"p95 ({unit})", "n"]
    return format_table(headers, table_rows, title=title)


def format_ecdf(ecdf_obj: Ecdf, *, quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95),
                unit: str = "", title: str | None = None) -> str:
    """Render a few quantiles of an ECDF as a compact table."""
    rows = [(f"p{int(q * 100)}", round(ecdf_obj.quantile(q), 4)) for q in quantiles]
    headers = ["quantile", f"value {unit}".strip()]
    return format_table(headers, rows, title=title)


def format_share_rows(rows: Iterable[tuple[object, float]], *, label_header: str = "item",
                      title: str | None = None) -> str:
    """Render (label, share) rows as percentages."""
    table_rows = [(label, f"{share * 100:.2f}%") for label, share in rows]
    return format_table([label_header, "share"], table_rows, title=title)
