"""Header-bidding latency analysis (§5.2, Figures 12-16).

Latency is measured from different vantage points: the page-level HB latency
(first bid request to ad-server response), its relation to the site's ranking
and to the number of partners used, and the per-partner response latencies
that identify the fastest, slowest and most consistent demand partners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import register_metric
from repro.analysis.reporting import format_ecdf, format_table, format_whisker_rows
from repro.analysis.stats import Ecdf, WhiskerStats, ecdf, whisker_stats
from repro.errors import EmptyDatasetError

__all__ = [
    "PartnerLatencyProfile",
    "total_latency_ecdf",
    "latency_by_rank_bin",
    "partner_latency_profiles",
    "fastest_partners",
    "slowest_partners",
    "latency_by_partner_count",
    "latency_by_popularity_rank",
    "latency_ecdf_result",
    "latency_vs_rank_result",
    "partner_latency_result",
    "latency_vs_partner_count_result",
    "latency_vs_popularity_result",
]


def _site_latency_values(dataset: CrawlDataset) -> list[float]:
    values = dataset.hb_latency_values()
    if not values:
        raise EmptyDatasetError("no HB latency observations in the dataset")
    return values


def total_latency_ecdf(dataset: CrawlDataset) -> Ecdf:
    """Figure 12: ECDF of the total HB latency per page visit."""
    return ecdf(_site_latency_values(dataset))


def latency_by_rank_bin(dataset: CrawlDataset, *, bin_size: int = 500) -> list[tuple[str, WhiskerStats]]:
    """Figure 13: HB latency grouped by Alexa-rank bins.

    Returns ``(bin label, whisker statistics)`` rows ordered by rank.
    """
    if bin_size < 1:
        raise ValueError("bin size must be positive")
    grouped = dataset.hb_latencies_by_rank_bin(bin_size)
    if not grouped:
        raise EmptyDatasetError("no HB latency observations in the dataset")
    rows = []
    for bin_index in sorted(grouped):
        low = bin_index * bin_size + 1
        high = (bin_index + 1) * bin_size
        rows.append((f"{low}-{high}", whisker_stats(grouped[bin_index])))
    return rows


@dataclass(frozen=True)
class PartnerLatencyProfile:
    """Latency summary of one demand partner across all its observations."""

    partner: str
    stats: WhiskerStats
    popularity_rank: int

    @property
    def median_ms(self) -> float:
        return self.stats.median

    @property
    def variability_ms(self) -> float:
        return self.stats.spread


def partner_latency_profiles(dataset: CrawlDataset, *, min_samples: int = 3) -> list[PartnerLatencyProfile]:
    """Per-partner latency profiles, ordered by market popularity.

    Partners with fewer than ``min_samples`` latency observations are dropped,
    as single samples make the fastest/slowest rankings meaningless.
    """
    samples = dataset.partner_latency_samples()
    ranking = dataset.partner_popularity_ranking()
    rank_of = {name: index + 1 for index, name in enumerate(ranking)}
    profiles = []
    for partner, values in samples.items():
        if len(values) < min_samples:
            continue
        profiles.append(
            PartnerLatencyProfile(
                partner=partner,
                stats=whisker_stats(values),
                popularity_rank=rank_of.get(partner, len(ranking) + 1),
            )
        )
    if not profiles:
        raise EmptyDatasetError("no partner latency observations in the dataset")
    profiles.sort(key=lambda profile: profile.popularity_rank)
    return profiles


def fastest_partners(dataset: CrawlDataset, *, top_n: int = 10, min_samples: int = 3) -> list[PartnerLatencyProfile]:
    """Figure 14 (left group): the partners with the lowest median latency."""
    profiles = partner_latency_profiles(dataset, min_samples=min_samples)
    return sorted(profiles, key=lambda profile: profile.median_ms)[:top_n]


def slowest_partners(dataset: CrawlDataset, *, top_n: int = 10, min_samples: int = 3) -> list[PartnerLatencyProfile]:
    """Figure 14 (right group): the partners with the highest median latency."""
    profiles = partner_latency_profiles(dataset, min_samples=min_samples)
    return sorted(profiles, key=lambda profile: profile.median_ms, reverse=True)[:top_n]


def latency_by_partner_count(dataset: CrawlDataset, *, max_count: int = 15) -> list[tuple[int, WhiskerStats, float]]:
    """Figure 15: latency and share of sites vs. the number of partners used.

    Returns ``(partner count, latency whiskers, share of HB sites)`` rows.
    """
    per_site_counts: dict[str, int] = {}
    for site in dataset.hb_sites():
        per_site_counts[site.domain] = site.n_partners
    grouped: dict[int, list[float]] = {}
    for detection in dataset.hb_detections():
        if detection.total_latency_ms is None or detection.total_latency_ms <= 0:
            continue
        count = min(per_site_counts.get(detection.domain, detection.n_partners), max_count)
        if count < 1:
            continue
        grouped.setdefault(count, []).append(detection.total_latency_ms)
    if not grouped:
        raise EmptyDatasetError("no HB latency observations in the dataset")
    total_sites = len(per_site_counts) or 1
    site_share = {
        count: sum(1 for value in per_site_counts.values() if min(value, max_count) == count) / total_sites
        for count in grouped
    }
    return [
        (count, whisker_stats(values), site_share.get(count, 0.0))
        for count, values in sorted(grouped.items())
    ]


def latency_by_popularity_rank(dataset: CrawlDataset, *, bin_size: int = 10) -> list[tuple[str, WhiskerStats]]:
    """Figure 16: partner latency distributions grouped by popularity rank."""
    if bin_size < 1:
        raise ValueError("bin size must be positive")
    profiles = partner_latency_profiles(dataset, min_samples=1)
    samples = dataset.partner_latency_samples()
    grouped: dict[int, list[float]] = {}
    for profile in profiles:
        bin_index = (profile.popularity_rank - 1) // bin_size
        grouped.setdefault(bin_index, []).extend(samples.get(profile.partner, []))
    rows = []
    for bin_index in sorted(grouped):
        low = bin_index * bin_size + 1
        high = (bin_index + 1) * bin_size
        rows.append((f"{low}-{high}", whisker_stats(grouped[bin_index])))
    return rows


# -- registered metrics ------------------------------------------------------------


@register_metric(
    "fig12",
    title="Figure 12 — Total HB latency",
    ref="Figure 12 / §5.2",
    render={"kind": "ecdf", "unit": "ms"},
)
def latency_ecdf_result(context: AnalysisContext) -> dict:
    """Figure 12: ECDF of total HB latency per page visit."""
    curve = total_latency_ecdf(context.dataset)
    text = format_ecdf(curve, unit="ms", title="Figure 12 — Total HB latency (ECDF)")
    return {
        "ecdf": curve,
        "median_ms": curve.median,
        "share_above_1s": curve.fraction_above(1_000.0),
        "share_above_3s": curve.fraction_above(3_000.0),
        "text": text,
    }


@register_metric(
    "fig13",
    title="Figure 13 — HB latency vs. site rank",
    ref="Figure 13 / §5.2",
    render={"kind": "whiskers", "unit": "ms"},
    bin_size=None,
)
def latency_vs_rank_result(context: AnalysisContext, *, bin_size: int | None) -> dict:
    """Figure 13: HB latency versus site popularity rank."""
    if bin_size is None:
        # The paper bins 5k HB sites out of 35k into bins of 500; scale the bin
        # width with the simulated population so each bin keeps enough sites.
        bin_size = max(50, context.total_sites // 70)
    rows = latency_by_rank_bin(context.dataset, bin_size=bin_size)
    text = format_whisker_rows(rows, label_header="rank bin", unit="ms",
                               title="Figure 13 — HB latency vs. site rank")
    return {"rows": rows, "bin_size": bin_size, "text": text}


@register_metric(
    "fig14",
    title="Figure 14 — Partner latency profiles",
    ref="Figure 14 / §5.2",
    render={"kind": "whiskers", "unit": "ms"},
    top_n=10,
)
def partner_latency_result(context: AnalysisContext, *, top_n: int) -> dict:
    """Figure 14: fastest, top-market-share and slowest partners by latency."""
    fastest = fastest_partners(context.dataset, top_n=top_n)
    slowest = slowest_partners(context.dataset, top_n=top_n)
    profiles = partner_latency_profiles(context.dataset)
    top_market = profiles[:top_n]
    text = "\n\n".join(
        [
            format_whisker_rows([(p.partner, p.stats) for p in fastest],
                                label_header="fastest partner", unit="ms"),
            format_whisker_rows([(p.partner, p.stats) for p in top_market],
                                label_header="top market-share partner", unit="ms"),
            format_whisker_rows([(p.partner, p.stats) for p in slowest],
                                label_header="slowest partner", unit="ms"),
        ]
    )
    return {"fastest": fastest, "top_market": top_market, "slowest": slowest, "text": text}


@register_metric(
    "fig15",
    title="Figure 15 — HB latency vs. number of demand partners",
    ref="Figure 15 / §5.2",
    render={"kind": "table"},
)
def latency_vs_partner_count_result(context: AnalysisContext) -> dict:
    """Figure 15: HB latency and share of sites vs. number of partners."""
    rows = latency_by_partner_count(context.dataset)
    text = format_table(
        ["#partners", "median (ms)", "p95 (ms)", "share of sites"],
        [
            (count, round(stats.median, 1), round(stats.p95, 1), f"{share * 100:.1f}%")
            for count, stats, share in rows
        ],
        title="Figure 15 — HB latency vs. number of demand partners",
    )
    return {"rows": rows, "text": text}


@register_metric(
    "fig16",
    title="Figure 16 — Partner latency vs. popularity rank",
    ref="Figure 16 / §5.2",
    render={"kind": "whiskers", "unit": "ms"},
    bin_size=10,
)
def latency_vs_popularity_result(context: AnalysisContext, *, bin_size: int) -> dict:
    """Figure 16: partner latency variability vs. popularity rank."""
    rows = latency_by_popularity_rank(context.dataset, bin_size=bin_size)
    text = format_whisker_rows(rows, label_header="popularity rank bin", unit="ms",
                               title="Figure 16 — Partner latency vs. popularity rank")
    return {"rows": rows, "text": text}
