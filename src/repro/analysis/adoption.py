"""Header-bidding adoption analysis (§3.2, §4.1, Figure 4).

Two views of adoption are reported by the paper:

* the live crawl's adoption rate overall and per Alexa-rank tier, and
* the historical adoption series obtained by statically analysing Wayback
  snapshots of the yearly top-1k lists (Figure 4).

The functions below compute the first view from a :class:`CrawlDataset`; the
historical series is produced by :class:`repro.crawler.historical.HistoricalCrawler`
and merely summarised here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import register_metric
from repro.analysis.reporting import format_table
from repro.crawler.historical import HistoricalAdoption
from repro.errors import EmptyDatasetError

__all__ = [
    "RankTierAdoption",
    "adoption_by_rank_tier",
    "adoption_summary",
    "historical_adoption_rows",
    "adoption_by_rank_result",
    "adoption_history_result",
]


@dataclass(frozen=True)
class RankTierAdoption:
    """Adoption within one rank tier (e.g. the top 5k)."""

    tier_label: str
    min_rank: int
    max_rank: int
    sites: int
    hb_sites: int

    @property
    def adoption_rate(self) -> float:
        return self.hb_sites / self.sites if self.sites else 0.0


#: The rank tiers the paper quotes: top 5k, 5k-15k, and the rest.
DEFAULT_TIERS: tuple[tuple[str, int, int], ...] = (
    ("top 5k", 1, 5_000),
    ("5k-15k", 5_001, 15_000),
    ("15k+", 15_001, 10**9),
)


def adoption_by_rank_tier(
    dataset: CrawlDataset,
    tiers: Sequence[tuple[str, int, int]] | None = None,
    *,
    scale_to_max_rank: bool = True,
) -> list[RankTierAdoption]:
    """Adoption rate per rank tier.

    When the crawl covers fewer sites than the paper's 35k (a scaled-down
    run), ``scale_to_max_rank`` shrinks the tier boundaries proportionally so
    the three tiers still partition the crawled population.
    """
    sites = dataset.sites()
    if not sites:
        raise EmptyDatasetError("cannot compute adoption of an empty dataset")
    tiers = list(tiers or DEFAULT_TIERS)

    max_rank = max(site.rank for site in sites)
    reference_max = max(high for _, _, high in tiers if high < 10**8)
    scale = 1.0
    if scale_to_max_rank and max_rank < reference_max:
        scale = max_rank / 35_000

    results = []
    for label, low, high in tiers:
        low_scaled = max(1, int(round((low - 1) * scale)) + 1) if scale != 1.0 else low
        if high < 10**8 and scale != 1.0:
            high_scaled = max(low_scaled, int(round(high * scale)))
        else:
            high_scaled = high
        in_tier = [site for site in sites if low_scaled <= site.rank <= high_scaled]
        hb_in_tier = [site for site in in_tier if site.hb_detected]
        results.append(
            RankTierAdoption(
                tier_label=label,
                min_rank=low_scaled,
                max_rank=min(high_scaled, max_rank),
                sites=len(in_tier),
                hb_sites=len(hb_in_tier),
            )
        )
    return results


def adoption_summary(dataset: CrawlDataset) -> dict[str, float]:
    """Overall adoption rate plus the per-tier rates, as one flat mapping."""
    sites = dataset.sites()
    if not sites:
        raise EmptyDatasetError("cannot compute adoption of an empty dataset")
    hb_sites = [site for site in sites if site.hb_detected]
    summary: dict[str, float] = {
        "overall": len(hb_sites) / len(sites),
        "sites": float(len(sites)),
        "hb_sites": float(len(hb_sites)),
    }
    for tier in adoption_by_rank_tier(dataset):
        summary[f"tier:{tier.tier_label}"] = tier.adoption_rate
    return summary


def historical_adoption_rows(historical: HistoricalAdoption) -> list[dict[str, float]]:
    """Flatten a historical adoption result into Figure-4 style rows."""
    rows = []
    for year in historical.years:
        yearly = historical.by_year[year]
        rows.append(
            {
                "year": float(year),
                "sites": float(yearly.sites_analyzed),
                "detected_hb": float(yearly.sites_with_hb),
                "adoption_rate": yearly.adoption_rate,
                "precision": yearly.precision,
                "recall": yearly.recall,
            }
        )
    return rows


# -- registered metrics ------------------------------------------------------------


@register_metric(
    "adoption",
    title="HB adoption by rank tier",
    ref="§3.2",
    render={"kind": "table"},
)
def adoption_by_rank_result(context: AnalysisContext) -> dict:
    """§3.2: adoption rate per rank tier (top 5k / 5k-15k / rest)."""
    tiers = adoption_by_rank_tier(context.dataset)
    overall = adoption_summary(context.dataset)["overall"]
    text = format_table(
        ["rank tier", "sites", "HB sites", "adoption"],
        [
            (tier.tier_label, tier.sites, tier.hb_sites, f"{tier.adoption_rate * 100:.1f}%")
            for tier in tiers
        ]
        + [("overall", int(sum(t.sites for t in tiers)), int(sum(t.hb_sites for t in tiers)),
            f"{overall * 100:.1f}%")],
        title="HB adoption by rank tier",
    )
    return {"tiers": tiers, "overall": overall, "text": text}


@register_metric(
    "fig04",
    title="Figure 4 — HB adoption by year",
    ref="Figure 4 / §3.2",
    requires=("historical",),
    render={"kind": "table"},
)
def adoption_history_result(context: AnalysisContext) -> dict:
    """Figure 4: HB adoption per year on the yearly top-1k lists."""
    rows = historical_adoption_rows(context.historical)
    text = format_table(
        ["year", "sites", "detected HB", "adoption", "precision", "recall"],
        [
            (int(row["year"]), int(row["sites"]), int(row["detected_hb"]),
             f"{row['adoption_rate'] * 100:.1f}%", f"{row['precision'] * 100:.1f}%",
             f"{row['recall'] * 100:.1f}%")
            for row in rows
        ],
        title="Figure 4 — HB adoption by year (static analysis of archived snapshots)",
    )
    return {"rows": rows, "text": text}
