"""HB facet breakdown (§4.6).

The share of HB-enabled sites deploying each of the three facets.  The paper
reports server-side 48%, hybrid 34.7% and client-side 17.3%, a split it reads
as publishers preferring the convenience and centralisation of letting a big
partner (usually DFP) run the auction.
"""

from __future__ import annotations

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import register_metric
from repro.analysis.reporting import format_share_rows
from repro.errors import EmptyDatasetError
from repro.models import HBFacet

__all__ = ["facet_breakdown", "facet_counts", "facet_breakdown_result"]


def facet_counts(dataset: CrawlDataset) -> dict[HBFacet, int]:
    """Number of distinct HB sites per facet."""
    grouped = dataset.by_facet()
    return {facet: len(sites) for facet, sites in grouped.items()}


def facet_breakdown(dataset: CrawlDataset) -> dict[HBFacet, float]:
    """Share of HB sites per facet (sums to 1)."""
    counts = facet_counts(dataset)
    total = sum(counts.values())
    if total == 0:
        raise EmptyDatasetError("no HB sites in the dataset")
    return {facet: count / total for facet, count in counts.items()}


@register_metric(
    "facet",
    title="Facet breakdown (share of HB sites)",
    ref="§4.6",
    render={"kind": "share-rows"},
)
def facet_breakdown_result(context: AnalysisContext) -> dict:
    """§4.6: share of HB sites per facet."""
    breakdown = facet_breakdown(context.dataset)
    text = format_share_rows(
        [(facet.value, share) for facet, share in breakdown.items()],
        label_header="HB facet",
        title="Facet breakdown (share of HB sites)",
    )
    return {"breakdown": breakdown, "text": text}
