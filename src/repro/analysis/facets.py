"""HB facet breakdown (§4.6).

The share of HB-enabled sites deploying each of the three facets.  The paper
reports server-side 48%, hybrid 34.7% and client-side 17.3%, a split it reads
as publishers preferring the convenience and centralisation of letting a big
partner (usually DFP) run the auction.
"""

from __future__ import annotations

from repro.analysis.dataset import CrawlDataset
from repro.errors import EmptyDatasetError
from repro.models import HBFacet

__all__ = ["facet_breakdown", "facet_counts"]


def facet_counts(dataset: CrawlDataset) -> dict[HBFacet, int]:
    """Number of distinct HB sites per facet."""
    grouped = dataset.by_facet()
    return {facet: len(sites) for facet, sites in grouped.items()}


def facet_breakdown(dataset: CrawlDataset) -> dict[HBFacet, float]:
    """Share of HB sites per facet (sums to 1)."""
    counts = facet_counts(dataset)
    total = sum(counts.values())
    if total == 0:
        raise EmptyDatasetError("no HB sites in the dataset")
    return {facet: count / total for facet, count in counts.items()}
