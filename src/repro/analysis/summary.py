"""Crawl-summary metrics: Table 1 and the detector-accuracy headline (§4.1).

Table 1 is a pure dataset metric and therefore available offline; detector
accuracy compares detections against the simulation's ground-truth publisher
population, so it requires an in-memory experiment run.
"""

from __future__ import annotations

from repro.analysis.context import AnalysisContext
from repro.analysis.registry import register_metric
from repro.analysis.reporting import format_summary, format_table

__all__ = ["table1_summary_result", "detector_accuracy_result"]


@register_metric(
    "table1",
    title="Table 1 — Crawl summary",
    ref="Table 1",
    render={"kind": "table"},
)
def table1_summary_result(context: AnalysisContext) -> dict:
    """Table 1: summary of the data collected by the crawl."""
    summary = context.dataset.summary()
    rows = [
        ("# of websites crawled", summary["websites_crawled"]),
        ("# of websites with HB", summary["websites_with_hb"]),
        ("# of auctions detected", summary["auctions_detected"]),
        ("# of bids detected", summary["bids_detected"]),
        ("# of competing Demand Partners", summary["competing_demand_partners"]),
        ("# crawl days", summary["crawl_days"]),
        ("HB adoption rate", f"{summary['adoption_rate'] * 100:.2f}%"),
    ]
    text = format_table(["data", "volume"], rows, title="Table 1 — Crawl summary")
    return {"summary": summary, "text": text}


@register_metric(
    "accuracy",
    title="HBDetector accuracy vs. ground truth",
    ref="§4.1",
    requires=("dataset", "population"),
    render={"kind": "summary"},
)
def detector_accuracy_result(context: AnalysisContext) -> dict:
    """§4.1: HBDetector precision/recall against the simulation's ground truth.

    The paper argues for 100% precision and high (but not perfect) recall; the
    reproduction can measure both exactly because it owns the ground truth.
    """
    population = context.population
    truth = {publisher.domain: publisher.uses_hb for publisher in population}
    facet_truth = {publisher.domain: publisher.facet for publisher in population}

    tp = fp = fn = tn = 0
    facet_correct = 0
    facet_total = 0
    for detection in context.dataset.sites():
        actual = truth.get(detection.domain, False)
        if detection.hb_detected and actual:
            tp += 1
            facet_total += 1
            if detection.facet == facet_truth.get(detection.domain):
                facet_correct += 1
        elif detection.hb_detected and not actual:
            fp += 1
        elif not detection.hb_detected and actual:
            fn += 1
        else:
            tn += 1
    precision = tp / (tp + fp) if (tp + fp) else 1.0
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    facet_accuracy = facet_correct / facet_total if facet_total else 1.0
    metrics = {
        "true_positives": tp,
        "false_positives": fp,
        "false_negatives": fn,
        "true_negatives": tn,
        "precision": precision,
        "recall": recall,
        "facet_accuracy": facet_accuracy,
    }
    text = format_summary(
        {
            **{key: value for key, value in metrics.items() if isinstance(value, int)},
            "precision": f"{precision * 100:.2f}%",
            "recall": f"{recall * 100:.2f}%",
            "facet_accuracy": f"{facet_accuracy * 100:.2f}%",
        },
        title="HBDetector accuracy vs. ground truth",
    )
    return {"metrics": metrics, "text": text}
