"""Analysis of crawled header-bidding datasets.

Every figure and table in the paper's evaluation section maps to one
registered :class:`~repro.analysis.registry.Metric` in this package, computed
over a :class:`~repro.analysis.dataset.CrawlDataset` (a collection of
per-page detections with lazily-cached indices) through an
:class:`~repro.analysis.context.AnalysisContext`::

    from repro.analysis import AnalysisContext, CrawlDataset, compute_metric

    dataset = CrawlDataset.from_jsonl("crawl.jsonl")
    result = compute_metric("fig12", AnalysisContext.offline(dataset))
    print(result.text)

The underlying per-figure computation functions remain importable from the
individual modules for callers that want raw data structures instead of the
:class:`~repro.analysis.registry.MetricResult` envelope.
"""

from repro.analysis.stats import Ecdf, WhiskerStats, ecdf, percentile, whisker_stats
from repro.analysis.dataset import CrawlDataset
from repro.analysis.context import AnalysisContext
from repro.analysis.registry import (
    FunctionMetric,
    Metric,
    MetricResult,
    available_metrics,
    compute_metric,
    get_metric,
    iter_metrics,
    metric_names,
    register_metric,
)
from repro.analysis import summary as summary  # registers table1/accuracy metrics
from repro.analysis.adoption import adoption_by_rank_tier, adoption_summary
from repro.analysis.partners import (
    partner_popularity,
    partners_per_site_ecdf,
    partner_combinations,
    partners_per_facet,
)
from repro.analysis.latency import (
    total_latency_ecdf,
    latency_by_rank_bin,
    partner_latency_profiles,
    latency_by_partner_count,
    latency_by_popularity_rank,
)
from repro.analysis.late_bids import late_bid_ecdf, late_bids_per_partner
from repro.analysis.adslots import adslots_per_site_ecdf, latency_by_adslot_count, adslot_size_shares
from repro.analysis.prices import price_ecdf_by_facet, price_by_size, price_by_popularity_rank
from repro.analysis.facets import facet_breakdown
from repro.analysis.comparison import hb_vs_waterfall_latency, hb_vs_waterfall_prices
from repro.analysis.reporting import format_table, format_summary

__all__ = [
    "Ecdf",
    "WhiskerStats",
    "ecdf",
    "percentile",
    "whisker_stats",
    "CrawlDataset",
    "AnalysisContext",
    "Metric",
    "MetricResult",
    "FunctionMetric",
    "available_metrics",
    "compute_metric",
    "get_metric",
    "iter_metrics",
    "metric_names",
    "register_metric",
    "adoption_by_rank_tier",
    "adoption_summary",
    "partner_popularity",
    "partners_per_site_ecdf",
    "partner_combinations",
    "partners_per_facet",
    "total_latency_ecdf",
    "latency_by_rank_bin",
    "partner_latency_profiles",
    "latency_by_partner_count",
    "latency_by_popularity_rank",
    "late_bid_ecdf",
    "late_bids_per_partner",
    "adslots_per_site_ecdf",
    "latency_by_adslot_count",
    "adslot_size_shares",
    "price_ecdf_by_facet",
    "price_by_size",
    "price_by_popularity_rank",
    "facet_breakdown",
    "hb_vs_waterfall_latency",
    "hb_vs_waterfall_prices",
    "format_table",
    "format_summary",
]
