"""The analysis context a metric computes against.

A :class:`AnalysisContext` bundles everything a metric may consume: the crawl
dataset itself plus the optional simulation-side objects (publisher
population, auction environment, experiment configuration, historical
adoption study).  Metrics declare which pieces they require; an offline
context built from a saved crawl provides only the dataset, so
simulation-dependent metrics (detector accuracy, the waterfall baselines)
are reported as unavailable instead of silently recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataset import CrawlDataset

__all__ = ["AnalysisContext", "CONTEXT_FIELDS"]

#: Every context piece a metric can declare in its ``requires`` tuple.
CONTEXT_FIELDS: tuple[str, ...] = ("dataset", "population", "environment", "config", "historical")


@dataclass
class AnalysisContext:
    """What one metric computation can see."""

    dataset: "CrawlDataset | None" = None
    population: Any = None
    environment: Any = None
    config: Any = None
    historical: Any = None

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_artifacts(cls, artifacts: Any, *, historical: Any = None) -> "AnalysisContext":
        """The full context of an in-memory experiment run."""
        return cls(
            dataset=artifacts.dataset,
            population=artifacts.population,
            environment=artifacts.environment,
            config=artifacts.config,
            historical=historical,
        )

    @classmethod
    def offline(cls, dataset: "CrawlDataset") -> "AnalysisContext":
        """A dataset-only context, e.g. over a crawl loaded from disk."""
        return cls(dataset=dataset)

    # -- capability queries -----------------------------------------------------
    def has(self, name: str) -> bool:
        return getattr(self, name, None) is not None

    def provides(self) -> frozenset[str]:
        """The context pieces available to metrics."""
        return frozenset(name for name in CONTEXT_FIELDS if self.has(name))

    # -- derived defaults -------------------------------------------------------
    @property
    def total_sites(self) -> int:
        """The crawled population size.

        Taken from the experiment configuration when present; offline it is
        recovered from the dataset itself (the discovery pass visits every
        site once, so distinct domains == sites crawled), which keeps
        population-scaled defaults like the Figure-13 bin width identical
        between the in-memory and the offline path.
        """
        if self.config is not None:
            return int(self.config.total_sites)
        if self.dataset is not None:
            return len(self.dataset.sites())
        return 0

    @property
    def seed(self) -> int:
        """The experiment seed (paper default when no configuration is given)."""
        return int(self.config.seed) if self.config is not None else 2019
