"""Late-bid analysis (§5.2, Figures 17-18).

A bid is *late* when it reaches the browser after the wrapper has already
called the ad server; late bids are pure waste — network traffic and partner
compute spent on offers that can no longer win.  The paper quantifies them per
auction (Figure 17) and per demand partner (Figure 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import register_metric
from repro.analysis.reporting import format_ecdf, format_table
from repro.analysis.stats import Ecdf, ecdf
from repro.errors import EmptyDatasetError

__all__ = [
    "PartnerLateness",
    "late_bid_ecdf",
    "late_bids_per_partner",
    "late_bid_share_distribution",
    "late_bids_ecdf_result",
    "late_bids_per_partner_result",
]


def late_bid_ecdf(dataset: CrawlDataset, *, only_auctions_with_late_bids: bool = True) -> Ecdf:
    """Figure 17: ECDF of the share of late bids per auction.

    The paper plots the distribution over auctions that had at least one late
    bid; set ``only_auctions_with_late_bids=False`` to include all auctions
    that received bids.
    """
    fractions = []
    for auction in dataset.auctions():
        fraction = auction.late_bid_fraction
        if fraction is None:
            continue
        if only_auctions_with_late_bids and fraction == 0.0:
            continue
        fractions.append(fraction * 100.0)
    if not fractions:
        raise EmptyDatasetError("no auctions with late bids in the dataset")
    return ecdf(fractions)


@dataclass(frozen=True)
class PartnerLateness:
    """Share of one partner's bids that arrived too late."""

    partner: str
    bids: int
    late_bids: int

    @property
    def late_share(self) -> float:
        return self.late_bids / self.bids if self.bids else 0.0


def late_bids_per_partner(dataset: CrawlDataset, *, min_bids: int = 3) -> list[PartnerLateness]:
    """Figure 18: percentage of late bids per demand partner, worst first."""
    grouped = dataset.bids_by_partner()
    rows = []
    for partner, bids in grouped.items():
        if len(bids) < min_bids:
            continue
        late = sum(1 for bid in bids if bid.late)
        rows.append(PartnerLateness(partner=partner, bids=len(bids), late_bids=late))
    if not rows:
        raise EmptyDatasetError("no partner bids in the dataset")
    rows.sort(key=lambda row: (-row.late_share, row.partner))
    return rows


def late_bid_share_distribution(dataset: CrawlDataset) -> dict[str, float]:
    """Headline late-bid statistics quoted in §5.2 / §7.3."""
    counts = {"auctions_with_bids": 0, "auctions_with_late_bids": 0}
    late_counts = []
    for auction in dataset.auctions():
        if not auction.bids:
            continue
        counts["auctions_with_bids"] += 1
        n_late = len(auction.late_bids)
        if n_late:
            counts["auctions_with_late_bids"] += 1
            late_counts.append(n_late)
    if counts["auctions_with_bids"] == 0:
        raise EmptyDatasetError("no auctions with bids in the dataset")
    summary: dict[str, float] = {
        "share_of_auctions_with_late_bids": (
            counts["auctions_with_late_bids"] / counts["auctions_with_bids"]
        ),
    }
    if late_counts:
        for threshold in (1, 2, 4):
            summary[f"share_with_at_least_{threshold}_late"] = sum(
                1 for count in late_counts if count >= threshold
            ) / len(late_counts)
    return summary


# -- registered metrics ------------------------------------------------------------


@register_metric(
    "fig17",
    title="Figure 17 — Late bids per auction",
    ref="Figure 17 / §5.2",
    render={"kind": "ecdf", "unit": "% late"},
)
def late_bids_ecdf_result(context: AnalysisContext) -> dict:
    """Figure 17: ECDF of the share of late bids per auction."""
    curve = late_bid_ecdf(context.dataset)
    summary = late_bid_share_distribution(context.dataset)
    text = format_ecdf(curve, unit="% late",
                       title="Figure 17 — Late bids per auction (ECDF, % of bids)")
    return {"ecdf": curve, "median_late_share": curve.median, "summary": summary, "text": text}


@register_metric(
    "fig18",
    title="Figure 18 — Late bids per demand partner",
    ref="Figure 18 / §5.2",
    render={"kind": "table"},
    top_n=25,
)
def late_bids_per_partner_result(context: AnalysisContext, *, top_n: int) -> dict:
    """Figure 18: share of late bids per demand partner."""
    rows = late_bids_per_partner(context.dataset)
    partners_half_late = sum(1 for row in rows if row.late_share >= 0.5)
    text = format_table(
        ["partner", "bids", "late bids", "late share"],
        [(row.partner, row.bids, row.late_bids, f"{row.late_share * 100:.1f}%") for row in rows[:top_n]],
        title="Figure 18 — Late bids per demand partner",
    )
    return {"rows": rows, "partners_half_late": partners_half_late, "text": text}
