"""Statistical primitives used throughout the analysis.

The paper reports its results as ECDF curves, medians and box/whisker plots
with 5th/25th/75th/95th percentiles.  These helpers compute exactly those
summaries from plain sequences of numbers, with explicit handling of empty
input (an :class:`~repro.errors.EmptyDatasetError` instead of silent NaNs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import EmptyDatasetError

__all__ = ["Ecdf", "WhiskerStats", "ecdf", "percentile", "whisker_stats", "histogram_shares"]


@dataclass(frozen=True)
class Ecdf:
    """An empirical cumulative distribution function.

    ``values`` are the sorted observations and ``probabilities`` the
    corresponding cumulative probabilities P(X <= value).
    """

    values: tuple[float, ...]
    probabilities: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.probabilities):
            raise ValueError("values and probabilities must have the same length")
        if not self.values:
            raise EmptyDatasetError("cannot build an ECDF from no observations")

    @property
    def n(self) -> int:
        return len(self.values)

    def quantile(self, q: float) -> float:
        """The smallest value whose cumulative probability is >= ``q``."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        probabilities = np.asarray(self.probabilities)
        index = int(np.searchsorted(probabilities, q, side="left"))
        index = min(index, len(self.values) - 1)
        return self.values[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def fraction_at_most(self, threshold: float) -> float:
        """P(X <= threshold)."""
        values = np.asarray(self.values)
        count = int(np.searchsorted(values, threshold, side="right"))
        return count / self.n

    def fraction_above(self, threshold: float) -> float:
        """P(X > threshold)."""
        return 1.0 - self.fraction_at_most(threshold)


@dataclass(frozen=True)
class WhiskerStats:
    """Box/whisker summary: 5th, 25th, 50th, 75th and 95th percentiles."""

    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    n: int

    def as_dict(self) -> dict[str, float]:
        return {
            "p5": self.p5,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "n": float(self.n),
        }

    @property
    def interquartile_range(self) -> float:
        return self.p75 - self.p25

    @property
    def spread(self) -> float:
        """Whisker span (95th - 5th percentile), the paper's variability proxy."""
        return self.p95 - self.p5


def _as_array(values: Iterable[float], what: str) -> np.ndarray:
    array = np.asarray([float(v) for v in values], dtype=float)
    if array.size == 0:
        raise EmptyDatasetError(f"cannot compute {what} of an empty sequence")
    if np.isnan(array).any():
        raise ValueError(f"{what} input contains NaN")
    return array


def ecdf(values: Iterable[float]) -> Ecdf:
    """Build the ECDF of a sequence of observations."""
    array = np.sort(_as_array(values, "an ECDF"))
    probabilities = np.arange(1, array.size + 1, dtype=float) / array.size
    return Ecdf(values=tuple(array.tolist()), probabilities=tuple(probabilities.tolist()))


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (q in [0, 100]) of a sequence."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    return float(np.percentile(_as_array(values, "a percentile"), q))


def whisker_stats(values: Iterable[float]) -> WhiskerStats:
    """The box/whisker summary used by the paper's latency and price plots."""
    array = _as_array(values, "whisker statistics")
    p5, p25, p50, p75, p95 = np.percentile(array, [5, 25, 50, 75, 95])
    return WhiskerStats(
        p5=float(p5), p25=float(p25), median=float(p50), p75=float(p75), p95=float(p95),
        n=int(array.size),
    )


def histogram_shares(labels: Iterable[str]) -> dict[str, float]:
    """Share of each distinct label in a sequence (sums to 1)."""
    counts: dict[str, int] = {}
    total = 0
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
        total += 1
    if total == 0:
        raise EmptyDatasetError("cannot compute shares of an empty sequence")
    return {label: count / total for label, count in sorted(counts.items(), key=lambda kv: -kv[1])}
