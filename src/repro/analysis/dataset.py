"""The crawled dataset container.

A :class:`CrawlDataset` wraps the detections a crawl produced (one
:class:`~repro.detector.records.SiteDetection` per page visit) and provides
the slicing the figure computations need: HB sites only, one record per site,
all auctions, all bids, grouping by facet / partner / rank, and the Table-1
style summary counters.

Every view is an *index*: it is built lazily on first access, cached, and
**maintained incrementally** when the dataset grows through
:meth:`CrawlDataset.extend` — new detections are appended into every cached
list/dict in place, so absorbing Δ records costs O(Δ) index work, not an
O(n) rebuild, and a watcher tailing a live crawl never rebuilds an index
(:meth:`index_stats` shows zero new builds after an extend; the metrics
rendered on top still scan whatever data they report).  The incremental result is exactly what a from-scratch rebuild
would produce; ``tests/test_incremental_indices.py`` asserts this for every
index and every registered metric.  Callers must treat returned lists and
dicts as read-only; mutating them corrupts the cache.  If you append to
:attr:`CrawlDataset.detections` directly instead of calling :meth:`extend`,
call :meth:`invalidate_indices` afterwards.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Hashable, Iterable, Iterator

from repro.detector.records import ObservedAuction, ObservedBid, SiteDetection
from repro.errors import EmptyDatasetError
from repro.models import HBFacet

__all__ = ["CrawlDataset", "UPDATABLE_INDEX_KEYS"]

#: Base keys of every index :meth:`CrawlDataset.extend` knows how to update
#: in place (tuple keys like ``("hb_latencies_by_rank_bin", n)`` match on
#: their first element).  A cached key outside this set is evicted on extend
#: and rebuilt lazily — correct but O(n) — so a new index accessor should be
#: added here together with its ``_apply_delta`` updater; the incremental
#: test suite cross-checks the two.
UPDATABLE_INDEX_KEYS = frozenset({
    "hb_detections", "sites", "hb_sites", "auctions", "bids", "priced_bids",
    "by_facet", "auctions_by_facet", "bids_by_partner", "partner_site_counts",
    "partner_popularity_ranking", "partner_latency_samples", "site_latencies",
    "hb_latency_values", "hb_latencies_by_rank_bin", "crawl_days", "summary",
})


@dataclass
class CrawlDataset:
    """All detections gathered during a measurement campaign."""

    detections: list[SiteDetection] = field(default_factory=list)
    #: Number of distinct crawl days represented (Table 1 reports 5 weeks).
    label: str = "crawl"
    #: Lazily-built view cache; never compared or serialised.
    _indices: dict[Hashable, Any] = field(default_factory=dict, init=False, repr=False, compare=False)
    #: Auxiliary incremental-update state (seen-domain sets etc.), built
    #: alongside the index it serves and dropped with it.
    _aux: dict[str, Any] = field(default_factory=dict, init=False, repr=False, compare=False)
    #: How many index builds have happened (cache misses); for benchmarks.
    _index_builds: int = field(default=0, init=False, repr=False, compare=False)
    #: Guards the index cache against concurrent :meth:`extend`: a service
    #: thread folding freshly-tailed detections in must never interleave with
    #: a request thread building or reading an index.  Reentrant because an
    #: index build goes through the other accessors.  Single-threaded callers
    #: pay one uncontended acquire per *accessor call* (not per record), so
    #: the crawl/analyze hot paths are unaffected.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, init=False, repr=False, compare=False
    )

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_detections(cls, detections: Iterable[SiteDetection], *, label: str = "crawl") -> "CrawlDataset":
        return cls(detections=list(detections), label=label)

    @classmethod
    def from_jsonl(cls, path: str | Path, *, label: str | None = None) -> "CrawlDataset":
        """Load a dataset from a JSON-Lines file written by ``--save``.

        The file format is the one :class:`~repro.crawler.storage.DetectionSink`
        streams during a crawl (and :meth:`~repro.crawler.storage.CrawlStorage.save`
        writes in one go), so a crawl saved once can be re-analysed any number
        of times without re-simulating the Web.
        """
        from repro.crawler.storage import CrawlStorage

        storage = CrawlStorage(path)
        return cls.from_detections(storage.iter_load(), label=label or Path(path).stem)

    @classmethod
    def from_path(cls, path: str | Path, *, label: str | None = None) -> "CrawlDataset":
        """Load a saved crawl in either store format, detected from the file.

        JSONL files parse into an ordinary in-memory dataset; columnar files
        (:mod:`repro.crawler.colstore`) come back as a lazily-materialising
        :class:`~repro.crawler.colstore.ColumnarDataset` whose ``summary()``
        is computed over mmapped numpy columns without building records.
        Raises :class:`~repro.errors.StorageError` on a corrupt or
        unrecognised file.
        """
        from repro.crawler.colstore import ColumnarDataset, sniff_format

        if sniff_format(path) == "columnar":
            return ColumnarDataset.open(path, label=label)
        return cls.from_jsonl(path, label=label)

    def extend(self, detections: Iterable[SiteDetection]) -> None:
        """Append detections, updating every cached index in place (O(Δ)).

        Thread-safe with respect to the index accessors: the whole
        append-and-fold runs under the dataset lock, so a reader never sees
        an index mid-update.  Lists/dicts handed out *before* an extend keep
        growing in place (that is the point of the incremental design);
        callers that iterate them concurrently with a live extend should do
        so under their own lock, as :class:`repro.service.store.DetectionStore`
        does.
        """
        new = list(detections)
        if not new:
            return
        with self._lock:
            self.detections.extend(new)
            if self._indices:
                self._apply_delta(new)

    # -- index cache -------------------------------------------------------------
    def _index(self, key: Hashable, build: Callable[[], Any]) -> Any:
        with self._lock:
            try:
                return self._indices[key]
            except KeyError:
                value = build()
                self._indices[key] = value
                self._index_builds += 1
                return value

    def invalidate_indices(self) -> None:
        """Drop every cached view (call after mutating :attr:`detections`)."""
        with self._lock:
            self._indices.clear()
            self._aux.clear()

    def index_stats(self) -> dict[str, int]:
        """Cache introspection: currently cached views and lifetime builds."""
        with self._lock:
            return {"cached": len(self._indices), "builds": self._index_builds}

    # -- incremental maintenance ---------------------------------------------------
    def _apply_delta(self, new: list[SiteDetection]) -> None:
        """Fold ``new`` detections into every cached index.

        Updates run in dependency order (visits → sites → auctions → bids →
        groupers → summary), mirroring how each index's ``build`` derives
        from the others; an index is only ever cached after its dependencies
        (its build goes through their accessors), so every delta a dependent
        needs is available by the time it updates.  Cached keys with no
        updater — a future index added without one — are evicted and rebuilt
        lazily, trading speed for correctness.
        """
        indices = self._indices
        aux = self._aux
        new_hb = [d for d in new if d.hb_detected]

        if "hb_detections" in indices:
            indices["hb_detections"].extend(new_hb)

        if "sites" in indices:
            seen = aux["site_domains"]
            sites = indices["sites"]
            for d in new:
                if d.domain not in seen:
                    seen.add(d.domain)
                    sites.append(d)

        new_hb_sites: list[SiteDetection] = []
        if "hb_sites" in indices:
            seen_hb = aux["hb_site_domains"]
            hb_sites = indices["hb_sites"]
            for d in new_hb:
                if d.domain not in seen_hb:
                    seen_hb.add(d.domain)
                    hb_sites.append(d)
                    new_hb_sites.append(d)

        new_auctions = [auction for d in new_hb for auction in d.auctions]
        if "auctions" in indices:
            indices["auctions"].extend(new_auctions)

        new_bids = [bid for auction in new_auctions for bid in auction.bids]
        if "bids" in indices:
            indices["bids"].extend(new_bids)
        if "priced_bids" in indices:
            indices["priced_bids"].extend(bid for bid in new_bids if bid.cpm is not None)

        if "by_facet" in indices:
            grouped = indices["by_facet"]
            for d in new_hb_sites:
                grouped[d.facet].append(d)
        if "auctions_by_facet" in indices:
            grouped = indices["auctions_by_facet"]
            for auction in new_auctions:
                grouped[auction.facet].append(auction)
        if "bids_by_partner" in indices:
            grouped = indices["bids_by_partner"]
            for bid in new_bids:
                grouped.setdefault(bid.partner, []).append(bid)

        if "partner_site_counts" in indices:
            counts = indices["partner_site_counts"]
            for d in new_hb_sites:
                for partner in d.partners:
                    counts[partner] = counts.get(partner, 0) + 1
        if "partner_popularity_ranking" in indices:
            # Re-sorting is O(partners log partners) — bounded by the partner
            # universe (~84), independent of the number of detections.
            counts = indices["partner_site_counts"]
            indices["partner_popularity_ranking"][:] = [
                name for name, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            ]

        if "partner_latency_samples" in indices:
            samples = indices["partner_latency_samples"]
            for d in new_hb:
                for partner, latency in d.partner_latencies_ms.items():
                    samples.setdefault(partner, []).append(float(latency))
        if "site_latencies" in indices:
            samples = indices["site_latencies"]
            for d in new_hb:
                if d.total_latency_ms is not None:
                    samples.setdefault(d.domain, []).append(d.total_latency_ms)
        if "hb_latency_values" in indices:
            indices["hb_latency_values"].extend(
                d.total_latency_ms
                for d in new_hb
                if d.total_latency_ms is not None and d.total_latency_ms > 0
            )
        for key in indices:
            if isinstance(key, tuple) and key[0] == "hb_latencies_by_rank_bin":
                bin_size = key[1]
                grouped = indices[key]
                for d in new_hb:
                    if d.total_latency_ms is None or d.total_latency_ms <= 0:
                        continue
                    grouped.setdefault((d.rank - 1) // bin_size, []).append(d.total_latency_ms)

        if "crawl_days" in indices:
            days = aux["crawl_day_set"]
            fresh_days = {d.crawl_day for d in new} - days
            if fresh_days:
                days.update(fresh_days)
                indices["crawl_days"] = tuple(sorted(days))

        if "summary" in indices:
            # summary's build touches sites/hb_sites/auctions/bids/crawl_days,
            # so all of them are cached and already delta-updated above.
            partners = aux["summary_partners"]
            for d in new_hb_sites:
                partners.update(d.partners)
            indices["summary"] = self._summary_snapshot(
                sites=indices["sites"],
                hb_sites=indices["hb_sites"],
                n_auctions=len(indices["auctions"]),
                n_bids=len(indices["bids"]),
                days=indices["crawl_days"],
                partners=partners,
            )

        for key in [k for k in indices if (
            k[0] if isinstance(k, tuple) else k) not in UPDATABLE_INDEX_KEYS]:
            del indices[key]

    def _summary_snapshot(
        self,
        *,
        sites: list[SiteDetection],
        hb_sites: list[SiteDetection],
        n_auctions: int,
        n_bids: int,
        days: tuple[int, ...],
        partners: set[str],
    ) -> dict[str, int | float]:
        """The one summary-dict shape, shared by the cold and delta paths."""
        return {
            "websites_crawled": len(sites),
            "websites_with_hb": len(hb_sites),
            "adoption_rate": len(hb_sites) / len(sites) if sites else 0.0,
            "auctions_detected": n_auctions,
            "bids_detected": n_bids,
            "competing_demand_partners": len(partners),
            "crawl_days": len(days),
            "crawl_weeks": max(1, round(len(days) / 7)) if days else 0,
            "page_visits": len(self.detections),
        }

    # -- basic protocol ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.detections)

    def __iter__(self) -> Iterator[SiteDetection]:
        return iter(self.detections)

    def _require_non_empty(self) -> None:
        if not self.detections:
            raise EmptyDatasetError("the crawl dataset is empty")

    # -- views -------------------------------------------------------------------
    def hb_detections(self) -> list[SiteDetection]:
        """Every page visit on which HB was detected."""
        return self._index("hb_detections", lambda: [d for d in self.detections if d.hb_detected])

    def sites(self) -> list[SiteDetection]:
        """One record per distinct domain (the first visit wins).

        Per-site figures (partners per site, facet breakdown, adoption) must
        not double-count sites that were re-crawled daily.
        """

        def build() -> list[SiteDetection]:
            seen: dict[str, SiteDetection] = {}
            for detection in self.detections:
                seen.setdefault(detection.domain, detection)
            self._aux["site_domains"] = set(seen)
            return list(seen.values())

        return self._index("sites", build)

    def hb_sites(self) -> list[SiteDetection]:
        """One record per distinct domain on which HB was ever detected."""

        def build() -> list[SiteDetection]:
            seen: dict[str, SiteDetection] = {}
            for detection in self.detections:
                if detection.hb_detected:
                    seen.setdefault(detection.domain, detection)
            self._aux["hb_site_domains"] = set(seen)
            return list(seen.values())

        return self._index("hb_sites", build)

    def auctions(self) -> list[ObservedAuction]:
        """Every auction observed across all visits."""
        return self._index(
            "auctions",
            lambda: [auction for detection in self.hb_detections() for auction in detection.auctions],
        )

    def bids(self) -> list[ObservedBid]:
        """Every bid observed across all visits."""
        return self._index("bids", lambda: [bid for auction in self.auctions() for bid in auction.bids])

    def priced_bids(self) -> list[ObservedBid]:
        return self._index("priced_bids", lambda: [bid for bid in self.bids() if bid.cpm is not None])

    # -- groupers -----------------------------------------------------------------
    def by_facet(self) -> dict[HBFacet, list[SiteDetection]]:
        def build() -> dict[HBFacet, list[SiteDetection]]:
            grouped: dict[HBFacet, list[SiteDetection]] = {facet: [] for facet in HBFacet}
            for detection in self.hb_sites():
                assert detection.facet is not None
                grouped[detection.facet].append(detection)
            return grouped

        return self._index("by_facet", build)

    def auctions_by_facet(self) -> dict[HBFacet, list[ObservedAuction]]:
        def build() -> dict[HBFacet, list[ObservedAuction]]:
            grouped: dict[HBFacet, list[ObservedAuction]] = {facet: [] for facet in HBFacet}
            for auction in self.auctions():
                grouped[auction.facet].append(auction)
            return grouped

        return self._index("auctions_by_facet", build)

    def bids_by_partner(self) -> dict[str, list[ObservedBid]]:
        def build() -> dict[str, list[ObservedBid]]:
            grouped: dict[str, list[ObservedBid]] = {}
            for bid in self.bids():
                grouped.setdefault(bid.partner, []).append(bid)
            return grouped

        return self._index("bids_by_partner", build)

    def partner_site_counts(self) -> dict[str, int]:
        """For each partner, on how many distinct HB sites it appears."""

        def build() -> dict[str, int]:
            counts: dict[str, int] = {}
            for detection in self.hb_sites():
                for partner in detection.partners:
                    counts[partner] = counts.get(partner, 0) + 1
            return counts

        return self._index("partner_site_counts", build)

    def partner_popularity_ranking(self) -> list[str]:
        """Partners ordered from most to least popular (by site count)."""

        def build() -> list[str]:
            counts = self.partner_site_counts()
            return [name for name, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]

        return self._index("partner_popularity_ranking", build)

    def partner_latency_samples(self) -> dict[str, list[float]]:
        """Per-partner round-trip latency samples across all visits."""

        def build() -> dict[str, list[float]]:
            samples: dict[str, list[float]] = {}
            for detection in self.hb_detections():
                for partner, latency in detection.partner_latencies_ms.items():
                    samples.setdefault(partner, []).append(float(latency))
            return samples

        return self._index("partner_latency_samples", build)

    def site_latencies(self) -> dict[str, list[float]]:
        """Per-domain total HB latency samples across all visits."""

        def build() -> dict[str, list[float]]:
            samples: dict[str, list[float]] = {}
            for detection in self.hb_detections():
                if detection.total_latency_ms is not None:
                    samples.setdefault(detection.domain, []).append(detection.total_latency_ms)
            return samples

        return self._index("site_latencies", build)

    def hb_latency_values(self) -> list[float]:
        """Every positive page-level HB latency observation, in crawl order."""
        return self._index(
            "hb_latency_values",
            lambda: [
                detection.total_latency_ms
                for detection in self.hb_detections()
                if detection.total_latency_ms is not None and detection.total_latency_ms > 0
            ],
        )

    def hb_latencies_by_rank_bin(self, bin_size: int) -> dict[int, list[float]]:
        """Positive HB latency observations grouped into rank bins of ``bin_size``."""
        if bin_size < 1:
            raise ValueError("bin size must be positive")

        def build() -> dict[int, list[float]]:
            grouped: dict[int, list[float]] = {}
            for detection in self.hb_detections():
                if detection.total_latency_ms is None or detection.total_latency_ms <= 0:
                    continue
                grouped.setdefault((detection.rank - 1) // bin_size, []).append(detection.total_latency_ms)
            return grouped

        return self._index(("hb_latencies_by_rank_bin", bin_size), build)

    def crawl_days(self) -> tuple[int, ...]:
        def build() -> tuple[int, ...]:
            days = {detection.crawl_day for detection in self.detections}
            self._aux["crawl_day_set"] = days
            return tuple(sorted(days))

        return self._index("crawl_days", build)

    # -- summary -------------------------------------------------------------------
    def summary(self) -> dict[str, int | float]:
        """The Table-1 style crawl summary.

        Returns a fresh dict per call (the legacy contract); only the
        computation is cached.
        """
        self._require_non_empty()

        def build() -> dict[str, int | float]:
            # Goes through the accessors (never ._indices directly), which
            # both computes the values and — on a caching dataset — ensures
            # every component index is cached and delta-maintained before the
            # summary snapshot derives from it.
            sites = self.sites()
            hb_sites = self.hb_sites()
            days = self.crawl_days()
            partners = {partner for detection in hb_sites for partner in detection.partners}
            self._aux["summary_partners"] = partners
            return self._summary_snapshot(
                sites=sites,
                hb_sites=hb_sites,
                n_auctions=len(self.auctions()),
                n_bids=len(self.bids()),
                days=days,
                partners=partners,
            )

        return dict(self._index("summary", build))

    def filter(self, predicate: Callable[[SiteDetection], bool], *, label: str | None = None) -> "CrawlDataset":
        """A new dataset restricted to detections matching ``predicate``."""
        with self._lock:
            kept = [d for d in self.detections if predicate(d)]
        return CrawlDataset(detections=kept, label=label or self.label)
