"""The crawled dataset container.

A :class:`CrawlDataset` wraps the detections a crawl produced (one
:class:`~repro.detector.records.SiteDetection` per page visit) and provides
the slicing the figure computations need: HB sites only, one record per site,
all auctions, all bids, grouping by facet / partner / rank, and the Table-1
style summary counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.detector.records import ObservedAuction, ObservedBid, SiteDetection
from repro.errors import EmptyDatasetError
from repro.models import HBFacet

__all__ = ["CrawlDataset"]


@dataclass
class CrawlDataset:
    """All detections gathered during a measurement campaign."""

    detections: list[SiteDetection] = field(default_factory=list)
    #: Number of distinct crawl days represented (Table 1 reports 5 weeks).
    label: str = "crawl"

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_detections(cls, detections: Iterable[SiteDetection], *, label: str = "crawl") -> "CrawlDataset":
        return cls(detections=list(detections), label=label)

    def extend(self, detections: Iterable[SiteDetection]) -> None:
        self.detections.extend(detections)

    # -- basic protocol ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.detections)

    def __iter__(self) -> Iterator[SiteDetection]:
        return iter(self.detections)

    def _require_non_empty(self) -> None:
        if not self.detections:
            raise EmptyDatasetError("the crawl dataset is empty")

    # -- views -------------------------------------------------------------------
    def hb_detections(self) -> list[SiteDetection]:
        """Every page visit on which HB was detected."""
        return [d for d in self.detections if d.hb_detected]

    def sites(self) -> list[SiteDetection]:
        """One record per distinct domain (the first visit wins).

        Per-site figures (partners per site, facet breakdown, adoption) must
        not double-count sites that were re-crawled daily.
        """
        seen: dict[str, SiteDetection] = {}
        for detection in self.detections:
            seen.setdefault(detection.domain, detection)
        return list(seen.values())

    def hb_sites(self) -> list[SiteDetection]:
        """One record per distinct domain on which HB was ever detected."""
        seen: dict[str, SiteDetection] = {}
        for detection in self.detections:
            if detection.hb_detected:
                seen.setdefault(detection.domain, detection)
        return list(seen.values())

    def auctions(self) -> list[ObservedAuction]:
        """Every auction observed across all visits."""
        return [auction for detection in self.hb_detections() for auction in detection.auctions]

    def bids(self) -> list[ObservedBid]:
        """Every bid observed across all visits."""
        return [bid for auction in self.auctions() for bid in auction.bids]

    def priced_bids(self) -> list[ObservedBid]:
        return [bid for bid in self.bids() if bid.cpm is not None]

    # -- groupers -----------------------------------------------------------------
    def by_facet(self) -> dict[HBFacet, list[SiteDetection]]:
        grouped: dict[HBFacet, list[SiteDetection]] = {facet: [] for facet in HBFacet}
        for detection in self.hb_sites():
            assert detection.facet is not None
            grouped[detection.facet].append(detection)
        return grouped

    def auctions_by_facet(self) -> dict[HBFacet, list[ObservedAuction]]:
        grouped: dict[HBFacet, list[ObservedAuction]] = {facet: [] for facet in HBFacet}
        for auction in self.auctions():
            grouped[auction.facet].append(auction)
        return grouped

    def bids_by_partner(self) -> dict[str, list[ObservedBid]]:
        grouped: dict[str, list[ObservedBid]] = {}
        for bid in self.bids():
            grouped.setdefault(bid.partner, []).append(bid)
        return grouped

    def partner_site_counts(self) -> dict[str, int]:
        """For each partner, on how many distinct HB sites it appears."""
        counts: dict[str, int] = {}
        for detection in self.hb_sites():
            for partner in detection.partners:
                counts[partner] = counts.get(partner, 0) + 1
        return counts

    def partner_popularity_ranking(self) -> list[str]:
        """Partners ordered from most to least popular (by site count)."""
        counts = self.partner_site_counts()
        return [name for name, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]

    def partner_latency_samples(self) -> dict[str, list[float]]:
        """Per-partner round-trip latency samples across all visits."""
        samples: dict[str, list[float]] = {}
        for detection in self.hb_detections():
            for partner, latency in detection.partner_latencies_ms.items():
                samples.setdefault(partner, []).append(float(latency))
        return samples

    def site_latencies(self) -> dict[str, list[float]]:
        """Per-domain total HB latency samples across all visits."""
        samples: dict[str, list[float]] = {}
        for detection in self.hb_detections():
            if detection.total_latency_ms is not None:
                samples.setdefault(detection.domain, []).append(detection.total_latency_ms)
        return samples

    def crawl_days(self) -> tuple[int, ...]:
        return tuple(sorted({detection.crawl_day for detection in self.detections}))

    # -- summary -------------------------------------------------------------------
    def summary(self) -> dict[str, int | float]:
        """The Table-1 style crawl summary."""
        self._require_non_empty()
        sites = self.sites()
        hb_sites = self.hb_sites()
        all_bids = self.bids()
        partners = {partner for detection in hb_sites for partner in detection.partners}
        days = self.crawl_days()
        return {
            "websites_crawled": len(sites),
            "websites_with_hb": len(hb_sites),
            "adoption_rate": len(hb_sites) / len(sites) if sites else 0.0,
            "auctions_detected": len(self.auctions()),
            "bids_detected": len(all_bids),
            "competing_demand_partners": len(partners),
            "crawl_days": len(days),
            "crawl_weeks": max(1, round(len(days) / 7)) if days else 0,
            "page_visits": len(self.detections),
        }

    def filter(self, predicate: Callable[[SiteDetection], bool], *, label: str | None = None) -> "CrawlDataset":
        """A new dataset restricted to detections matching ``predicate``."""
        return CrawlDataset(
            detections=[d for d in self.detections if predicate(d)],
            label=label or self.label,
        )
