"""Deterministic random-number-generator plumbing.

Every stochastic component in the library receives an explicit
:class:`numpy.random.Generator`.  To keep experiments reproducible while still
letting subsystems draw independently, generators are *derived* from a parent
seed plus a stable string key rather than shared or re-seeded ad hoc.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

__all__ = ["derive_rng", "spawn_rngs", "stable_hash", "fast_uniform"]


def fast_uniform(rng: np.random.Generator, low: float, high: float) -> float:
    """Scalar ``rng.uniform(low, high)`` without the numpy dispatch overhead.

    ``Generator.uniform`` computes ``low + (high - low) * next_double`` in C;
    evaluating the same expression on ``rng.random()`` (the same draw from
    the same stream) produces the bit-identical float roughly 3x faster for
    scalars.  Exactness is asserted by ``tests/test_profiles.py``, so hot
    paths may substitute this freely without perturbing any derived stream.
    """
    return low + (high - low) * float(rng.random())


def stable_hash(*parts: object) -> int:
    """Return a stable 64-bit hash of the given parts.

    Python's builtin ``hash`` is randomised per process for strings, so it
    cannot be used to derive reproducible seeds.  This uses blake2b over the
    ``repr`` of each part instead.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big")


def derive_rng(seed: int, *keys: object) -> np.random.Generator:
    """Derive an independent generator from a base seed and a key path.

    The same ``(seed, *keys)`` tuple always yields the same generator state,
    and distinct key paths yield statistically independent streams.

    >>> a = derive_rng(7, "partners", "criteo")
    >>> b = derive_rng(7, "partners", "criteo")
    >>> float(a.random()) == float(b.random())
    True
    """
    mixed = np.random.SeedSequence([seed & 0xFFFFFFFF, stable_hash(*keys) & 0xFFFFFFFF])
    return np.random.default_rng(mixed)


def spawn_rngs(seed: int, keys: Iterable[object]) -> list[np.random.Generator]:
    """Derive one generator per key, preserving the key order."""
    return [derive_rng(seed, key) for key in keys]


def weighted_choice(
    rng: np.random.Generator,
    items: Sequence[object],
    weights: Sequence[float],
) -> object:
    """Pick one item with the given (not necessarily normalised) weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    probabilities = np.asarray(weights, dtype=float) / total
    index = int(rng.choice(len(items), p=probabilities))
    return items[index]
