"""Small cross-cutting helpers (RNG handling, URL building, identifiers)."""

from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.urls import build_url, parse_query, url_host
from repro.utils.ids import IdFactory, slugify

__all__ = [
    "derive_rng",
    "spawn_rngs",
    "build_url",
    "parse_query",
    "url_host",
    "IdFactory",
    "slugify",
]
