"""Minimal URL construction and parsing helpers.

The simulated browser and the detector exchange URLs as plain strings, the
same way a browser extension sees them.  These helpers keep query handling in
one place so the detector's parameter extraction and the wrappers' request
construction cannot drift apart accidentally.
"""

from __future__ import annotations

from typing import Mapping
from urllib.parse import parse_qsl, quote, urlencode, urlsplit

__all__ = ["build_url", "parse_query", "url_host", "url_path"]


def build_url(host: str, path: str = "/", params: Mapping[str, object] | None = None,
              scheme: str = "https") -> str:
    """Assemble a URL from host, path and query parameters.

    >>> build_url("ib.adnxs.com", "/ut/v3/prebid", {"hb_bidder": "appnexus"})
    'https://ib.adnxs.com/ut/v3/prebid?hb_bidder=appnexus'
    """
    if not host:
        raise ValueError("host must be non-empty")
    if not path.startswith("/"):
        path = "/" + path
    encoded_path = quote(path, safe="/._-~")
    url = f"{scheme}://{host}{encoded_path}"
    if params:
        url = f"{url}?{urlencode({k: str(v) for k, v in params.items()})}"
    return url


def parse_query(url: str) -> dict[str, str]:
    """Parse the query string of a URL into a flat ``dict``.

    Repeated keys keep the last value, matching how the HB wrappers emit their
    key-value targeting parameters.
    """
    query = urlsplit(url).query
    return dict(parse_qsl(query, keep_blank_values=True))


def url_host(url: str) -> str:
    """Return the lower-cased host part of a URL (no port)."""
    netloc = urlsplit(url).netloc or url.split("/", 1)[0]
    return netloc.split("@")[-1].split(":")[0].lower()


def url_path(url: str) -> str:
    """Return the path part of a URL, defaulting to ``"/"``."""
    return urlsplit(url).path or "/"
