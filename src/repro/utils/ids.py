"""Identifier helpers: deterministic counters and slug generation."""

from __future__ import annotations

import itertools
import re

__all__ = ["IdFactory", "slugify"]

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def slugify(text: str) -> str:
    """Lower-case a name and replace runs of non-alphanumerics with ``-``.

    >>> slugify("Index Exchange")
    'index-exchange'
    """
    slug = _SLUG_RE.sub("-", text.lower()).strip("-")
    return slug or "x"


class IdFactory:
    """Produce deterministic, human-readable identifiers per namespace.

    Used for auction ids, bid ids and ad-unit codes so that two runs with the
    same configuration produce byte-identical datasets.
    """

    def __init__(self, prefix: str = "") -> None:
        self._prefix = prefix
        self._counters: dict[str, itertools.count] = {}

    def next(self, namespace: str) -> str:
        """Return the next id in ``namespace``, e.g. ``"auction-000017"``."""
        counter = self._counters.setdefault(namespace, itertools.count())
        number = next(counter)
        if self._prefix:
            return f"{self._prefix}-{namespace}-{number:06d}"
        return f"{namespace}-{number:06d}"

    def reset(self) -> None:
        """Forget all counters (used when a browser session is re-created)."""
        self._counters.clear()
