"""Exception hierarchy for the header-bidding reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so a
caller can catch the whole family with a single ``except`` clause while still
being able to distinguish configuration problems from runtime simulation or
detection problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(ReproError):
    """An experiment, ecosystem or wrapper configuration is invalid."""


class EcosystemError(ReproError):
    """The synthetic ad ecosystem was asked to do something inconsistent."""


class UnknownPartnerError(EcosystemError):
    """A demand partner name was requested that is not in the registry."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown demand partner: {name!r}")
        self.name = name


class BrowserError(ReproError):
    """The simulated browser failed to load or execute a page."""


class PageLoadTimeout(BrowserError):
    """A page did not finish loading within the crawler's timeout."""

    def __init__(self, url: str, timeout_ms: float) -> None:
        super().__init__(f"page {url!r} did not load within {timeout_ms:.0f} ms")
        self.url = url
        self.timeout_ms = timeout_ms


class AuctionError(ReproError):
    """An HB or waterfall auction was driven through an invalid transition."""


class DetectionError(ReproError):
    """HBDetector could not interpret the observed page activity."""


class CrawlError(ReproError):
    """The crawler failed in a way that is not a per-page timeout."""


class CheckpointError(CrawlError):
    """A crawl checkpoint is missing, corrupt, or does not match this run."""


class ShardTimeout(CrawlError):
    """A shard attempt exceeded ``CrawlConfig.shard_timeout``.

    Raised engine-side (the supervision loop abandons the attempt's future);
    retryable like any transient worker failure.
    """


class StorageError(ReproError):
    """Reading or writing a crawl dataset on disk failed."""


class ServiceError(ReproError):
    """The campaign service was asked to do something it cannot."""


class UnknownCampaignError(ServiceError):
    """A campaign id was requested that the service does not know."""

    def __init__(self, campaign_id: str) -> None:
        super().__init__(f"unknown campaign: {campaign_id!r}")
        self.campaign_id = campaign_id


class CampaignStateError(ServiceError):
    """A campaign transition was requested from a state that forbids it."""


class CampaignCancelled(CrawlError):
    """Internal control-flow signal: a campaign's crawl was cancelled.

    Raised from inside the cancelled campaign's sink at the next detection
    write, unwinding the crawl through the engine's normal error path — the
    last shard-boundary checkpoint stays on disk, so the campaign is
    resumable.  Never surfaces to service clients; the campaign manager
    catches it and marks the campaign ``cancelled``.
    """


class AnalysisError(ReproError):
    """An analysis was requested on data that cannot support it."""


class EmptyDatasetError(AnalysisError):
    """An analysis was requested on an empty dataset."""


class UnknownMetricError(AnalysisError):
    """A metric name was requested that is not in the metric registry."""

    def __init__(self, name: str, known: tuple[str, ...] = ()) -> None:
        hint = f"; known metrics: {', '.join(known)}" if known else ""
        super().__init__(f"unknown metric: {name!r}{hint}")
        self.name = name


class MetricContextError(AnalysisError):
    """A metric was computed without the context pieces it requires."""

    def __init__(self, name: str, missing: tuple[str, ...]) -> None:
        super().__init__(
            f"metric {name!r} requires {', '.join(missing)} which the analysis context does not provide"
        )
        self.name = name
        self.missing = missing
