"""Command-line interface.

``hbrepro`` runs a scaled-down reproduction end to end and prints the
requested artefacts, which is the quickest way to see the pipeline working::

    hbrepro run --sites 2000 --days 1 --figures table1 adoption fig12 facet
    hbrepro run --sites 2000 --save crawl.jsonl --figures table1
    hbrepro run --sites 2000 --save crawl.jsonl --checkpoint crawl.ckpt
    hbrepro run --sites 2000 --save crawl.jsonl --checkpoint crawl.ckpt --resume
    hbrepro run --sites 2000 --save crawl.hbc --store-format columnar
    hbrepro analyze crawl.jsonl --artifact table1 fig12
    hbrepro analyze crawl.jsonl --watch --interval 2
    hbrepro convert crawl.hbc crawl.jsonl
    hbrepro historical --sites 400
    hbrepro serve --port 8710 --data-dir campaigns
    hbrepro daemon --dir campaign/ --sites 2000 --days 34 \\
        --threshold table1.summary.websites_with_hb:drop=0.25
    hbrepro list

Artefact names resolve through the central metric registry
(:mod:`repro.analysis.registry`); ``analyze`` recomputes any dataset-only
metric from a saved crawl without re-simulating the Web.  ``analyze
--watch`` tails a growing sink (a crawl still running with ``--save``) and
re-renders the artefacts whenever new detections land; each refresh feeds
only the new records into the dataset's incrementally maintained indices
(index upkeep is O(new detections); rendering the chosen artefacts still
scans their data).

Saved crawls come in two on-disk formats (``--store-format``): ``jsonl``,
the human-greppable reference, and ``columnar``, the typed binary layout of
:mod:`repro.crawler.colstore` that ``analyze`` mmaps instead of re-parsing.
``analyze``, ``--watch`` and ``convert`` sniff the format from the file
itself, so every read-side command works unchanged on either.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.analysis.context import AnalysisContext, CONTEXT_FIELDS
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import available_metrics, compute_metric, iter_metrics
from repro.crawler.colstore import COLUMNAR_SUFFIXES, storage_for
from repro.crawler.engine import BACKEND_NAMES
from repro.crawler.storage import STORE_FORMATS, DetectionSink
from repro.errors import ReproError, StorageError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner

__all__ = ["main", "build_parser"]

#: What each command's analysis context provides, for filtering the registry.
_RUN_CONTEXT = frozenset(CONTEXT_FIELDS) - {"historical"}
_OFFLINE_CONTEXT = frozenset({"dataset"})
_HISTORICAL_CONTEXT = frozenset({"historical"})


def _metric_names_for(provided: frozenset[str]) -> list[str]:
    return sorted(available_metrics(provided))


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hbrepro",
        description="Reproduce the IMC 2019 Header Bidding measurement study on a simulated Web.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a crawl and print selected artefacts")
    run.add_argument("--sites", type=int, default=2_000, help="number of simulated websites")
    run.add_argument("--days", type=int, default=1, help="number of daily re-crawls")
    run.add_argument("--seed", type=int, default=2019, help="random seed")
    run.add_argument(
        "--workers", type=int, default=1,
        help="parallel crawl workers (shards); results are identical for any count",
    )
    run.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default="serial",
        help="crawl execution backend",
    )
    run.add_argument(
        "--slow-path", action="store_true",
        help="bypass the precompiled-site-profile fast path (reference mode; "
        "detections are byte-identical, pages simulate slower)",
    )
    run.add_argument(
        "--columnar", action=argparse.BooleanOptionalAction, default=True,
        help="simulate whole shards as numpy arrays (columnar batch path, "
        "default on; --no-columnar keeps the page-at-a-time loop; "
        "detections are byte-identical either way)",
    )
    run.add_argument(
        "--oversubscribe", type=_positive_int, default=4, metavar="N",
        help="shards per worker for parallel crawls (default %(default)s; "
        "bytes identical for any value; use 1 to resume checkpoints written "
        "before this knob existed)",
    )
    run.add_argument(
        "--save", metavar="PATH", default=None,
        help="stream detections to this file as the crawl progresses",
    )
    run.add_argument(
        "--store-format", choices=list(STORE_FORMATS), default="jsonl",
        help="on-disk format for --save: 'jsonl' is the reference format, "
        "'columnar' the typed binary layout that analyze mmaps "
        "(default %(default)s; `hbrepro convert` translates between them)",
    )
    run.add_argument(
        "--flush-every", type=_positive_int, default=DetectionSink.DEFAULT_FLUSH_EVERY, metavar="N",
        help="buffer N detections between --save file writes (1 = per record, "
        "default %(default)s); bytes are identical for any value",
    )
    run.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="write a resumable crawl checkpoint to PATH at shard boundaries "
        "(requires --save); resume an interrupted run with --resume",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="resume the campaign recorded at --checkpoint instead of starting "
        "fresh; the resumed sink and artefacts are byte-identical to an "
        "uninterrupted run",
    )
    run.add_argument(
        "--shard-retries", type=_nonnegative_int, default=2, metavar="N",
        help="retry a failed shard attempt up to N times before quarantining "
        "it (default %(default)s; retried shards reproduce identical bytes)",
    )
    run.add_argument(
        "--shard-timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock budget for pool backends; a timed-out "
        "shard is retried under the normal policy (default: no timeout)",
    )
    run.add_argument(
        "--retry-backoff", type=_nonnegative_float, default=0.1, metavar="SECONDS",
        help="base backoff between retry attempts, exponential with "
        "deterministic jitter (default %(default)s)",
    )
    run.add_argument(
        "--inject-faults", metavar="SPEC", default=None,
        help="chaos-test the supervision layer with injected faults, e.g. "
        "'seed=7,crash@p=0.2x4,hang@shard=3~5.0,sink@count=10x2' (kinds: "
        "crash/hang/slow/raise/sink; keys: shard/count/p); the crawl still "
        "produces byte-identical detections",
    )
    run.add_argument(
        "--fault-log", metavar="PATH", default=None,
        help="append supervision events (retries, pool rebuilds, quarantines) "
        "to PATH as JSON lines",
    )
    run.add_argument(
        "--figures",
        nargs="+",
        default=["table1", "adoption", "facet", "fig12"],
        choices=_metric_names_for(_RUN_CONTEXT),
        help="which artefacts to print",
    )

    analyze = sub.add_parser(
        "analyze",
        help="recompute artefacts from a saved crawl (no re-simulation)",
    )
    analyze.add_argument(
        "path",
        help="crawl dataset written by run --save (JSONL or columnar; auto-detected)",
    )
    analyze.add_argument(
        "--artifact", "--figures",
        dest="figures",
        nargs="+",
        default=["table1", "adoption", "facet", "fig12"],
        choices=_metric_names_for(_OFFLINE_CONTEXT),
        help="which artefacts to recompute (dataset-only metrics)",
    )
    analyze.add_argument(
        "--watch", action="store_true",
        help="tail the file and re-render the artefacts as new detections land",
    )
    analyze.add_argument(
        "--interval", type=_positive_float, default=2.0, metavar="SECONDS",
        help="polling interval between tail reads in --watch mode",
    )
    analyze.add_argument(
        "--watch-rounds", type=_positive_int, default=None, metavar="N",
        help="stop --watch after N tail reads (default: watch until Ctrl-C)",
    )

    convert = sub.add_parser(
        "convert",
        help="convert a saved crawl between detection store formats",
        description="Translate a saved crawl between the JSONL reference "
        "format and the columnar binary format, in either direction. "
        "Converting columnar back to JSONL reproduces the exact bytes a "
        "direct JSONL run would have written.",
    )
    convert.add_argument("src", help="existing detection store (JSONL or columnar; auto-detected)")
    convert.add_argument("dst", help="destination file to write")
    convert.add_argument(
        "--to", choices=list(STORE_FORMATS), default=None,
        help="target format (default: inferred from DST's extension, "
        "falling back to the opposite of SRC's format)",
    )
    convert.add_argument(
        "--force", action="store_true",
        help="overwrite DST if it already exists",
    )

    historical = sub.add_parser("historical", help="run the Figure 4 historical adoption study")
    historical.add_argument("--sites", type=int, default=500, help="sites per yearly top list")
    historical.add_argument("--seed", type=int, default=2019, help="random seed")

    serve = sub.add_parser(
        "serve",
        help="run the crawl-as-a-service HTTP campaign server",
        description="Serve the campaign API: submit ExperimentConfig campaigns "
        "over HTTP, query their detections, download artefacts, and stream "
        "live progress over server-sent events.",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    serve.add_argument(
        "--port", type=int, default=8710,
        help="TCP port (default %(default)s; 0 picks a free port)",
    )
    serve.add_argument(
        "--data-dir", default="campaigns", metavar="DIR",
        help="root directory for per-campaign working directories (default %(default)s)",
    )
    serve.add_argument(
        "--max-parallel", type=_positive_int, default=1, metavar="N",
        help="campaigns crawling at once; the rest wait queued (default %(default)s)",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log every HTTP request to stderr",
    )

    daemon = sub.add_parser(
        "daemon",
        help="continuously grow a long-lived campaign one crawl day per tick",
        description="Run the continuous-recrawl daemon: each tick appends one "
        "crawl-day partition to the campaign under --dir through the "
        "checkpoint/sink machinery (kill it at any instant; the next tick "
        "resumes byte-identically), snapshots the watched metrics for the "
        "finished day, and appends regression alerts to DIR/alerts.jsonl "
        "when a --threshold rule fires.",
    )
    daemon.add_argument(
        "--dir", required=True, metavar="DIR",
        help="campaign working directory (sink, checkpoint, per-day snapshots "
        "and partitions, alert log); reuse it to keep growing the same campaign",
    )
    daemon.add_argument("--sites", type=int, default=2_000, help="number of simulated websites")
    daemon.add_argument("--seed", type=int, default=2019, help="random seed")
    daemon.add_argument(
        "--days", type=_nonnegative_int, default=None, metavar="N",
        help="stop once N re-crawl days are recorded "
        "(default: keep growing until interrupted)",
    )
    daemon.add_argument(
        "--interval", type=_nonnegative_float, default=60.0, metavar="SECONDS",
        help="pause between ticks (default %(default)s; 0 runs ticks back to back)",
    )
    daemon.add_argument(
        "--ticks", type=_positive_int, default=None, metavar="N",
        help="run at most N ticks, then exit (default: until --days or a signal)",
    )
    daemon.add_argument(
        "--metrics", nargs="+", default=["table1"],
        choices=_metric_names_for(_OFFLINE_CONTEXT),
        help="dataset-only metrics snapshotted after each crawl day "
        "(default %(default)s)",
    )
    daemon.add_argument(
        "--threshold", action="append", default=[], metavar="SPEC",
        help="regression alert rule, metric.field:kind=value with kind one of "
        "drop/min/max (e.g. table1.summary.websites_with_hb:drop=0.25); "
        "repeatable",
    )
    daemon.add_argument(
        "--retention-days", type=_positive_int, default=None, metavar="N",
        help="keep only the trailing N days of per-day partition/snapshot "
        "files (the canonical sink and alert log are never pruned; "
        "default: keep everything)",
    )
    daemon.add_argument(
        "--workers", type=int, default=1,
        help="parallel crawl workers; detections are identical for any count",
    )
    daemon.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default="serial",
        help="crawl execution backend",
    )
    daemon.add_argument(
        "--flush-every", type=_positive_int,
        default=DetectionSink.DEFAULT_FLUSH_EVERY, metavar="N",
        help="buffer N detections between sink writes (bytes identical for any value)",
    )
    daemon.add_argument(
        "--oversubscribe", type=_positive_int, default=4, metavar="N",
        help="shards per worker for parallel crawls (bytes identical for any value)",
    )
    daemon.add_argument(
        "--slow-path", action="store_true",
        help="bypass the precompiled-site-profile fast path (byte-identical, slower)",
    )
    daemon.add_argument(
        "--columnar", action=argparse.BooleanOptionalAction, default=True,
        help="columnar batch simulation (default on; byte-identical either way)",
    )
    daemon.add_argument(
        "--store-format", choices=list(STORE_FORMATS), default="columnar",
        help="sink format for the long-lived campaign (default %(default)s; "
        "`hbrepro convert` translates to the JSONL reference bytes)",
    )
    daemon.add_argument(
        "--shard-retries", type=_nonnegative_int, default=2, metavar="N",
        help="retry a failed shard attempt up to N times (default %(default)s)",
    )
    daemon.add_argument(
        "--shard-timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock budget for pool backends (default: none)",
    )

    sub.add_parser("list", help="list every artefact the run and analyze commands can print")
    return parser


def _print_supervision(longitudinal) -> None:
    """Report supervision activity (retries, quarantines) after a run.

    Silent on a fault-free run.  A degraded campaign (quarantined shards)
    warns on stderr with the failed shards and the resume instructions —
    the printed artefacts below cover only the completed prefix.
    """
    results = [longitudinal.discovery, *longitudinal.daily_results]
    retries = sum(r.retries for r in results)
    rebuilds = sum(r.pool_rebuilds for r in results)
    sink_retries = sum(r.sink_retries for r in results)
    if retries or rebuilds or sink_retries:
        print(
            f"supervision: {retries} shard retr{'y' if retries == 1 else 'ies'}, "
            f"{rebuilds} pool rebuild(s), {sink_retries} sink retr"
            f"{'y' if sink_retries == 1 else 'ies'}; detections unaffected\n"
        )
    quarantined = [
        (day, failure)
        for day, result in enumerate(results)
        for failure in result.quarantined_shards
    ]
    if quarantined:
        print(
            f"WARNING: crawl completed DEGRADED: {len(quarantined)} shard(s) "
            "quarantined after exhausting retries; artefacts below cover only "
            "the completed prefix",
            file=sys.stderr,
        )
        for day, failure in quarantined:
            label = "discovery" if day == 0 else f"day {day}"
            print(
                f"  {label} shard {failure.shard_index} "
                f"({failure.attempts} attempts): {failure.error}",
                file=sys.stderr,
            )
        print(
            "re-run with --resume to re-crawl the quarantined shards "
            "(requires --checkpoint)",
            file=sys.stderr,
        )


def _print_artifacts(names: Sequence[str], context: AnalysisContext) -> None:
    for name in names:
        result = compute_metric(name, context)
        print(result.text)
        print()


def _watch(
    storage,  # CrawlStorage or ColumnarStorage: anything with read_new()
    names: Sequence[str],
    *,
    interval: float,
    rounds: int | None = None,
) -> int:
    """Tail ``storage`` and re-render ``names`` whenever detections arrive.

    One crawl dataset lives across the whole watch: every tail read feeds
    only the newly appended records into :meth:`CrawlDataset.extend`, so
    index maintenance per refresh is O(delta) (re-rendering the requested
    artefacts still scans their data).  If the file shrinks — the crawl was
    restarted with a fresh sink — the watch restarts from an empty dataset
    instead of stalling on a stale offset.  Runs until interrupted (or for
    ``rounds`` tail reads when given, which is how tests and smoke runs
    bound it).

    Each poll starts with the cheap ``storage.size()`` staleness probe
    (exactly like ``DetectionStore.refresh()``): an idle watch — the recrawl
    daemon's common state between crawl days — costs one ``stat`` per poll
    and never opens the file.
    """
    dataset = CrawlDataset(label=storage.path.stem)
    offset = 0
    reads = 0
    try:
        while rounds is None or reads < rounds:
            if reads > 0:
                time.sleep(interval)
            size = storage.size()
            if size == offset:
                # Nothing was flushed since the last read: skip the parse
                # entirely.  (At offset 0 this also skips a still-empty file.)
                reads += 1
                continue
            if size < offset:
                # The file shrank under the watch: the crawl was restarted
                # with a fresh sink.  Start over from an empty dataset.
                print(f"=== {storage.path.name}: file changed, restarting watch ===\n")
                dataset = CrawlDataset(label=storage.path.stem)
                offset = 0
                reads += 1
                continue
            try:
                new, offset = storage.read_new(offset)
            except ReproError:
                # The file shrank or changed under the watch (the crawl was
                # restarted with a fresh sink, possibly already regrown past
                # our offset).  A failure at offset 0 cannot be that race —
                # the file itself is malformed — so let it surface.
                if offset == 0:
                    raise
                print(f"=== {storage.path.name}: file changed, restarting watch ===\n")
                dataset = CrawlDataset(label=storage.path.stem)
                offset = 0
                reads += 1
                continue
            reads += 1
            if not new:
                continue
            dataset.extend(new)
            print(f"=== {storage.path.name}: {len(dataset)} detections "
                  f"(+{len(new)}) ===\n")
            _print_artifacts(names, AnalysisContext.offline(dataset))
    except KeyboardInterrupt:
        pass
    return 0


def _convert(args: argparse.Namespace) -> int:
    """Translate a saved crawl between store formats (either direction)."""
    src, dst = Path(args.src), Path(args.dst)
    try:
        if src.resolve() == dst.resolve():
            raise StorageError("convert needs distinct source and destination paths")
        src_storage = storage_for(src)
        if args.to is not None:
            target = args.to
        elif dst.suffix.lower() in COLUMNAR_SUFFIXES:
            target = "columnar"
        elif dst.suffix.lower() in {".jsonl", ".ndjson", ".json"}:
            target = "jsonl"
        else:
            target = "jsonl" if src_storage.format == "columnar" else "columnar"
        if dst.exists() and not args.force:
            raise StorageError(f"{dst} already exists; pass --force to overwrite it")
        # Write to a sibling temp file and rename into place (the
        # checkpoint's tmp+fsync+rename pattern): a crash mid-convert — or
        # mid --force overwrite — can never leave a torn file where a valid
        # one stood.
        tmp = dst.with_name(dst.name + ".convert-tmp")
        if tmp.resolve() == src.resolve():
            raise StorageError("convert needs distinct source and destination paths")
        try:
            count = storage_for(tmp, format=target).save(src_storage.iter_load())
            with tmp.open("rb") as handle:
                os.fsync(handle.fileno())
            os.replace(tmp, dst)
        except OSError as exc:
            raise StorageError(f"could not write {dst}: {exc}") from exc
        finally:
            tmp.unlink(missing_ok=True)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"Converted {count} detections: {src} ({src_storage.format}) -> {dst} ({target})")
    return 0


def _serve(args: argparse.Namespace) -> int:
    """Run the campaign service until interrupted; exit gracefully.

    SIGTERM is translated into :class:`KeyboardInterrupt` so ``kill`` and
    Ctrl-C take the same path: stop accepting requests, cancel in-flight
    campaigns (each checkpoints its last shard boundary and stays
    resumable), then close the sockets.
    """
    import signal

    from repro.service.api import ReproServiceServer

    def _sigterm(signum, frame):  # pragma: no cover - signal plumbing
        raise KeyboardInterrupt

    try:
        server = ReproServiceServer(
            (args.host, args.port),
            data_dir=args.data_dir,
            max_parallel=args.max_parallel,
            verbose=args.verbose,
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    previous = signal.signal(signal.SIGTERM, _sigterm)
    print(f"serving campaigns at {server.base_url} (data dir: {args.data_dir})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down: checkpointing in-flight campaigns...", flush=True)
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.close()
    return 0


def _daemon(args: argparse.Namespace) -> int:
    """Run the continuous-recrawl daemon until done or interrupted.

    SIGTERM takes the same path as Ctrl-C (exactly like ``serve``): the tick
    in flight stops at its next shard boundary's checkpoint, and the next
    daemon run over the same --dir resumes byte-identically.
    """
    import signal
    import threading

    from repro.daemon import RecrawlDaemon, TickReport, parse_rules

    def _sigterm(signum, frame):  # pragma: no cover - signal plumbing
        raise KeyboardInterrupt

    try:
        config = ExperimentConfig(
            total_sites=args.sites,
            seed=args.seed,
            workers=args.workers,
            crawl_backend=args.backend,
            sink_flush_every=args.flush_every,
            fast_path=not args.slow_path,
            batch_sim=args.columnar,
            shard_oversubscribe=args.oversubscribe,
            store_format=args.store_format,
            shard_retries=args.shard_retries,
            shard_timeout=args.shard_timeout,
        )
        daemon = RecrawlDaemon(
            args.dir,
            config,
            metrics=tuple(args.metrics),
            rules=parse_rules(args.threshold),
            target_days=args.days,
            retention_days=args.retention_days,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    def _report(report: TickReport) -> None:
        if report.status == "failed":
            print(f"tick failed: {report.error} (backing off, will retry)",
                  file=sys.stderr, flush=True)
            return
        if report.status == "complete":
            print(
                f"campaign complete at day {report.horizon} "
                f"({report.detections} detections)",
                flush=True,
            )
            return
        label = "discovery pass" if report.day == 0 else f"crawl day {report.day}"
        print(f"{label} done: {report.detections} detections total", flush=True)
        for alert in report.alerts:
            print(f"ALERT {alert['message']}", flush=True)

    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM, _sigterm)
    print(f"recrawl daemon: campaign at {daemon.workdir}", flush=True)
    try:
        daemon.run(
            max_ticks=args.ticks,
            interval=args.interval,
            stop_event=stop,
            on_tick=_report,
        )
    except KeyboardInterrupt:
        print("daemon interrupted: campaign checkpointed and resumable", flush=True)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        signal.signal(signal.SIGTERM, previous)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        offline = set(_metric_names_for(_OFFLINE_CONTEXT))
        historical_only = set(_metric_names_for(_HISTORICAL_CONTEXT))
        for metric in iter_metrics():
            if metric.name in offline:
                availability = "offline"
            elif metric.name in historical_only:
                availability = "historical"
            else:
                availability = "run-only"
            print(f"{metric.name:<10} {availability:<10} {metric.title}  [{metric.ref}]")
        return 0

    if args.command == "historical":
        config = ExperimentConfig(
            total_sites=max(400, args.sites),
            seed=args.seed,
            historical_sites=args.sites,
        )
        historical = ExperimentRunner(config).run_historical()
        context = AnalysisContext(historical=historical)
        print(compute_metric("fig04", context).text)
        return 0

    if args.command == "serve":
        return _serve(args)

    if args.command == "daemon":
        return _daemon(args)

    if args.command == "convert":
        return _convert(args)

    if args.command == "analyze":
        try:
            if args.watch:
                return _watch(
                    storage_for(args.path), args.figures,
                    interval=args.interval, rounds=args.watch_rounds,
                )
            dataset = CrawlDataset.from_path(args.path)
            _print_artifacts(args.figures, AnalysisContext.offline(dataset))
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    if args.checkpoint is not None and args.save is None:
        parser.error("--checkpoint requires --save (resume recovers the sink file)")
    try:
        config = ExperimentConfig(
            total_sites=args.sites,
            recrawl_days=args.days,
            seed=args.seed,
            workers=args.workers,
            crawl_backend=args.backend,
            sink_flush_every=args.flush_every,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            fast_path=not args.slow_path,
            batch_sim=args.columnar,
            shard_oversubscribe=args.oversubscribe,
            store_format=args.store_format,
            shard_retries=args.shard_retries,
            shard_timeout=args.shard_timeout,
            retry_backoff=args.retry_backoff,
            fault_spec=args.inject_faults,
            fault_log=args.fault_log,
        )
        storage = storage_for(args.save, format=args.store_format) if args.save else None
        artifacts = ExperimentRunner(config).run(storage=storage)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if storage is not None:
        print(f"Streamed {len(artifacts.longitudinal.all_detections)} detections "
              f"to {storage.path}\n")
    _print_supervision(artifacts.longitudinal)
    try:
        _print_artifacts(args.figures, AnalysisContext.from_artifacts(artifacts))
    except ReproError as exc:
        # A heavily degraded run may not have enough data for the requested
        # artefacts (e.g. an empty dataset); the quarantine report above
        # already told the operator what happened.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 1 if artifacts.longitudinal.degraded else 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
