"""Command-line interface.

``hbrepro`` runs a scaled-down reproduction end to end and prints the
requested artefacts, which is the quickest way to see the pipeline working::

    hbrepro run --sites 2000 --days 1 --figures table1 adoption fig12 facet
    hbrepro historical --sites 400
    hbrepro list
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.crawler.engine import BACKEND_NAMES
from repro.crawler.storage import CrawlStorage
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments import figures, tables

__all__ = ["main", "build_parser"]


def _artifact_registry() -> dict[str, Callable]:
    """Name → function producing a printable artefact from run artifacts."""
    return {
        "table1": tables.table1_summary,
        "adoption": tables.adoption_by_rank,
        "accuracy": tables.detector_accuracy,
        "facet": figures.facet_breakdown_result,
        "fig08": figures.figure08_top_partners,
        "fig09": figures.figure09_partners_per_site,
        "fig10": figures.figure10_partner_combinations,
        "fig11": figures.figure11_partners_per_facet,
        "fig12": figures.figure12_latency_ecdf,
        "fig13": figures.figure13_latency_vs_rank,
        "fig14": figures.figure14_partner_latency,
        "fig15": figures.figure15_latency_vs_partner_count,
        "fig16": figures.figure16_latency_vs_popularity,
        "fig17": figures.figure17_late_bids_ecdf,
        "fig18": figures.figure18_late_bids_per_partner,
        "fig19": figures.figure19_adslots_ecdf,
        "fig20": figures.figure20_latency_vs_adslots,
        "fig21": figures.figure21_adslot_sizes,
        "fig22": figures.figure22_price_cdf,
        "fig23": figures.figure23_price_per_size,
        "fig24": figures.figure24_price_vs_popularity,
        "waterfall": figures.waterfall_latency_comparison,
        "prices": figures.waterfall_price_comparison,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hbrepro",
        description="Reproduce the IMC 2019 Header Bidding measurement study on a simulated Web.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a crawl and print selected artefacts")
    run.add_argument("--sites", type=int, default=2_000, help="number of simulated websites")
    run.add_argument("--days", type=int, default=1, help="number of daily re-crawls")
    run.add_argument("--seed", type=int, default=2019, help="random seed")
    run.add_argument(
        "--workers", type=int, default=1,
        help="parallel crawl workers (shards); results are identical for any count",
    )
    run.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default="serial",
        help="crawl execution backend",
    )
    run.add_argument(
        "--save", metavar="PATH", default=None,
        help="stream detections to this JSON-Lines file as the crawl progresses",
    )
    run.add_argument(
        "--figures",
        nargs="+",
        default=["table1", "adoption", "facet", "fig12"],
        choices=sorted(_artifact_registry()),
        help="which artefacts to print",
    )

    historical = sub.add_parser("historical", help="run the Figure 4 historical adoption study")
    historical.add_argument("--sites", type=int, default=500, help="sites per yearly top list")
    historical.add_argument("--seed", type=int, default=2019, help="random seed")

    sub.add_parser("list", help="list every artefact the run command can print")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    registry = _artifact_registry()

    if args.command == "list":
        for name in sorted(registry):
            print(name)
        return 0

    if args.command == "historical":
        config = ExperimentConfig(
            total_sites=max(400, args.sites),
            seed=args.seed,
            historical_sites=args.sites,
        )
        historical = ExperimentRunner(config).run_historical()
        print(figures.figure04_adoption_history(historical)["text"])
        return 0

    config = ExperimentConfig(
        total_sites=args.sites,
        recrawl_days=args.days,
        seed=args.seed,
        workers=args.workers,
        crawl_backend=args.backend,
    )
    storage = CrawlStorage(args.save) if args.save else None
    artifacts = ExperimentRunner(config).run(storage=storage)
    if storage is not None:
        print(f"Streamed {len(artifacts.longitudinal.all_detections)} detections "
              f"to {storage.path}\n")
    for name in args.figures:
        result = registry[name](artifacts)
        print(result["text"])
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
